"""Rate files (the ``.rates`` input of Figure 4).

The extractor needs an exponential rate for every UML activity.  Rates
can come from three places, in precedence order:

1. an explicit ``rates`` mapping passed to the extractor;
2. a ``rate`` tagged value on the UML element itself;
3. the default rate (1.0).

A ``.rates`` file is the textual form of (1)::

    # Tomcat JSP lifecycle, measured (substituted: synthetic estimates)
    request   = 2.0
    locateJSP = 200.0
    translate = 0.4
    response  = T        # passive: the client merely accepts it

``T`` / ``infty`` mark an activity as passive for the component being
extracted.
"""

from __future__ import annotations

from pathlib import Path

from repro.exceptions import ExtractionError
from repro.pepa.rates import PASSIVE, ActiveRate, Rate

__all__ = ["RateTable", "parse_rates", "load_rates"]

_PASSIVE_NAMES = {"T", "infty", "top"}
DEFAULT_RATE = 1.0


class RateTable:
    """Rates keyed by activity name, with precedence handling."""

    def __init__(self, values: dict[str, Rate] | None = None, default: float = DEFAULT_RATE):
        self._values: dict[str, Rate] = dict(values or {})
        self.default = default
        self.unused: set[str] = set(self._values)

    @classmethod
    def from_numbers(cls, values: dict[str, float | str], default: float = DEFAULT_RATE) -> "RateTable":
        parsed: dict[str, Rate] = {}
        for name, value in values.items():
            if isinstance(value, str):
                if value not in _PASSIVE_NAMES:
                    raise ExtractionError(
                        f"rate for {name!r} must be a number or 'T', got {value!r}"
                    )
                parsed[name] = PASSIVE
            else:
                parsed[name] = ActiveRate(float(value))
        return cls(parsed, default)

    def lookup(self, activity: str, tagged: str | None = None) -> Rate:
        """Resolve a rate: table entry > UML ``rate`` tag > default."""
        if activity in self._values:
            self.unused.discard(activity)
            return self._values[activity]
        if tagged is not None:
            if tagged in _PASSIVE_NAMES:
                return PASSIVE
            try:
                return ActiveRate(float(tagged))
            except ValueError:
                raise ExtractionError(
                    f"activity {activity!r} carries unparsable rate tag {tagged!r}"
                ) from None
        return ActiveRate(self.default)

    def __contains__(self, activity: str) -> bool:
        return activity in self._values

    def __len__(self) -> int:
        return len(self._values)


def parse_rates(text: str, default: float = DEFAULT_RATE) -> RateTable:
    """Parse ``.rates`` file content."""
    values: dict[str, Rate] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if "=" not in line:
            raise ExtractionError(f".rates line {lineno}: expected 'name = value', got {raw!r}")
        name, _, value = line.partition("=")
        name = name.strip()
        value = value.strip().rstrip(";")
        if not name:
            raise ExtractionError(f".rates line {lineno}: empty activity name")
        if name in values:
            raise ExtractionError(f".rates line {lineno}: duplicate rate for {name!r}")
        if value in _PASSIVE_NAMES:
            values[name] = PASSIVE
        else:
            try:
                values[name] = ActiveRate(float(value))
            except ValueError:
                raise ExtractionError(
                    f".rates line {lineno}: unparsable rate value {value!r}"
                ) from None
    return RateTable(values, default)


def load_rates(path: str | Path, default: float = DEFAULT_RATE) -> RateTable:
    """Parse a .rates file from disk."""
    return parse_rates(Path(path).read_text(), default)
