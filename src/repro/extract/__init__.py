"""Extractors: UML models → PEPA / PEPA nets (paper Section 3, S7)."""

from repro.extract.activity2pepanet import (
    DEFAULT_LOCATION,
    ExtractionResult,
    extract_activity_diagram,
)
from repro.extract.rates import RateTable, load_rates, parse_rates
from repro.extract.statechart2pepa import (
    StatechartExtraction,
    compose_state_machines,
    extract_state_machine,
)

__all__ = [
    "extract_activity_diagram",
    "ExtractionResult",
    "DEFAULT_LOCATION",
    "extract_state_machine",
    "compose_state_machines",
    "StatechartExtraction",
    "RateTable",
    "parse_rates",
    "load_rates",
]
