"""State diagrams → PEPA sequential components (paper Section 5).

Each UML state machine becomes one PEPA sequential component: a
constant per simple state, a prefix per transition (action type = the
transition's trigger, rate from the rate table / ``rate`` tag /
passive), a choice where a state has several outgoing transitions.

Several machines compose by cooperation on their shared triggers —
exactly how the paper couples the client of Figure 8 to the Tomcat
server of Figure 9 (``request``/``response``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ExtractionError
from repro.extract.rates import RateTable
from repro.pepa.environment import Environment, PepaModel
from repro.pepa.syntax import Choice, Const, Cooperation, Expression, Prefix, Sequential
from repro.uml.statechart import StateMachine
from repro.utils.naming import fresh_name, sanitize_identifier

__all__ = ["StatechartExtraction", "extract_state_machine", "compose_state_machines"]


@dataclass
class StatechartExtraction:
    """One machine's PEPA image plus the mappings the reflector needs."""

    machine: StateMachine
    environment: Environment
    start_constant: str
    #: UML state xmi.id → PEPA constant name
    state_constants: dict[str, str]
    triggers: list[str] = field(default_factory=list)

    def constant_of_state(self, name_or_id: str) -> str:
        """The PEPA constant for a state (by name or xmi.id)."""
        if name_or_id in self.state_constants:
            return self.state_constants[name_or_id]
        state = self.machine.state_by_name(name_or_id)
        return self.state_constants[state.xmi_id]


def extract_state_machine(
    machine: StateMachine,
    rates: RateTable | dict | None = None,
    *,
    environment: Environment | None = None,
    prefix: str = "",
) -> StatechartExtraction:
    """Compile one state machine into PEPA definitions.

    ``prefix`` disambiguates state names when several machines share an
    environment (it defaults to empty; :func:`compose_state_machines`
    passes the machine name when needed).
    """
    if isinstance(rates, dict):
        rates = RateTable.from_numbers(rates)
    elif rates is None:
        rates = RateTable()
    env = environment if environment is not None else Environment()

    states = machine.simple_states()
    if not states:
        raise ExtractionError(f"state machine {machine.name!r} has no simple states")
    constants: dict[str, str] = {}
    taken: set[str] = set(env.components)
    for state in states:
        base = sanitize_identifier(
            f"{prefix}_{state.name}" if prefix else state.name, upper_initial=True
        )
        constants[state.xmi_id] = fresh_name(base, taken)
        taken.add(constants[state.xmi_id])

    for state in states:
        outgoing = [t for t in machine.outgoing(state) if machine.state(t.target).kind == "simple"]
        if not outgoing:
            raise ExtractionError(
                f"state {state.name!r} of {machine.name!r} has no outgoing "
                "transitions; steady-state analysis needs a recurrent machine"
            )
        branches: list[Sequential] = []
        for tr in outgoing:
            if not tr.trigger:
                raise ExtractionError(
                    f"transition from {state.name!r} in {machine.name!r} has no "
                    "trigger activity"
                )
            action = sanitize_identifier(tr.trigger)
            rate = rates.lookup(action, tr.tag("rate"))
            branches.append(Prefix(action, rate, Const(constants[tr.target])))
        body: Sequential = branches[0]
        for branch in branches[1:]:
            body = Choice(body, branch)
        env.define(constants[state.xmi_id], body)

    start = machine.start_state()
    return StatechartExtraction(
        machine=machine,
        environment=env,
        start_constant=constants[start.xmi_id],
        state_constants=constants,
        triggers=[sanitize_identifier(t) for t in machine.triggers()],
    )


def compose_state_machines(
    machines: list[StateMachine],
    rates: RateTable | dict | None = None,
    *,
    cooperation: str = "shared",
) -> tuple[PepaModel, list[StatechartExtraction]]:
    """Extract several machines into one environment and compose them.

    ``cooperation="shared"`` synchronises each successive pair on the
    intersection of their trigger alphabets (the natural reading of the
    paper's client/server coupling); ``"none"`` interleaves everything.
    """
    if not machines:
        raise ExtractionError("no state machines to compose")
    if cooperation not in ("shared", "none"):
        raise ExtractionError(f"unknown cooperation policy {cooperation!r}")
    if isinstance(rates, dict):
        rates = RateTable.from_numbers(rates)
    elif rates is None:
        rates = RateTable()

    env = Environment()
    names = [m.name for m in machines]
    need_prefix = len(set(names)) != len(names)
    extractions = [
        extract_state_machine(
            m, rates, environment=env,
            prefix=m.name if need_prefix else "",
        )
        for m in machines
    ]

    system: Expression = Const(extractions[0].start_constant)
    alphabet = set(extractions[0].triggers)
    for extraction in extractions[1:]:
        theirs = set(extraction.triggers)
        shared = alphabet & theirs if cooperation == "shared" else set()
        system = Cooperation(system, Const(extraction.start_constant), frozenset(shared))
        alphabet |= theirs
    return PepaModel(env, system), extractions
