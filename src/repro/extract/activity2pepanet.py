"""The Section 3 mapping: mobility activity diagrams → PEPA nets.

The paper's translation table, implemented rule for rule:

=====================================  =================================
Activity diagram                        PEPA net
=====================================  =================================
location (``atloc`` value)              net-level place
``<<move>>`` activity                   net-level transition
object                                  PEPA token
activity with associated object         activity of the token
activity without associated object      activity of a static component
first recorded location of object       place of the token in M0
location of object-less activity        place of the static component
=====================================  =================================

Two engineering decisions go beyond the table and are documented here
because they affect every model:

* **Recurrence.**  The paper's activity diagrams are acyclic (start
  marker → final), but throughput is a steady-state measure, so the
  analysed model must recur.  With ``loop=True`` (default) each token
  restarts its behaviour after its last activity; if it ended at a
  different location than it started, a synthetic ``reset_<object>``
  net transition carries it home at ``reset_rate``.  The reset rate is
  reported with the result so the modeller can judge its influence.
* **Action identity.**  UML actions with the same name map to the same
  PEPA action type, so the two ``close`` activities of Figure 1
  aggregate into one throughput figure — which is what the activity
  label means to the modeller.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.exceptions import ExtractionError
from repro.extract.rates import RateTable
from repro.pepa.environment import Environment
from repro.pepa.rates import ActiveRate, Rate
from repro.pepa.syntax import Cell, Choice, Const, Cooperation, Expression, Prefix, Sequential
from repro.pepanets.syntax import NetTransitionSpec, PepaNet, PlaceDef
from repro.pepanets.wellformed import check_net
from repro.uml.activity import ActivityGraph, ActivityNode
from repro.uml.validate import validate_for_extraction
from repro.utils.naming import fresh_name, sanitize_identifier

__all__ = ["ExtractionResult", "extract_activity_diagram", "DEFAULT_LOCATION"]

#: Place used when a diagram has no atloc tags at all (Figure 1): the
#: whole model lives at one implicit location.
DEFAULT_LOCATION = "local"


@dataclass
class ExtractionResult:
    """Everything the reflector needs to route results back to UML."""

    net: PepaNet
    graph: ActivityGraph
    #: UML action node id → PEPA action type
    action_names: dict[str, str]
    #: UML object name → token family constant
    token_families: dict[str, str]
    #: place name → static component constant
    static_components: dict[str, str]
    #: synthetic reset firings added for recurrence
    reset_actions: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    def pepa_action_of(self, action_node: ActivityNode | str) -> str:
        """The PEPA action type an extracted UML activity maps to."""
        node_id = action_node.xmi_id if isinstance(action_node, ActivityNode) else action_node
        try:
            return self.action_names[node_id]
        except KeyError:
            raise ExtractionError(f"node {node_id!r} was not extracted as an activity") from None


def extract_activity_diagram(
    graph: ActivityGraph,
    rates: RateTable | dict | None = None,
    *,
    loop: bool = True,
    reset_rate: float = 1.0,
    join_rate: float = 1000.0,
) -> ExtractionResult:
    """Compile one activity diagram into a PEPA net.

    Fork/join bars (the paper's Section 6 future-work item) are
    supported under three restrictions, each enforced with a precise
    diagnostic: (i) fork regions are not nested, (ii) each object's
    activities lie on at most one branch of a fork, and (iii) all
    participants of a join are at the same location when they reach it
    (tokens synchronise through their place context, so they must be
    co-located).  The synchronisation itself is a shared ``join_k``
    activity at rate ``join_rate`` (fast by default — the bar models an
    instantaneous barrier, not work).
    """
    problems = validate_for_extraction(graph)
    if problems:
        raise ExtractionError(
            f"diagram {graph.name!r} violates the extractor's restrictions: "
            + "; ".join(problems)
        )
    if isinstance(rates, dict):
        rates = RateTable.from_numbers(rates)
    elif rates is None:
        rates = RateTable()

    extraction = _Extraction(graph, rates, loop, reset_rate, join_rate)
    return extraction.run()


class _Extraction:
    def __init__(self, graph: ActivityGraph, rates: RateTable, loop: bool,
                 reset_rate: float, join_rate: float = 1000.0):
        self.graph = graph
        self.rates = rates
        self.loop = loop
        self.reset_rate = reset_rate
        self.join_rate = join_rate
        self.env = Environment()
        self.warnings: list[str] = []
        self.action_names: dict[str, str] = {}
        self.token_families: dict[str, str] = {}
        self.token_alphabets: dict[str, set[str]] = {}
        self.token_initial_location: dict[str, str] = {}
        self.reset_specs: dict[tuple[str, str, str], NetTransitionSpec] = {}
        self.firing_actions: set[str] = set()
        # fork/join bookkeeping
        self.fork_info: dict[str, tuple[str, list[tuple[str, frozenset[str]]]]] = {}
        self.join_actions: dict[str, str] = {}
        self.join_participants: dict[str, dict[str, str]] = {}

    # ------------------------------------------------------------------
    def run(self) -> ExtractionResult:
        graph = self.graph
        self.locations = graph.locations() or [DEFAULT_LOCATION]
        self._name_actions()
        self._analyse_forks()
        objects = self._group_objects()
        if not objects:
            raise ExtractionError(
                f"diagram {graph.name!r} has no object flows; there is nothing "
                "to extract as a PEPA token"
            )
        move_specs = self._move_transitions(objects)
        for obj in objects:
            self._build_token(obj, objects[obj])
        static_by_place = self._assign_static_actions()
        static_components = {}
        for place, action_ids in static_by_place.items():
            if action_ids:
                static_components[place] = self._build_static(place, action_ids)

        net = PepaNet(environment=self.env)
        for place in self.locations:
            net.add_place(self._place_def(place, objects, static_components.get(place)))
        for spec in move_specs:
            net.add_transition(spec)
        for spec in self.reset_specs.values():
            net.add_transition(spec)

        self._check_join_colocations()
        report = check_net(net)
        self.warnings.extend(report.warnings)
        report.raise_if_failed()
        return ExtractionResult(
            net=net,
            graph=graph,
            action_names=dict(self.action_names),
            token_families=dict(self.token_families),
            static_components=static_components,
            reset_actions=sorted({s.action for s in self.reset_specs.values()}),
            warnings=self.warnings,
        )

    # ------------------------------------------------------------------
    # Naming
    # ------------------------------------------------------------------
    def _name_actions(self) -> None:
        for action in self.graph.actions():
            self.action_names[action.xmi_id] = sanitize_identifier(action.name)
        move_names = {self.action_names[m.xmi_id] for m in self.graph.move_actions()}
        self.firing_actions |= move_names
        for action in self.graph.actions():
            name = self.action_names[action.xmi_id]
            if not action.is_move and name in move_names:
                raise ExtractionError(
                    f"activity name {action.name!r} is used both by a <<move>> "
                    "and a plain activity; rename one of them"
                )

    # ------------------------------------------------------------------
    # Fork/join analysis
    # ------------------------------------------------------------------
    def _analyse_forks(self) -> None:
        graph = self.graph
        joins = graph.nodes_of_kind("join")
        for i, join in enumerate(joins, start=1):
            base = sanitize_identifier(join.name) if join.name else f"join_{i}"
            self.join_actions[join.xmi_id] = fresh_name(
                base, set(self.action_names.values()) | set(self.join_actions.values())
            )
            self.join_participants[join.xmi_id] = {}
        for fork in graph.nodes_of_kind("fork"):
            branches: list[tuple[str, frozenset[str]]] = []
            joins_hit: set[str] = set()
            for head in graph.control_successors(fork):
                region, hit = self._branch_region(head.xmi_id)
                for node_id in region:
                    kind = graph.nodes[node_id].kind
                    if kind in ("fork",):
                        raise ExtractionError(
                            f"fork {fork.xmi_id!r}: nested forks are not supported"
                        )
                branches.append((head.xmi_id, frozenset(region)))
                joins_hit |= hit
            if len(joins_hit) != 1:
                raise ExtractionError(
                    f"fork {fork.xmi_id!r}: its branches must reconverge at "
                    f"exactly one join (found {len(joins_hit)})"
                )
            self.fork_info[fork.xmi_id] = (next(iter(joins_hit)), branches)

    def _branch_region(self, head_id: str) -> tuple[set[str], set[str]]:
        """Nodes reachable from a branch head without crossing a join,
        plus the set of joins the branch runs into."""
        graph = self.graph
        region: set[str] = set()
        joins: set[str] = set()
        frontier = [head_id]
        while frontier:
            node_id = frontier.pop()
            node = graph.nodes[node_id]
            if node.kind == "join":
                joins.add(node_id)
                continue
            if node_id in region:
                continue
            region.add(node_id)
            frontier.extend(n.xmi_id for n in graph.control_successors(node))
        return region, joins

    def _join_successor(self, join_id: str) -> ActivityNode | None:
        succs = self.graph.control_successors(self.graph.nodes[join_id])
        return succs[0] if succs else None

    def _check_join_colocations(self) -> None:
        for join_id, participants in self.join_participants.items():
            locations = set(participants.values())
            if len(locations) > 1:
                detail = ", ".join(f"{p} at {loc}" for p, loc in sorted(participants.items()))
                raise ExtractionError(
                    f"join {self.join_actions[join_id]!r}: participants must be "
                    f"co-located to synchronise through their place context "
                    f"({detail})"
                )

    def _group_objects(self) -> dict[str, list[ActivityNode]]:
        objects: dict[str, list[ActivityNode]] = {}
        classes: dict[str, str] = {}
        for box in self.graph.objects():
            obj, _, cls = box.object_parts()
            if obj in classes and classes[obj] != cls:
                raise ExtractionError(
                    f"object {obj!r} is declared with two classes: "
                    f"{classes[obj]!r} and {cls!r}"
                )
            classes[obj] = cls
            objects.setdefault(obj, []).append(box)
        for obj in objects:
            objects[obj].sort(key=lambda b: b.object_parts()[1])  # by variant
            family_base = sanitize_identifier(f"{classes[obj]}_{obj}", upper_initial=True)
            self.token_families[obj] = fresh_name(family_base, self.token_families.values())
        return objects

    # ------------------------------------------------------------------
    # Object-flow helpers
    # ------------------------------------------------------------------
    def _objects_of_action(self, action: ActivityNode) -> list[str]:
        names = []
        for box in self.graph.inputs_of(action) + self.graph.outputs_of(action):
            obj = box.object_parts()[0]
            if obj not in names:
                names.append(obj)
        return names

    def _box_location(self, box: ActivityNode) -> str:
        return box.atloc or DEFAULT_LOCATION

    def _move_out_location(self, action: ActivityNode, obj: str) -> str:
        for box in self.graph.outputs_of(action):
            if box.object_parts()[0] == obj:
                return self._box_location(box)
        raise ExtractionError(
            f"<<move>> activity {action.name!r} has no output object flow "
            f"for object {obj!r}"
        )

    def _move_in_location(self, action: ActivityNode, obj: str) -> str:
        for box in self.graph.inputs_of(action):
            if box.object_parts()[0] == obj:
                return self._box_location(box)
        raise ExtractionError(
            f"<<move>> activity {action.name!r} has no input object flow "
            f"for object {obj!r}"
        )

    def _move_transitions(self, objects: dict[str, list[ActivityNode]]) -> list[NetTransitionSpec]:
        specs: list[NetTransitionSpec] = []
        taken: set[str] = set()
        for move in self.graph.move_actions():
            participants = [o for o in objects if self._participates(move, o)]
            if not participants:
                raise ExtractionError(
                    f"<<move>> activity {move.name!r} has no participating objects"
                )
            action = self.action_names[move.xmi_id]
            name = fresh_name(action, taken)
            taken.add(name)
            rate = self.rates.lookup(action, move.tag("rate"))
            inputs = tuple(self._move_in_location(move, o) for o in participants)
            outputs = tuple(self._move_out_location(move, o) for o in participants)
            specs.append(
                NetTransitionSpec(
                    name=name, action=action, rate=rate,
                    inputs=inputs, outputs=outputs,
                )
            )
        return specs

    def _participates(self, move: ActivityNode, obj: str) -> bool:
        return any(b.object_parts()[0] == obj for b in self.graph.inputs_of(move))

    # ------------------------------------------------------------------
    # Token construction
    # ------------------------------------------------------------------
    def _build_token(self, obj: str, boxes: list[ActivityNode]) -> None:
        family = self.token_families[obj]
        initial_location = self._box_location(boxes[0])
        self.token_initial_location[obj] = initial_location
        relevant = {
            a.xmi_id for a in self.graph.actions() if obj in self._objects_of_action(a)
        }
        if not relevant:
            self.warnings.append(
                f"object {obj!r} has boxes but no associated activities; the "
                "token is inert"
            )
            self.env.define(family, Prefix("idle_" + sanitize_identifier(obj),
                                           ActiveRate(1e-6), Const(family)))
            self.token_alphabets[obj] = set()
            return
        builder = _BehaviourBuilder(
            self, family=family, relevant=relevant,
            location_follows_moves="own", obj=obj,
            initial_location=initial_location,
        )
        builder.build()
        self.token_alphabets[obj] = builder.alphabet

    # ------------------------------------------------------------------
    # Static components
    # ------------------------------------------------------------------
    def _assign_static_actions(self) -> dict[str, list[str]]:
        """Map object-less actions to places by "the last location to
        which a move was made" along the control flow.

        A ``performedBy`` tagged value on the action overrides the
        heuristic — the paper's Section 6 suggests exactly this
        refinement ("tags that define which action is performed by
        which static component could be introduced to the UML model").
        """
        graph = self.graph
        by_place: dict[str, list[str]] = {p: [] for p in self.locations}
        location_at: dict[str, str] = {}
        initial = graph.initial_node()
        first = self.locations[0]
        queue: deque[tuple[str, str]] = deque([(initial.xmi_id, first)])
        seen: set[str] = set()
        while queue:
            node_id, loc = queue.popleft()
            if node_id in seen:
                if location_at.get(node_id) not in (None, loc):
                    self.warnings.append(
                        f"node {graph.nodes[node_id].name or node_id!r} is reached "
                        f"at two locations ({location_at[node_id]!r} and {loc!r}); "
                        f"using {location_at[node_id]!r}"
                    )
                continue
            seen.add(node_id)
            location_at[node_id] = loc
            node = graph.nodes[node_id]
            next_loc = loc
            if node.kind == "action" and node.is_move:
                outs = self.graph.outputs_of(node)
                if outs:
                    next_loc = self._box_location(outs[0])
            if node.kind == "action" and not self._objects_of_action(node):
                declared = node.tag("performedBy")
                if declared is not None:
                    if declared not in by_place:
                        raise ExtractionError(
                            f"activity {node.name!r}: performedBy names unknown "
                            f"location {declared!r} (locations: {sorted(by_place)})"
                        )
                    by_place[declared].append(node_id)
                else:
                    by_place[loc].append(node_id)
            for succ in graph.control_successors(node):
                queue.append((succ.xmi_id, next_loc))
        return by_place

    def _build_static(self, place: str, action_ids: list[str]) -> str:
        family = fresh_name(
            sanitize_identifier(f"Static_{place}", upper_initial=True),
            set(self.env.components) | set(self.token_families.values()),
        )
        builder = _BehaviourBuilder(
            self, family=family, relevant=set(action_ids),
            location_follows_moves="none", obj=None,
            initial_location=place,
        )
        builder.build()
        return family

    # ------------------------------------------------------------------
    # Places
    # ------------------------------------------------------------------
    def _place_def(
        self,
        place: str,
        objects: dict[str, list[ActivityNode]],
        static: str | None,
    ) -> PlaceDef:
        residents = [
            obj for obj, boxes in objects.items()
            if any(self._box_location(b) == place for b in boxes)
        ]
        if not residents:
            # A location mentioned only as a move target still needs a
            # cell for every family that can arrive there.
            residents = [
                obj for obj in objects if self.token_initial_location.get(obj) is not None
            ]
        parts: list[tuple[Expression, set[str], Sequential | None]] = []
        for obj in residents:
            family = self.token_families[obj]
            initial = (
                Const(family)
                if self.token_initial_location.get(obj) == place
                else None
            )
            parts.append((Cell(family, None), set(self.token_alphabets[obj]), initial))
        if static is not None:
            parts.append((Const(static), set(_alphabet_of(self.env, static)), None))

        expr, _ = parts[0][0], parts[0][1]
        alphabet = set(parts[0][1])
        for other, other_alpha, _ in parts[1:]:
            shared = (alphabet & other_alpha) - self.firing_actions
            expr = Cooperation(expr, other, frozenset(shared))
            alphabet |= other_alpha
        contents = tuple(initial for part, _, initial in parts if isinstance(part, Cell))
        return PlaceDef(place, expr, contents)


def _alphabet_of(env: Environment, constant: str) -> frozenset[str]:
    return env.alphabet(Const(constant))


class _BehaviourBuilder:
    """Builds the PEPA definitions of one token or static component by
    a memoized traversal of the control flow."""

    def __init__(
        self,
        extraction: _Extraction,
        *,
        family: str,
        relevant: set[str],
        location_follows_moves: str,  # "own" (token) | "none" (static)
        obj: str | None,
        initial_location: str,
    ):
        self.x = extraction
        self.family = family
        self.relevant = relevant
        self.mode = location_follows_moves
        self.obj = obj
        self.initial_location = initial_location
        self.memo: dict[tuple[str, str], str] = {}
        self.alphabet: set[str] = set()
        self.counter = 0

    def build(self) -> None:
        graph = self.x.graph
        start = graph.initial_node()
        key = (start.xmi_id, self.initial_location)
        self.memo[key] = self.family
        body = self._body(start, self.initial_location)
        self.x.env.define(self.family, body)

    # -- naming ---------------------------------------------------------
    def _fresh(self) -> str:
        self.counter += 1
        return fresh_name(f"{self.family}_{self.counter}", self.x.env.components)

    def _behaviour(self, node: ActivityNode, loc: str) -> Sequential:
        key = (node.xmi_id, loc)
        if key in self.memo:
            return Const(self.memo[key])
        name = self._fresh()
        self.memo[key] = name
        self.x.env.define(name, self._body(node, loc))
        return Const(name)

    # -- rules ----------------------------------------------------------
    def _body(self, node: ActivityNode, loc: str) -> Sequential:
        graph = self.x.graph
        if node.kind in ("initial", "decision"):
            return self._successors(node, loc)
        if node.kind == "fork":
            return self._fork(node, loc)
        if node.kind == "join":
            return self._join(node, loc)
        if node.kind == "final":
            return self._end(loc)
        if node.kind == "action":
            if node.xmi_id in self.relevant:
                action = self.x.action_names[node.xmi_id]
                rate = self.x.rates.lookup(action, node.tag("rate"))
                next_loc = loc
                if node.is_move and self.mode == "own":
                    assert self.obj is not None
                    next_loc = self.x._move_out_location(node, self.obj)
                self.alphabet.add(action)
                return Prefix(action, rate, self._successors_as_const(node, next_loc))
            return self._successors(node, loc)
        raise ExtractionError(f"unexpected node kind {node.kind!r} in control flow")

    def _successors(self, node: ActivityNode, loc: str) -> Sequential:
        succs = self.x.graph.control_successors(node)
        if not succs:
            return self._end(loc)
        branches = [self._behaviour(s, loc) for s in succs]
        result: Sequential = branches[0]
        for branch in branches[1:]:
            result = Choice(result, branch)
        return result

    def _successors_as_const(self, node: ActivityNode, loc: str) -> Sequential:
        """A prefix continuation must be a single sequential term; fold
        multiple successors into a choice of constants."""
        return self._successors(node, loc)

    def _fork(self, node: ActivityNode, loc: str) -> Sequential:
        """A component follows the unique branch holding its own
        activities; a component untouched by the region skips past the
        join (it does not take part in the barrier)."""
        join_id, branches = self.x.fork_info[node.xmi_id]
        mine = [head for head, region in branches if region & self.relevant]
        if len(mine) > 1:
            raise ExtractionError(
                f"{self.family!r}: its activities appear on {len(mine)} branches "
                f"of fork {node.xmi_id!r}; a sequential component cannot be in "
                "two branches at once — split the object or merge the branches"
            )
        if len(mine) == 1:
            return self._behaviour(self.x.graph.nodes[mine[0]], loc)
        successor = self.x._join_successor(join_id)
        if successor is None:
            return self._end(loc)
        return self._behaviour(successor, loc)

    def _join(self, node: ActivityNode, loc: str) -> Sequential:
        """Participants synchronise on a shared join activity through
        their place context, then continue together."""
        action = self.x.join_actions[node.xmi_id]
        self.x.join_participants[node.xmi_id][self.family] = loc
        self.alphabet.add(action)
        return Prefix(action, ActiveRate(self.x.join_rate), self._successors(node, loc))

    def _end(self, loc: str) -> Sequential:
        if not self.x.loop:
            raise ExtractionError(
                f"the behaviour of {self.family!r} terminates but loop=False; "
                "steady-state analysis needs a recurrent model"
            )
        if loc == self.initial_location:
            return Const(self.family)
        assert self.obj is not None, "static components never change location"
        reset_action = f"reset_{sanitize_identifier(self.obj)}"
        key = (reset_action, loc, self.initial_location)
        if key not in self.x.reset_specs:
            self.x.reset_specs[key] = NetTransitionSpec(
                name=fresh_name(
                    f"{reset_action}_{sanitize_identifier(loc)}",
                    {s.name for s in self.x.reset_specs.values()},
                ),
                action=reset_action,
                rate=ActiveRate(self.x.reset_rate),
                inputs=(loc,),
                outputs=(self.initial_location,),
            )
            self.x.firing_actions.add(reset_action)
        self.alphabet.add(reset_action)
        return Prefix(reset_action, ActiveRate(self.x.reset_rate), Const(self.family))
