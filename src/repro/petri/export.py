"""Graphviz rendering of P/T nets and their reachability graphs."""

from __future__ import annotations

from repro.petri.net import PetriNet
from repro.petri.reachability import ReachabilityGraph

__all__ = ["petri_net_dot", "reachability_graph_dot"]


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def petri_net_dot(net: PetriNet) -> str:
    """The net structure: places as circles (token count inside),
    transitions as bars, arc weights on the edges."""
    m0 = net.initial_marking
    lines = [
        "digraph petrinet {",
        "  rankdir=LR;",
        '  node [fontsize=10, fontname="Helvetica"];',
    ]
    for name, place in net.places.items():
        tokens = m0[name]
        dot_marks = "•" * tokens if tokens <= 4 else f"{tokens}"
        label = f"{name}\\n{dot_marks}" if tokens else name
        if place.capacity is not None:
            label += f"\\n(cap {place.capacity})"
        lines.append(f'  p_{name} [shape=circle, label="{_escape(label)}"];')
    for t in net.transitions.values():
        label = t.name
        if t.priority:
            label += f"\\nprio {t.priority}"
        if t.rate is not None:
            label += f"\\nrate {t.rate:g}"
        lines.append(
            f'  t_{t.name} [shape=box, height=0.2, style=filled, '
            f'fillcolor=black, fontcolor=white, label="{_escape(label)}"];'
        )
        for place, weight in t.inputs:
            suffix = f' [label="{weight}"]' if weight > 1 else ""
            lines.append(f"  p_{place} -> t_{t.name}{suffix};")
        for place, weight in t.outputs:
            suffix = f' [label="{weight}"]' if weight > 1 else ""
            lines.append(f"  t_{t.name} -> p_{place}{suffix};")
    lines.append("}")
    return "\n".join(lines)


def reachability_graph_dot(graph: ReachabilityGraph, *, max_markings: int = 150) -> str:
    """The reachability graph with transition names on the arcs."""
    if graph.size > max_markings:
        raise ValueError(
            f"refusing to render {graph.size} markings as dot (limit {max_markings})"
        )
    lines = [
        "digraph reachability {",
        "  rankdir=LR;",
        '  node [shape=box, fontsize=9, fontname="Helvetica"];',
    ]
    for i, marking in enumerate(graph.markings):
        extra = ", style=bold" if i == 0 else ""
        lines.append(f'  m{i} [label="{_escape(str(marking))}"{extra}];')
    for source, name, target in graph.edges:
        lines.append(f'  m{source} -> m{target} [label="{_escape(name)}"];')
    lines.append("}")
    return "\n".join(lines)
