"""Structural analysis: P- and T-invariants over the rationals.

A P-invariant is a vector ``y >= 0`` with ``yᵀC = 0`` (token-weighted
sums conserved by every firing); a T-invariant is ``x >= 0`` with
``Cx = 0`` (firing-count vectors returning to the start marking).  We
compute a rational basis of the left/right null space with exact
``fractions.Fraction`` Gaussian elimination — floating point would
produce spurious "almost-invariants" — and then scale each basis vector
to the smallest integer form.
"""

from __future__ import annotations

from fractions import Fraction

from repro.petri.net import PetriNet

__all__ = ["p_invariants", "t_invariants", "conserved_token_sum"]


def _null_space_basis(matrix: list[list[Fraction]]) -> list[list[Fraction]]:
    """Basis of the (right) null space of ``matrix`` by exact RREF."""
    if not matrix:
        return []
    rows = [row[:] for row in matrix]
    n_cols = len(rows[0])
    pivots: list[int] = []
    r = 0
    for c in range(n_cols):
        pivot_row = next((i for i in range(r, len(rows)) if rows[i][c] != 0), None)
        if pivot_row is None:
            continue
        rows[r], rows[pivot_row] = rows[pivot_row], rows[r]
        factor = rows[r][c]
        rows[r] = [v / factor for v in rows[r]]
        for i in range(len(rows)):
            if i != r and rows[i][c] != 0:
                scale = rows[i][c]
                rows[i] = [a - scale * b for a, b in zip(rows[i], rows[r])]
        pivots.append(c)
        r += 1
        if r == len(rows):
            break
    free_cols = [c for c in range(n_cols) if c not in pivots]
    basis = []
    for free in free_cols:
        vec = [Fraction(0)] * n_cols
        vec[free] = Fraction(1)
        for row_idx, pivot_col in enumerate(pivots):
            vec[pivot_col] = -rows[row_idx][free]
        basis.append(vec)
    return basis


def _integerise(vec: list[Fraction]) -> list[int]:
    """Scale a rational vector to coprime integers (sign: first nonzero
    positive)."""
    from math import gcd, lcm

    denominators = [f.denominator for f in vec if f != 0]
    if not denominators:
        return [0] * len(vec)
    scale = lcm(*denominators) if len(denominators) > 1 else denominators[0]
    ints = [int(f * scale) for f in vec]
    g = 0
    for v in ints:
        g = gcd(g, abs(v))
    if g > 1:
        ints = [v // g for v in ints]
    first = next((v for v in ints if v != 0), 0)
    if first < 0:
        ints = [-v for v in ints]
    return ints


def p_invariants(net: PetriNet) -> list[dict[str, int]]:
    """Integer P-invariant basis as {place: weight} maps (zero weights
    omitted)."""
    places, _, C = net.incidence_matrix()
    # left null space of C = right null space of Cᵀ
    transposed = [[Fraction(C[p][t]) for p in range(len(places))] for t in range(len(C[0]))] if C else []
    basis = _null_space_basis(transposed) if transposed else []
    out = []
    for vec in basis:
        ints = _integerise(vec)
        out.append({places[i]: w for i, w in enumerate(ints) if w != 0})
    return out


def t_invariants(net: PetriNet) -> list[dict[str, int]]:
    """Integer T-invariant basis as {transition: count} maps."""
    _, transitions, C = net.incidence_matrix()
    matrix = [[Fraction(v) for v in row] for row in C]
    basis = _null_space_basis(matrix) if matrix else []
    out = []
    for vec in basis:
        ints = _integerise(vec)
        out.append({transitions[i]: w for i, w in enumerate(ints) if w != 0})
    return out


def conserved_token_sum(net: PetriNet, invariant: dict[str, int]) -> int:
    """The weighted token sum of an invariant at the initial marking —
    constant across all reachable markings when the invariant is valid."""
    m0 = net.initial_marking
    return sum(weight * m0[place] for place, weight in invariant.items())
