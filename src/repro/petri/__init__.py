"""Classical and stochastic Petri nets (paper substrate S3).

The identitiless-token baseline that PEPA nets generalise: P/T nets
with arc weights, capacities and priorities; reachability analysis;
P/T-invariants; and the exponential (GSPN-style) timed interpretation
mapped to a CTMC.
"""

from repro.petri.coverability import (
    OMEGA,
    CoverabilityGraph,
    OmegaMarking,
    build_coverability_graph,
)
from repro.petri.gspn import StochasticPetriNet, spn_to_ctmc
from repro.petri.structural import (
    commoner_check,
    is_siphon,
    is_trap,
    maximal_marked_trap,
    minimal_siphons,
)
from repro.petri.invariants import conserved_token_sum, p_invariants, t_invariants
from repro.petri.marking import Marking
from repro.petri.net import NetTransition, PetriNet, Place
from repro.petri.reachability import ReachabilityGraph, build_reachability_graph

__all__ = [
    "PetriNet",
    "Place",
    "NetTransition",
    "Marking",
    "ReachabilityGraph",
    "build_reachability_graph",
    "p_invariants",
    "t_invariants",
    "conserved_token_sum",
    "StochasticPetriNet",
    "spn_to_ctmc",
    "OMEGA",
    "OmegaMarking",
    "CoverabilityGraph",
    "build_coverability_graph",
    "is_siphon",
    "is_trap",
    "minimal_siphons",
    "maximal_marked_trap",
    "commoner_check",
]
