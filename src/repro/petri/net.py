"""Classical place/transition Petri nets with arc weights and priorities.

This is the substrate the PEPA-nets formalism generalises: the paper
contrasts PEPA nets with "classical Petri nets [where] tokens are
identitiless, and can be viewed as being consumed from input places and
created into output places".  We implement that baseline faithfully —
including the priority semantics PEPA nets inherit (a transition with
concession only fires if no higher-priority transition has concession)
— so the two formalisms can be compared like-for-like in the benchmark
suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import WellFormednessError
from repro.petri.marking import Marking

__all__ = ["Place", "NetTransition", "PetriNet"]


@dataclass(frozen=True)
class Place:
    """A net place, optionally capacity-bounded (``None`` = unbounded)."""

    name: str
    capacity: int | None = None

    def __post_init__(self) -> None:
        if self.capacity is not None and self.capacity < 1:
            raise WellFormednessError(f"place {self.name!r}: capacity must be >= 1")


@dataclass(frozen=True)
class NetTransition:
    """A transition with weighted input/output arcs and a priority.

    Higher ``priority`` values pre-empt lower ones, matching the PEPA
    nets priority function π.  ``rate`` is only used by the stochastic
    interpretation (:mod:`repro.petri.gspn`); the untimed semantics
    ignores it.
    """

    name: str
    inputs: tuple[tuple[str, int], ...]
    outputs: tuple[tuple[str, int], ...]
    priority: int = 0
    rate: float | None = None

    def __post_init__(self) -> None:
        for place, weight in self.inputs + self.outputs:
            if weight < 1:
                raise WellFormednessError(
                    f"transition {self.name!r}: arc weight to {place!r} must be >= 1"
                )

    def input_places(self) -> tuple[str, ...]:
        """The places the transition consumes from."""
        return tuple(p for p, _ in self.inputs)

    def output_places(self) -> tuple[str, ...]:
        """The places the transition produces into."""
        return tuple(p for p, _ in self.outputs)


class PetriNet:
    """An immutable-after-build P/T net with an initial marking."""

    def __init__(self, name: str = "net"):
        self.name = name
        self.places: dict[str, Place] = {}
        self.transitions: dict[str, NetTransition] = {}
        self._initial: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_place(self, name: str, tokens: int = 0, capacity: int | None = None) -> Place:
        """Add a place with initial tokens and optional capacity."""
        if name in self.places:
            raise WellFormednessError(f"place {name!r} already exists")
        place = Place(name, capacity)
        if tokens < 0:
            raise WellFormednessError(f"place {name!r}: initial tokens must be >= 0")
        if capacity is not None and tokens > capacity:
            raise WellFormednessError(f"place {name!r}: initial tokens exceed capacity")
        self.places[name] = place
        self._initial[name] = tokens
        return place

    def add_transition(
        self,
        name: str,
        inputs: dict[str, int] | list[str],
        outputs: dict[str, int] | list[str],
        *,
        priority: int = 0,
        rate: float | None = None,
    ) -> NetTransition:
        """Add a transition with weighted input/output arcs."""
        if name in self.transitions:
            raise WellFormednessError(f"transition {name!r} already exists")
        ins = tuple(sorted(self._arcs(inputs).items()))
        outs = tuple(sorted(self._arcs(outputs).items()))
        for place, _ in ins + outs:
            if place not in self.places:
                raise WellFormednessError(f"transition {name!r}: unknown place {place!r}")
        transition = NetTransition(name, ins, outs, priority=priority, rate=rate)
        self.transitions[name] = transition
        return transition

    @staticmethod
    def _arcs(spec: dict[str, int] | list[str]) -> dict[str, int]:
        if isinstance(spec, dict):
            return dict(spec)
        arcs: dict[str, int] = {}
        for place in spec:
            arcs[place] = arcs.get(place, 0) + 1
        return arcs

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    @property
    def initial_marking(self) -> Marking:
        return Marking.from_dict(self._initial, order=sorted(self.places))

    def has_concession(self, transition: NetTransition, marking: Marking) -> bool:
        """Enough input tokens and enough output capacity."""
        for place, weight in transition.inputs:
            if marking[place] < weight:
                return False
        for place, weight in transition.outputs:
            cap = self.places[place].capacity
            if cap is not None:
                consumed = dict(transition.inputs).get(place, 0)
                if marking[place] - consumed + weight > cap:
                    return False
        return True

    def enabled_transitions(self, marking: Marking) -> list[NetTransition]:
        """Transitions that may fire: concession filtered by priority."""
        with_concession = [
            t for t in self.transitions.values() if self.has_concession(t, marking)
        ]
        if not with_concession:
            return []
        top = max(t.priority for t in with_concession)
        return sorted(
            (t for t in with_concession if t.priority == top), key=lambda t: t.name
        )

    def fire(self, transition: NetTransition, marking: Marking) -> Marking:
        """The successor marking; raises without concession."""
        if not self.has_concession(transition, marking):
            raise WellFormednessError(
                f"transition {transition.name!r} has no concession in {marking}"
            )
        counts = marking.to_dict()
        for place, weight in transition.inputs:
            counts[place] -= weight
        for place, weight in transition.outputs:
            counts[place] = counts.get(place, 0) + weight
        return Marking.from_dict(counts, order=sorted(self.places))

    # ------------------------------------------------------------------
    def incidence_matrix(self) -> tuple[list[str], list[str], list[list[int]]]:
        """(place order, transition order, C) with C[p][t] = out - in."""
        places = sorted(self.places)
        transitions = sorted(self.transitions)
        C = [[0] * len(transitions) for _ in places]
        p_index = {p: i for i, p in enumerate(places)}
        for j, tname in enumerate(transitions):
            t = self.transitions[tname]
            for place, weight in t.inputs:
                C[p_index[place]][j] -= weight
            for place, weight in t.outputs:
                C[p_index[place]][j] += weight
        return places, transitions, C

    def __repr__(self) -> str:
        return (
            f"PetriNet({self.name!r}, places={len(self.places)}, "
            f"transitions={len(self.transitions)})"
        )
