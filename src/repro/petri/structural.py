"""Siphons and traps: classical structural liveness analysis.

A **siphon** is a place set S with •S ⊆ S• (every transition feeding S
also takes from it): once S empties it stays empty, permanently
disabling S•.  A **trap** is the dual, S• ⊆ •S: once marked, always
marked.  The Commoner condition — every minimal siphon contains an
initially-marked trap — certifies deadlock-freedom for free-choice
nets.

Minimal-siphon enumeration is NP-hard in general; we implement the
standard refinement algorithm (shrink a candidate set until it is a
siphon, branch on violating places) with an explicit work cap, which is
ample for the structural size of extracted PEPA-net abstractions.
"""

from __future__ import annotations

from repro.exceptions import StateSpaceError
from repro.petri.net import PetriNet

__all__ = ["is_siphon", "is_trap", "minimal_siphons", "maximal_marked_trap", "commoner_check"]


def _preset_of_places(net: PetriNet, places: frozenset[str]) -> frozenset[str]:
    """Transitions with an output arc into the set (•S)."""
    return frozenset(
        t.name for t in net.transitions.values()
        if any(p in places for p in t.output_places())
    )


def _postset_of_places(net: PetriNet, places: frozenset[str]) -> frozenset[str]:
    """Transitions with an input arc from the set (S•)."""
    return frozenset(
        t.name for t in net.transitions.values()
        if any(p in places for p in t.input_places())
    )


def is_siphon(net: PetriNet, places: set[str] | frozenset[str]) -> bool:
    """True when the place set satisfies the siphon condition (preset within postset)."""
    s = frozenset(places)
    if not s or not s <= set(net.places):
        return False
    return _preset_of_places(net, s) <= _postset_of_places(net, s)


def is_trap(net: PetriNet, places: set[str] | frozenset[str]) -> bool:
    """True when the place set satisfies the trap condition (postset within preset)."""
    s = frozenset(places)
    if not s or not s <= set(net.places):
        return False
    return _postset_of_places(net, s) <= _preset_of_places(net, s)


def minimal_siphons(net: PetriNet, *, max_work: int = 100_000) -> list[frozenset[str]]:
    """All minimal (inclusion-wise) non-empty siphons.

    Branch-and-bound: starting from each single place, grow the set to
    repair violations (a transition in •S but not in S• forces adding
    one of its input places — branch over the choices), then keep the
    inclusion-minimal results.
    """
    siphons: set[frozenset[str]] = set()
    work = 0

    def violating_transition(s: frozenset[str]) -> tuple[str, ...] | None:
        """Input places of some transition that feeds S without taking
        from it; None when S is a siphon."""
        post = _postset_of_places(net, s)
        for t in net.transitions.values():
            if t.name in post:
                continue
            if any(p in s for p in t.output_places()):
                inputs = t.input_places()
                if not inputs:
                    return ()  # irreparable: a source transition feeds S
                return inputs
        return None

    def explore(s: frozenset[str]) -> None:
        nonlocal work
        work += 1
        if work > max_work:
            raise StateSpaceError(f"siphon enumeration exceeded {max_work} steps")
        if any(existing <= s for existing in siphons):
            return  # dominated by a known (smaller or equal) siphon
        repair = violating_transition(s)
        if repair is None:
            # s is a siphon; drop any supersets already collected
            for existing in list(siphons):
                if s <= existing and s != existing:
                    siphons.discard(existing)
            siphons.add(s)
            return
        if repair == ():
            return  # cannot be repaired (source transition feeds the set)
        for place in repair:
            explore(s | {place})

    for place in sorted(net.places):
        explore(frozenset({place}))
    # final minimality sweep
    return sorted(
        (s for s in siphons if not any(o < s for o in siphons)),
        key=lambda s: (len(s), sorted(s)),
    )


def maximal_marked_trap(net: PetriNet, within: frozenset[str]) -> frozenset[str]:
    """The largest trap inside ``within`` that is marked at M0 (may be
    empty).  Standard greedy shrinking: repeatedly remove places whose
    emptying cannot be prevented (a transition consumes from them
    without refilling the set)."""
    s = set(within)
    changed = True
    while changed and s:
        changed = False
        pre = _preset_of_places(net, frozenset(s))
        for t in net.transitions.values():
            if t.name in pre:
                continue
            consumed = [p for p in t.input_places() if p in s]
            if consumed:
                for p in consumed:
                    s.discard(p)
                changed = True
    m0 = net.initial_marking
    if any(m0[p] > 0 for p in s):
        return frozenset(s)
    return frozenset()


def commoner_check(net: PetriNet, *, max_work: int = 100_000) -> tuple[bool, list[frozenset[str]]]:
    """Commoner's condition: every minimal siphon contains an
    initially-marked trap.  Returns (holds, offending siphons).

    Sufficient for liveness of free-choice nets and a useful deadlock
    smell for anything else.
    """
    offenders = []
    for siphon in minimal_siphons(net, max_work=max_work):
        if not maximal_marked_trap(net, siphon):
            offenders.append(siphon)
    return (not offenders, offenders)
