"""Markings: immutable token-count vectors keyed by place name.

Stored as a tuple aligned with a canonical place order so markings are
hashable (reachability-graph keys) and cheap to compare.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import WellFormednessError

__all__ = ["Marking"]


@dataclass(frozen=True)
class Marking:
    """Token counts over an ordered tuple of place names."""

    order: tuple[str, ...]
    counts: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.order) != len(self.counts):
            raise WellFormednessError("marking order/count length mismatch")
        if any(c < 0 for c in self.counts):
            raise WellFormednessError("negative token count")

    @classmethod
    def from_dict(cls, counts: dict[str, int], order: list[str] | tuple[str, ...]) -> "Marking":
        order_t = tuple(order)
        return cls(order_t, tuple(int(counts.get(p, 0)) for p in order_t))

    def __getitem__(self, place: str) -> int:
        try:
            return self.counts[self.order.index(place)]
        except ValueError:
            raise KeyError(f"unknown place {place!r}") from None

    def to_dict(self) -> dict[str, int]:
        """The marking as a {place: tokens} mapping."""
        return dict(zip(self.order, self.counts))

    def total(self) -> int:
        """The total token count over all places."""
        return sum(self.counts)

    def covers(self, other: "Marking") -> bool:
        """Componentwise >= (used by boundedness/coverability checks)."""
        if self.order != other.order:
            raise WellFormednessError("markings over different place orders")
        return all(a >= b for a, b in zip(self.counts, other.counts))

    def __str__(self) -> str:
        inside = ", ".join(f"{p}:{c}" for p, c in zip(self.order, self.counts) if c)
        return "{" + inside + "}"
