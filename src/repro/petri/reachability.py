"""Reachability analysis for P/T nets.

Builds the explicit reachability graph (bounded, with a state ceiling)
and answers the classic behavioural questions: boundedness (via a
coverability-style check during exploration), deadlock states, liveness
of individual transitions, and home-marking detection.

The graph is explored by the shared BFS kernel
(:func:`repro.core.explore.explore_lts`), which brings the Petri layer
the same cooperative :class:`~repro.resilience.budget.ExecutionBudget`
support, tracer span (``petri.reachability``) and ``explore.progress``
events the PEPA layers have; the unboundedness abort is expressed as
the kernel's ``on_new_state`` hook walking the BFS ancestor chain.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

import networkx as nx

from repro.core.explore import Exploration, explore_lts
from repro.core.lts import LabelledArc, Lts
from repro.exceptions import StateSpaceError
from repro.petri.marking import Marking
from repro.petri.net import PetriNet

if TYPE_CHECKING:  # pragma: no cover — typing only, avoids a hard import
    from repro.resilience.budget import ExecutionBudget

__all__ = ["ReachabilityGraph", "build_reachability_graph"]

DEFAULT_MAX_MARKINGS = 500_000


class ReachabilityGraph(Lts):
    """The reachable markings of a net, with the firing relation.

    Arcs carry the conventional rate 1.0 (the untimed semantics has no
    rates); :attr:`edges` renders them as the classic ``(source,
    transition, target)`` triples.
    """

    def __init__(
        self,
        net: PetriNet,
        markings: list[Marking],
        index: dict[Marking, int] | None = None,
        edges: list[tuple[int, str, int]] | None = None,
        arcs: list[LabelledArc] | None = None,
    ):
        if arcs is None:
            arcs = [LabelledArc(s, t, 1.0, d) for s, t, d in (edges or [])]
        super().__init__(states=markings, arcs=arcs, index=index)
        self.net = net

    @property
    def markings(self) -> list[Marking]:
        return self.states

    @property
    def edges(self) -> list[tuple[int, str, int]]:
        """The firing relation as (source, transition name, target)."""
        return [(a.source, a.action, a.target) for a in self.arcs]

    def is_deadlock_free(self) -> bool:
        """True when every reachable marking enables something."""
        return not self.deadlocks()

    def bound_of(self, place: str) -> int:
        """The maximum observed token count of ``place`` (its k-bound)."""
        return max(m[place] for m in self.markings)

    def is_safe(self) -> bool:
        """1-bounded everywhere."""
        return all(max(m.counts) <= 1 for m in self.markings)

    def fired_transitions(self) -> frozenset[str]:
        """Transitions that fire somewhere in the graph."""
        return self.actions()

    def dead_transitions(self) -> frozenset[str]:
        """Transitions that never fire from any reachable marking."""
        return frozenset(self.net.transitions) - self.fired_transitions()

    def live_transitions(self) -> frozenset[str]:
        """Transitions fireable again from every reachable marking
        (L4-liveness on the finite graph: each transition labels an edge
        reachable from every node)."""
        reverse = self.to_networkx().reverse(copy=False)
        all_states = set(range(self.size))
        live: set[str] = set()
        # nodes from which each transition-labelled edge is reachable
        for t in self.net.transitions:
            edge_sources = {a.source for a in self.arcs_by_action(t)}
            if not edge_sources:
                continue
            reachable_back: set[int] = set()
            for src in edge_sources:
                reachable_back |= {src} | nx.descendants(reverse, src)
            if reachable_back >= all_states:
                live.add(t)
        return frozenset(live)

    def home_markings(self) -> list[int]:
        """Markings reachable from every reachable marking."""
        graph = self.to_networkx()
        sccs = list(nx.strongly_connected_components(graph))
        condensed = nx.condensation(graph, sccs)
        terminal = [n for n in condensed.nodes if condensed.out_degree(n) == 0]
        if len(terminal) != 1:
            return []
        return sorted(sccs[terminal[0]])

    def to_networkx(self) -> "nx.MultiDiGraph":
        """The graph as a networkx MultiDiGraph (edge label = transition)."""
        graph = nx.MultiDiGraph()
        graph.add_nodes_from(range(self.size))
        for a in self.arcs:
            graph.add_edge(a.source, a.target, label=a.action)
        return graph


def build_reachability_graph(
    net: PetriNet,
    *,
    max_markings: int = DEFAULT_MAX_MARKINGS,
    budget: "ExecutionBudget | None" = None,
) -> ReachabilityGraph:
    """BFS over the firing relation.

    Unbounded nets are detected by the ω-free coverability heuristic: if
    a newly reached marking strictly covers an ancestor on its path, the
    net is unbounded and exploration aborts with a clear error rather
    than running to the state ceiling.  ``budget`` is an optional
    cooperative :class:`~repro.resilience.budget.ExecutionBudget`
    checked once per expanded marking.
    """

    def successors(marking: Marking) -> Iterator[tuple[str, float, Marking]]:
        for transition in net.enabled_transitions(marking):
            yield transition.name, 1.0, net.fire(transition, marking)

    def check_bounded(successor: Marking, src: int, exploration: Exploration) -> None:
        # coverability: walk ancestors; strict covering => unbounded
        for ancestor in exploration.ancestors(src):
            if successor.covers(ancestor) and successor != ancestor:
                raise StateSpaceError(
                    f"net {net.name!r} is unbounded: marking {successor} "
                    f"strictly covers ancestor {ancestor}"
                )

    lts = explore_lts(
        net.initial_marking,
        successors,
        stage="petri.reachability",
        budget_stage="petri reachability graph",
        max_states=max_markings,
        budget=budget,
        span_attrs={"net": net.name, "transitions": len(net.transitions)},
        span_count_key="markings",
        overflow=lambda n: f"reachability graph exceeds {n} markings",
        on_new_state=check_bounded,
    )
    return ReachabilityGraph(
        net=net, markings=lts.states, index=lts.index, arcs=lts.arcs
    )
