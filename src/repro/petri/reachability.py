"""Reachability analysis for P/T nets.

Builds the explicit reachability graph (bounded, with a state ceiling)
and answers the classic behavioural questions: boundedness (via a
coverability-style check during exploration), deadlock states, liveness
of individual transitions, and home-marking detection.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import networkx as nx

from repro.exceptions import StateSpaceError
from repro.petri.marking import Marking
from repro.petri.net import PetriNet

__all__ = ["ReachabilityGraph", "build_reachability_graph"]

DEFAULT_MAX_MARKINGS = 500_000


@dataclass
class ReachabilityGraph:
    """The reachable markings of a net, with the firing relation."""

    net: PetriNet
    markings: list[Marking]
    index: dict[Marking, int] = field(repr=False)
    edges: list[tuple[int, str, int]] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.markings)

    def deadlocks(self) -> list[int]:
        """Indices of markings enabling no transition."""
        sources = {s for s, _, _ in self.edges}
        return [i for i in range(self.size) if i not in sources]

    def is_deadlock_free(self) -> bool:
        """True when every reachable marking enables something."""
        return not self.deadlocks()

    def bound_of(self, place: str) -> int:
        """The maximum observed token count of ``place`` (its k-bound)."""
        return max(m[place] for m in self.markings)

    def is_safe(self) -> bool:
        """1-bounded everywhere."""
        return all(max(m.counts) <= 1 for m in self.markings)

    def fired_transitions(self) -> frozenset[str]:
        """Transitions that fire somewhere in the graph."""
        return frozenset(t for _, t, _ in self.edges)

    def dead_transitions(self) -> frozenset[str]:
        """Transitions that never fire from any reachable marking."""
        return frozenset(self.net.transitions) - self.fired_transitions()

    def live_transitions(self) -> frozenset[str]:
        """Transitions fireable again from every reachable marking
        (L4-liveness on the finite graph: each transition labels an edge
        reachable from every node)."""
        graph = self.to_networkx()
        live: set[str] = set()
        # nodes from which each transition-labelled edge is reachable
        for t in self.net.transitions:
            edge_sources = {s for s, name, _ in self.edges if name == t}
            if not edge_sources:
                continue
            reverse = graph.reverse(copy=False)
            reachable_back: set[int] = set()
            for src in edge_sources:
                reachable_back |= {src} | nx.descendants(reverse, src)
            if reachable_back >= set(range(self.size)):
                live.add(t)
        return frozenset(live)

    def home_markings(self) -> list[int]:
        """Markings reachable from every reachable marking."""
        graph = self.to_networkx()
        sccs = list(nx.strongly_connected_components(graph))
        condensed = nx.condensation(graph, sccs)
        terminal = [n for n in condensed.nodes if condensed.out_degree(n) == 0]
        if len(terminal) != 1:
            return []
        return sorted(sccs[terminal[0]])

    def to_networkx(self) -> "nx.MultiDiGraph":
        """The graph as a networkx MultiDiGraph (edge label = transition)."""
        graph = nx.MultiDiGraph()
        graph.add_nodes_from(range(self.size))
        for s, t, d in self.edges:
            graph.add_edge(s, d, label=t)
        return graph


def build_reachability_graph(
    net: PetriNet, *, max_markings: int = DEFAULT_MAX_MARKINGS
) -> ReachabilityGraph:
    """BFS over the firing relation.

    Unbounded nets are detected by the ω-free coverability heuristic: if
    a newly reached marking strictly covers an ancestor on its path, the
    net is unbounded and exploration aborts with a clear error rather
    than running to the state ceiling.
    """
    initial = net.initial_marking
    index: dict[Marking, int] = {initial: 0}
    markings: list[Marking] = [initial]
    # ancestor chains for the coverability check: parent pointers
    parent: dict[int, int | None] = {0: None}
    edges: list[tuple[int, str, int]] = []
    queue: deque[int] = deque([0])

    while queue:
        current = queue.popleft()
        marking = markings[current]
        for transition in net.enabled_transitions(marking):
            successor = net.fire(transition, marking)
            nxt = index.get(successor)
            if nxt is None:
                # coverability: walk ancestors; strict covering => unbounded
                walker: int | None = current
                while walker is not None:
                    ancestor = markings[walker]
                    if successor.covers(ancestor) and successor != ancestor:
                        raise StateSpaceError(
                            f"net {net.name!r} is unbounded: marking {successor} "
                            f"strictly covers ancestor {ancestor}"
                        )
                    walker = parent[walker]
                if len(markings) >= max_markings:
                    raise StateSpaceError(
                        f"reachability graph exceeds {max_markings} markings"
                    )
                nxt = len(markings)
                index[successor] = nxt
                markings.append(successor)
                parent[nxt] = current
                queue.append(nxt)
            edges.append((current, transition.name, nxt))
    return ReachabilityGraph(net=net, markings=markings, index=index, edges=edges)
