"""Stochastic Petri nets: exponential firing delays → CTMC.

The baseline quantitative formalism the paper's PEPA nets improve on:
tokens are identitiless, transitions carry exponential rates, and the
reachability graph *is* the CTMC (marking = state, firing rate = arc
rate).  Single-server firing semantics is the default; infinite-server
(rate scaled by enabling degree) is available per transition, which the
comparison benchmark uses to mimic population effects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ctmcgen import ctmc_from_lts
from repro.core.lts import LabelledArc, Lts
from repro.ctmc.chain import CTMC
from repro.exceptions import WellFormednessError
from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.petri.reachability import ReachabilityGraph, build_reachability_graph

__all__ = ["StochasticPetriNet", "spn_to_ctmc"]


@dataclass
class StochasticPetriNet:
    """A P/T net whose transitions all carry exponential rates."""

    net: PetriNet
    infinite_server: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        for name, t in self.net.transitions.items():
            if t.rate is None or t.rate <= 0:
                raise WellFormednessError(
                    f"transition {name!r} needs a positive rate for the "
                    "stochastic interpretation"
                )
        unknown = self.infinite_server - set(self.net.transitions)
        if unknown:
            raise WellFormednessError(f"unknown infinite-server transitions: {sorted(unknown)}")

    def enabling_degree(self, transition_name: str, marking: Marking) -> int:
        """How many times the transition could fire concurrently."""
        t = self.net.transitions[transition_name]
        degree = min(marking[place] // weight for place, weight in t.inputs) if t.inputs else 1
        return max(degree, 0)

    def firing_rate(self, transition_name: str, marking: Marking) -> float:
        """The marking-dependent rate (scaled by enabling degree for infinite-server transitions)."""
        t = self.net.transitions[transition_name]
        assert t.rate is not None
        if transition_name in self.infinite_server:
            return t.rate * self.enabling_degree(transition_name, marking)
        return t.rate


def spn_to_ctmc(
    spn: StochasticPetriNet, *, max_markings: int = 500_000
) -> tuple[ReachabilityGraph, CTMC]:
    """Reachability graph + the derived CTMC of a stochastic net.

    The untimed reachability LTS is re-labelled with marking-dependent
    firing rates and fed through the shared
    :func:`repro.core.ctmcgen.ctmc_from_lts` assembly path.
    """
    graph = build_reachability_graph(spn.net, max_markings=max_markings)
    rated = Lts(
        states=graph.states,
        arcs=[
            LabelledArc(a.source, a.action,
                        spn.firing_rate(a.action, graph.markings[a.source]),
                        a.target)
            for a in graph.arcs
        ],
        index=graph.index,
    )
    return graph, ctmc_from_lts(rated)
