"""Coverability analysis (Karp–Miller) for P/T nets.

The reachability builder (:mod:`repro.petri.reachability`) refuses
unbounded nets; the coverability graph *analyses* them instead: when a
new marking strictly covers an ancestor, the strictly-grown places are
accelerated to ω ("arbitrarily many tokens"), guaranteeing a finite
graph for every net.  It answers:

* which places are **unbounded** (reach ω);
* the exact **bound** of each bounded place;
* whether a given marking is **coverable** from the initial marking.

Priorities are deliberately ignored here — the Karp–Miller construction
is only sound for plain firing semantics, and a coverability statement
under priorities would be misleading.  A net with priorities is
accepted, with a warning recorded on the graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.core.explore import Exploration, explore_lts
from repro.exceptions import WellFormednessError
from repro.petri.net import NetTransition, PetriNet

if TYPE_CHECKING:  # pragma: no cover — typing only, avoids a hard import
    from repro.resilience.budget import ExecutionBudget

__all__ = ["OMEGA", "OmegaMarking", "CoverabilityGraph", "build_coverability_graph"]

#: The "arbitrarily many" token count.
OMEGA = float("inf")


@dataclass(frozen=True)
class OmegaMarking:
    """A marking whose counts may be ω (represented as ``math.inf``)."""

    order: tuple[str, ...]
    counts: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.order) != len(self.counts):
            raise WellFormednessError("marking order/count length mismatch")
        for c in self.counts:
            if c != OMEGA and (c < 0 or int(c) != c):
                raise WellFormednessError(f"invalid token count {c!r}")

    def __getitem__(self, place: str) -> float:
        try:
            return self.counts[self.order.index(place)]
        except ValueError:
            raise KeyError(f"unknown place {place!r}") from None

    def covers(self, other: "OmegaMarking") -> bool:
        """Componentwise >= (with omega dominating everything)."""
        return self.order == other.order and all(
            a >= b for a, b in zip(self.counts, other.counts)
        )

    def strictly_covers(self, other: "OmegaMarking") -> bool:
        """Covers and differs in at least one place."""
        return self.covers(other) and self.counts != other.counts

    def with_omega_where_greater(
        self, ancestor: "OmegaMarking", accelerable: frozenset[str] | None = None
    ) -> "OmegaMarking":
        """Accelerate strictly-grown places to ω.  Places outside
        ``accelerable`` (e.g. capacity-bounded ones, which can never be
        unbounded) keep their finite count."""
        counts = tuple(
            OMEGA
            if a > b and (accelerable is None or p in accelerable)
            else a
            for p, a, b in zip(self.order, self.counts, ancestor.counts)
        )
        return OmegaMarking(self.order, counts)

    def is_omega(self, place: str) -> bool:
        """True when the place holds arbitrarily many tokens here."""
        return self[place] == OMEGA

    def __str__(self) -> str:
        inside = ", ".join(
            f"{p}:{'ω' if c == OMEGA else int(c)}"
            for p, c in zip(self.order, self.counts)
            if c != 0
        )
        return "{" + inside + "}"


@dataclass
class CoverabilityGraph:
    net: PetriNet
    markings: list[OmegaMarking]
    edges: list[tuple[int, str, int]]
    warnings: list[str] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.markings)

    def unbounded_places(self) -> frozenset[str]:
        """Places that reach omega somewhere in the graph."""
        return frozenset(
            place
            for place in self.net.places
            if any(m.is_omega(place) for m in self.markings)
        )

    def is_bounded(self) -> bool:
        """True when no place is unbounded."""
        return not self.unbounded_places()

    def bound_of(self, place: str) -> float:
        """Maximum token count of the place (``OMEGA`` if unbounded)."""
        return max(m[place] for m in self.markings)

    def is_coverable(self, target: dict[str, int]) -> bool:
        """Can some reachable marking dominate ``target``?"""
        order = self.markings[0].order
        goal = OmegaMarking(order, tuple(float(target.get(p, 0)) for p in order))
        return any(m.covers(goal) for m in self.markings)


def _fire_omega(net: PetriNet, t: NetTransition, marking: OmegaMarking) -> OmegaMarking | None:
    """Fire under ω semantics; ``None`` when not enabled.  Capacities
    are honoured for finite counts; an ω place absorbs anything."""
    counts = dict(zip(marking.order, marking.counts))
    for place, weight in t.inputs:
        if counts[place] != OMEGA and counts[place] < weight:
            return None
    for place, weight in t.outputs:
        cap = net.places[place].capacity
        if cap is not None and counts[place] != OMEGA:
            consumed = dict(t.inputs).get(place, 0)
            if counts[place] - consumed + weight > cap:
                return None
    for place, weight in t.inputs:
        if counts[place] != OMEGA:
            counts[place] -= weight
    for place, weight in t.outputs:
        if counts[place] != OMEGA:
            counts[place] += weight
    return OmegaMarking(marking.order, tuple(counts[p] for p in marking.order))


def build_coverability_graph(
    net: PetriNet, *, max_markings: int = 200_000,
    budget: "ExecutionBudget | None" = None,
) -> CoverabilityGraph:
    """The Karp–Miller graph (finite for every net).

    Runs on the shared BFS kernel; the ω-acceleration against every
    ancestor on the BFS path is the kernel's ``adjust_successor`` hook.
    ``budget`` is an optional cooperative
    :class:`~repro.resilience.budget.ExecutionBudget`.
    """
    order = tuple(sorted(net.places))
    m0 = net.initial_marking
    initial = OmegaMarking(order, tuple(float(m0[p]) for p in order))
    warnings: list[str] = []
    if any(t.priority != 0 for t in net.transitions.values()) and len(
        {t.priority for t in net.transitions.values()}
    ) > 1:
        warnings.append(
            "net uses priorities; the coverability graph ignores them "
            "(it over-approximates the prioritised behaviour)"
        )

    accelerable = frozenset(
        name for name, place in net.places.items() if place.capacity is None
    )
    transition_order = sorted(net.transitions)

    def successors(marking: OmegaMarking) -> Iterator[tuple[str, float, OmegaMarking]]:
        for name in transition_order:
            successor = _fire_omega(net, net.transitions[name], marking)
            if successor is not None:
                yield name, 1.0, successor

    def accelerate(successor: OmegaMarking, src: int,
                   exploration: Exploration) -> OmegaMarking:
        # acceleration against every ancestor on the path
        for ancestor in exploration.ancestors(src):
            if successor.strictly_covers(ancestor):
                successor = successor.with_omega_where_greater(ancestor, accelerable)
        return successor

    lts = explore_lts(
        initial,
        successors,
        stage="petri.coverability",
        budget_stage="petri coverability graph",
        max_states=max_markings,
        budget=budget,
        span_attrs={"net": net.name, "transitions": len(net.transitions)},
        span_count_key="markings",
        overflow=lambda n: f"coverability graph exceeds {n} nodes",
        adjust_successor=accelerate,
    )
    return CoverabilityGraph(
        net=net, markings=lts.states,
        edges=[(a.source, a.action, a.target) for a in lts.arcs],
        warnings=warnings,
    )
