"""Differential fuzzing of the extract pipeline against direct nets.

For every seed the oracle runs the *same scenario* down two
independently implemented paths:

* **extract path** — render the scenario as XMI, read it back with
  :func:`repro.uml.xmi.reader.read_model`, extract a PEPA net with
  :func:`repro.extract.extract_activity_diagram`, analyse it;
* **direct path** — render the scenario's hand-assembled PEPA net as
  text, parse it with :func:`repro.pepanets.parser.parse_net`, analyse
  it.

The two constructions are LTS-isomorphic by design
(:mod:`repro.scenarios.generator`), so state counts, arc counts,
action/firing throughputs and location occupancies must agree to a
relative 1e-8.  Any disagreement — or any crash along either path — is
a finding: the failing spec is structurally shrunk to a minimal
still-failing form and dumped as a reproducer directory (spec + both
sources + rates + report) that replays without the generator.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.exceptions import BudgetExceededError, ReproError
from repro.resilience.budget import BudgetSpec, ExecutionBudget
from repro.scenarios.generator import (
    GeneratorParams,
    ScenarioSpec,
    _static_steps,
    _token_order,
    _token_steps,
    _token_visited,
    generate_scenario,
    scenario_from_spec,
    spec_to_json,
)

__all__ = [
    "Mismatch",
    "SeedResult",
    "SweepReport",
    "DEFAULT_TOLERANCE",
    "DEFAULT_MAX_STATES",
    "compare_spec",
    "compare_seed",
    "run_sweep",
    "minimise_spec",
    "dump_reproducer",
    "within_tolerance",
]

DEFAULT_TOLERANCE = 1e-8
DEFAULT_MAX_STATES = 200_000


@dataclass(frozen=True)
class Mismatch:
    """One disagreement between the two paths."""

    field: str
    detail: str
    extract_value: object = None
    direct_value: object = None

    def as_json(self) -> dict:
        """The mismatch as a JSON-ready dict (reproducer reports)."""
        return {
            "field": self.field,
            "detail": self.detail,
            "extract": _jsonable(self.extract_value),
            "direct": _jsonable(self.direct_value),
        }


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


@dataclass
class SeedResult:
    """The oracle's verdict for one seed."""

    seed: int
    ok: bool
    mismatches: list[Mismatch] = field(default_factory=list)
    n_states: int | None = None
    spec: ScenarioSpec | None = None
    minimised: ScenarioSpec | None = None
    reproducer: str | None = None


@dataclass
class SweepReport:
    """Aggregate outcome of a seed sweep."""

    requested: int = 0
    completed: int = 0
    divergent: list[SeedResult] = field(default_factory=list)
    budget_exhausted: bool = False
    #: The seed the sweep was working on when the budget ran out, so a
    #: truncated CI log still says where to resume (``--base SEED``).
    exhausted_seed: int | None = None

    @property
    def ok(self) -> bool:
        return not self.divergent

    def summary(self) -> str:
        """Human-readable sweep outcome (what the CLI prints)."""
        lines = [
            f"fuzz: {self.completed}/{self.requested} seeds checked, "
            f"{len(self.divergent)} divergent"
            + (
                f" (budget exhausted at seed {self.exhausted_seed})"
                if self.budget_exhausted and self.exhausted_seed is not None
                else " (budget exhausted)" if self.budget_exhausted
                else ""
            )
        ]
        for result in self.divergent:
            first = result.mismatches[0] if result.mismatches else None
            what = f"{first.field}: {first.detail}" if first else "divergent"
            lines.append(f"  seed {result.seed}: {what}")
            if result.reproducer:
                lines.append(f"    reproducer: {result.reproducer}")
        return "\n".join(lines)

    def as_json(self) -> dict:
        """The report as a JSON-ready dict (machine consumers)."""
        return {
            "requested": self.requested,
            "completed": self.completed,
            "budget_exhausted": self.budget_exhausted,
            "exhausted_seed": self.exhausted_seed,
            "divergent": [
                {
                    "seed": r.seed,
                    "mismatches": [m.as_json() for m in r.mismatches],
                    "reproducer": r.reproducer,
                }
                for r in self.divergent
            ],
        }


def within_tolerance(a: float, b: float, tolerance: float = DEFAULT_TOLERANCE) -> bool:
    """Relative agreement: ``|a-b| <= tol * max(1, |a|, |b|)``."""
    return abs(a - b) <= tolerance * max(1.0, abs(a), abs(b))


# ----------------------------------------------------------------------
# The oracle
# ----------------------------------------------------------------------
def _analyse_both(spec: ScenarioSpec, *, solver: str, max_states: int,
                  budget: ExecutionBudget | None):
    from repro.extract import RateTable, extract_activity_diagram
    from repro.pepanets.measures import analyse_net
    from repro.pepanets.parser import parse_net
    from repro.uml.xmi.reader import read_model

    scenario = scenario_from_spec(spec)
    model = read_model(scenario.xmi_text())
    graph = model.activity_graphs[0]
    extraction = extract_activity_diagram(
        graph,
        RateTable.from_numbers(scenario.rates),
        reset_rate=spec.reset_rate,
    )
    via_extract = analyse_net(extraction.net, solver=solver,
                              max_states=max_states, budget=budget)
    direct_net = parse_net(scenario.net_text())
    via_direct = analyse_net(direct_net, solver=solver,
                             max_states=max_states, budget=budget)
    return via_extract, via_direct


def compare_spec(spec: ScenarioSpec, *, solver: str = "direct",
                 max_states: int = DEFAULT_MAX_STATES,
                 tolerance: float = DEFAULT_TOLERANCE,
                 budget: ExecutionBudget | None = None) -> list[Mismatch]:
    """Run both paths on one spec; the empty list means they agree.

    A crash along either path is reported as a ``pipeline-error``
    mismatch rather than raised: a generated scenario one path accepts
    and the other rejects is precisely the kind of bug the fuzzer
    exists to find.  Budget exhaustion *is* re-raised — it aborts the
    sweep, it is not a finding.
    """
    try:
        via_extract, via_direct = _analyse_both(
            spec, solver=solver, max_states=max_states, budget=budget)
    except BudgetExceededError:
        raise
    except ReproError as exc:
        return [Mismatch("pipeline-error", f"{type(exc).__name__}: {exc}")]

    mismatches: list[Mismatch] = []
    if via_extract.n_states != via_direct.n_states:
        mismatches.append(Mismatch(
            "n_states", "marking-space sizes differ",
            via_extract.n_states, via_direct.n_states))
    if len(via_extract.space.arcs) != len(via_direct.space.arcs):
        mismatches.append(Mismatch(
            "n_arcs", "marking-space arc counts differ",
            len(via_extract.space.arcs), len(via_direct.space.arcs)))

    def compare_map(field_name: str, left: dict, right: dict) -> None:
        if sorted(left) != sorted(right):
            mismatches.append(Mismatch(
                field_name, "key sets differ",
                ", ".join(sorted(left)), ", ".join(sorted(right))))
            return
        for key in sorted(left):
            if not within_tolerance(left[key], right[key], tolerance):
                mismatches.append(Mismatch(
                    f"{field_name}[{key}]",
                    f"values differ beyond {tolerance:g}",
                    left[key], right[key]))

    compare_map("throughput", via_extract.all_throughputs(),
                via_direct.all_throughputs())
    compare_map("firing", via_extract.firing_throughputs(),
                via_direct.firing_throughputs())
    compare_map("location", via_extract.location_distribution(),
                via_direct.location_distribution())
    return mismatches


def compare_seed(seed: int, *, params: GeneratorParams | None = None,
                 solver: str = "direct", max_states: int = DEFAULT_MAX_STATES,
                 tolerance: float = DEFAULT_TOLERANCE,
                 budget: ExecutionBudget | None = None) -> SeedResult:
    """Generate one seed's scenario and run the differential oracle."""
    scenario = generate_scenario(seed, params)
    mismatches = compare_spec(scenario.spec, solver=solver,
                              max_states=max_states, tolerance=tolerance,
                              budget=budget)
    n_states = None
    return SeedResult(seed=seed, ok=not mismatches, mismatches=mismatches,
                      n_states=n_states, spec=scenario.spec)


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
def _normalise(spec: ScenarioSpec) -> ScenarioSpec | None:
    """Repair a shrunk spec's invariants, or reject it outright.

    Statics whose place no surviving token visits are dropped (the
    extractor would reject the unknown ``performedBy`` location); the
    decision is dropped unless the single-token, zero-static shape it
    requires still holds; a spec with no token activity left is no
    scenario at all.
    """
    visited: set[str] = set()
    keep_tokens = []
    for t in range(len(spec.tokens)):
        if _token_steps(spec, t):
            keep_tokens.append(t)
            visited.update(_token_visited(spec, t))
    if not keep_tokens:
        return None
    chain = tuple(
        s for s in spec.chain
        if (s.kind != "static" and s.token in keep_tokens)
        or (s.kind == "static" and s.target in visited)
    )
    renumber = {old: new for new, old in enumerate(keep_tokens)}
    chain = tuple(
        s if s.token is None else replace(s, token=renumber[s.token])
        for s in chain
    )
    tokens = tuple(spec.tokens[t] for t in keep_tokens)
    decision = spec.decision
    if decision is not None and (
            len(tokens) != 1 or any(s.kind == "static" for s in chain)):
        decision = None
    return replace(spec, tokens=tokens, chain=chain, decision=decision)


def _shrink_candidates(spec: ScenarioSpec) -> Iterable[ScenarioSpec]:
    """Strictly-smaller variants of a spec, simplest first."""
    if spec.decision is not None:
        yield replace(spec, decision=None)
        for b, branch in enumerate(spec.decision.branches):
            if len(branch) > 1:
                branches = list(spec.decision.branches)
                branches[b] = branch[:-1]
                yield replace(spec, decision=replace(
                    spec.decision, branches=tuple(branches)))
    statics = _static_steps(spec)
    for target in statics:
        yield replace(spec, chain=tuple(
            s for s in spec.chain if s is not target))
    if len(_token_order(spec)) > 1:
        for t in _token_order(spec):
            yield replace(spec, chain=tuple(
                s for s in spec.chain if s.token != t))
    for target in spec.chain:
        if target.kind in ("activity", "move"):
            yield replace(spec, chain=tuple(
                s for s in spec.chain if s is not target))
    if any(rate != 1.0 for _, rate in spec.rates) or spec.reset_rate != 1.0:
        yield replace(spec, rates=tuple(
            (name, 1.0) for name, _ in spec.rates), reset_rate=1.0)


def minimise_spec(spec: ScenarioSpec,
                  is_failing: Callable[[ScenarioSpec], bool],
                  *, max_rounds: int = 200) -> ScenarioSpec:
    """Greedy structural shrink: repeatedly take the first smaller
    variant that still fails, until none does (or the round budget is
    spent — shrinking is best-effort, never load-bearing)."""
    current = spec
    for _ in range(max_rounds):
        for candidate in _shrink_candidates(current):
            repaired = _normalise(candidate)
            if repaired is None or repaired == current:
                continue
            try:
                failing = is_failing(repaired)
            except BudgetExceededError:
                return current
            except ReproError:
                failing = True
            if failing:
                current = repaired
                break
        else:
            return current
    return current


# ----------------------------------------------------------------------
# Reproducers
# ----------------------------------------------------------------------
def dump_reproducer(out_dir: str | Path, result: SeedResult) -> str:
    """Write a self-contained reproducer directory for one finding.

    Layout: ``seed-<n>/spec.json`` (the original spec),
    ``minimised.json`` plus both renderings (``scenario.xmi``,
    ``scenario.pepanet``) and ``rates.json`` of the *minimised* spec,
    and ``report.json`` with the mismatches.  Everything replays
    without the generator: feed the XMI to ``choreographer analyse``
    and the net text to ``choreographer net``.
    """
    spec = result.spec
    assert spec is not None
    minimised = result.minimised or spec
    scenario = scenario_from_spec(minimised)
    directory = Path(out_dir) / f"seed-{result.seed}"
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "spec.json").write_text(spec_to_json(spec))
    (directory / "minimised.json").write_text(spec_to_json(minimised))
    try:
        (directory / "scenario.xmi").write_text(scenario.xmi_text())
    except ReproError as exc:  # the crash may *be* the finding
        (directory / "scenario.xmi.error").write_text(f"{type(exc).__name__}: {exc}\n")
    try:
        (directory / "scenario.pepanet").write_text(scenario.net_text())
    except ReproError as exc:
        (directory / "scenario.pepanet.error").write_text(f"{type(exc).__name__}: {exc}\n")
    (directory / "rates.json").write_text(
        json.dumps(dict(minimised.rates), indent=2, sort_keys=True) + "\n")
    (directory / "report.json").write_text(json.dumps({
        "seed": result.seed,
        "mismatches": [m.as_json() for m in result.mismatches],
    }, indent=2) + "\n")
    return str(directory)


# ----------------------------------------------------------------------
# The sweep driver
# ----------------------------------------------------------------------
def run_sweep(seeds: Sequence[int] | Iterable[int], *,
              params: GeneratorParams | None = None,
              solver: str = "direct",
              max_states: int = DEFAULT_MAX_STATES,
              tolerance: float = DEFAULT_TOLERANCE,
              deadline: float | None = None,
              out_dir: str | Path | None = None,
              minimise: bool = True,
              progress: Callable[[str], None] | None = None) -> SweepReport:
    """Run the differential oracle over many seeds.

    ``deadline`` bounds the whole sweep with one cooperative
    :class:`~repro.resilience.budget.BudgetSpec` — exceeding it stops
    the sweep gracefully with ``budget_exhausted`` set and
    ``exhausted_seed`` naming the seed in flight, it never fails seeds
    that were not reached.  With ``out_dir`` set, every divergent
    seed is shrunk (unless ``minimise`` is off) and dumped as a
    reproducer directory.
    """
    seeds = list(seeds)
    report = SweepReport(requested=len(seeds))
    budget = BudgetSpec(deadline_seconds=deadline).materialise() if deadline else None
    for seed in seeds:
        try:
            result = compare_seed(seed, params=params, solver=solver,
                                  max_states=max_states, tolerance=tolerance,
                                  budget=budget)
        except BudgetExceededError:
            report.budget_exhausted = True
            report.exhausted_seed = seed
            break
        report.completed += 1
        if result.ok:
            continue
        if minimise and result.spec is not None:
            def still_fails(candidate: ScenarioSpec) -> bool:
                return bool(compare_spec(candidate, solver=solver,
                                         max_states=max_states,
                                         tolerance=tolerance, budget=budget))

            result.minimised = minimise_spec(result.spec, still_fails)
        if out_dir is not None:
            result.reproducer = dump_reproducer(out_dir, result)
        report.divergent.append(result)
        if progress is not None:
            first = result.mismatches[0]
            progress(f"seed {seed} divergent — {first.field}: {first.detail}")
    return report
