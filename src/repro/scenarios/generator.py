"""Seeded generative mobile-app scenarios (ROADMAP item 5).

A *scenario* is a randomly drawn — but fully deterministic per seed —
mobile application in the paper's design vocabulary: a topology of
locations, a population of mobile tokens (clients, sessions, couriers)
that perform activities and ``<<move>>`` between locations, optional
static components pinned to a location via ``performedBy`` tags, and a
rate regime over every activity.

Each scenario is rendered through **two independent paths**:

* :meth:`Scenario.xmi_text` — a UML activity diagram (object boxes,
  ``atloc`` tags, ``<<move>>`` stereotypes) serialised with
  :func:`repro.uml.xmi.writer.write_model`, i.e. the *front door* of the
  Figure 4 tool chain; and
* :meth:`Scenario.net_text` — a hand-assembled PEPA net in the textual
  dialect, mirroring rule for rule what the Section 3 extractor *should*
  produce (same action names, same place topology, same cooperation
  sets, same synthetic ``reset_*`` recurrence firings).

The two constructions are LTS-isomorphic by design, so state counts,
arc counts and every steady-state measure must agree — which is the
differential oracle :mod:`repro.scenarios.fuzz` checks to 1e-8.

Determinism contract: the same seed yields byte-identical XMI and
PEPA-net text across processes and Python versions.  This requires
pinned ``xmi.id`` values (the UML layer's global id counter is
process-ordering dependent) and rate values whose ``repr`` round-trips
through ``%g`` formatting — both handled here.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field, replace

from repro.pepa.environment import Environment
from repro.pepa.rates import ActiveRate
from repro.pepa.syntax import Cell, Choice, Const, Cooperation, Expression, Prefix, Sequential
from repro.pepanets.export import net_source
from repro.pepanets.syntax import NetTransitionSpec, PepaNet, PlaceDef
from repro.uml.activity import ActivityGraph
from repro.uml.model import UmlModel

__all__ = [
    "GeneratorParams",
    "ChainStep",
    "TokenSpec",
    "DecisionSpec",
    "ScenarioSpec",
    "Scenario",
    "generate_scenario",
    "scenario_from_spec",
    "spec_to_json",
    "spec_from_json",
    "corpus_net",
    "corpus_source",
]

#: classes assigned to successive tokens (purely cosmetic names).
TOKEN_CLASSES = ("Client", "Session", "Courier")


@dataclass(frozen=True)
class GeneratorParams:
    """Knobs of the random scenario space.

    The defaults keep every scenario's marking space small (hundreds of
    states), so a thousand-seed differential sweep runs in seconds; the
    corpus batch/bench entry points scale *count*, not instance size.
    """

    max_locations: int = 3
    max_tokens: int = 3
    max_segments: int = 3
    max_activities_per_segment: int = 2
    max_static_activities: int = 2
    decision_prob: float = 0.3
    cooperation_prob: float = 0.35


@dataclass(frozen=True)
class ChainStep:
    """One step of the global control chain.

    ``kind`` is ``"activity"`` (a token's local activity), ``"move"``
    (a ``<<move>>`` of a token; ``target`` is the destination location)
    or ``"static"`` (an object-less activity; ``target`` is the place
    its ``performedBy`` tag names).  Token locations are *derived* by
    replaying moves, never stored, so structural shrinking (dropping a
    move) can never leave the spec internally inconsistent.
    """

    kind: str
    token: int | None
    action: str
    target: str | None = None


@dataclass(frozen=True)
class TokenSpec:
    """A mobile object: UML name ``obj: Class``, starting at ``initial``."""

    obj: str
    cls: str
    initial: str


@dataclass(frozen=True)
class DecisionSpec:
    """A terminal binary decision of the (single) token: after the main
    chain, control branches into two alternative activity sequences at
    the token's final location, reconverging at the final node."""

    branches: tuple[tuple[str, ...], tuple[str, ...]]


@dataclass(frozen=True)
class ScenarioSpec:
    """The pure data a scenario is rendered from (JSON-able, shrinkable)."""

    seed: int
    name: str
    tokens: tuple[TokenSpec, ...]
    chain: tuple[ChainStep, ...]
    decision: DecisionSpec | None
    rates: tuple[tuple[str, float], ...]
    reset_rate: float


# ----------------------------------------------------------------------
# Replay helpers (shared by both renderers)
# ----------------------------------------------------------------------
def _token_steps(spec: ScenarioSpec, t: int) -> list[ChainStep]:
    return [s for s in spec.chain if s.token == t]


def _token_route(spec: ScenarioSpec, t: int) -> list[tuple[ChainStep, str, str]]:
    """Each step of token ``t`` with its (location-before, location-after)."""
    loc = spec.tokens[t].initial
    route = []
    for step in _token_steps(spec, t):
        after = step.target if step.kind == "move" else loc
        route.append((step, loc, after))
        loc = after
    return route


def _token_final_location(spec: ScenarioSpec, t: int) -> str:
    route = _token_route(spec, t)
    return route[-1][2] if route else spec.tokens[t].initial


def _token_visited(spec: ScenarioSpec, t: int) -> list[str]:
    """Locations token ``t`` has an object box at, in first-visit order."""
    seen = [spec.tokens[t].initial]
    for _, _, after in _token_route(spec, t):
        if after not in seen:
            seen.append(after)
    return seen


def _token_order(spec: ScenarioSpec) -> list[int]:
    """Token indices by first appearance in the chain — the order their
    object boxes enter the diagram, hence the extractor's token order."""
    order: list[int] = []
    for step in spec.chain:
        if step.token is not None and step.token not in order:
            order.append(step.token)
    return order


def _place_order(spec: ScenarioSpec) -> list[str]:
    """Place names in the order their ``atloc`` tags first appear in the
    diagram — exactly :meth:`ActivityGraph.locations` on the rendering."""
    order: list[str] = []
    started: set[int] = set()
    locs: dict[int, str] = {}

    def visit(loc: str) -> None:
        if loc not in order:
            order.append(loc)

    for step in spec.chain:
        t = step.token
        if t is None:
            continue
        if t not in started:
            started.add(t)
            locs[t] = spec.tokens[t].initial
            visit(locs[t])
        if step.kind == "move":
            locs[t] = step.target or locs[t]
        visit(locs[t])
    return order


def _static_steps(spec: ScenarioSpec) -> list[ChainStep]:
    return [s for s in spec.chain if s.kind == "static"]


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------
def generate_scenario(seed: int, params: GeneratorParams | None = None) -> "Scenario":
    """Draw the scenario of ``seed`` — same seed, same bytes, always."""
    return Scenario(_generate_spec(seed, params or GeneratorParams()))


def scenario_from_spec(spec: ScenarioSpec) -> "Scenario":
    """Rebuild a scenario from a (possibly shrunk) spec."""
    return Scenario(spec)


def _generate_spec(seed: int, p: GeneratorParams) -> ScenarioSpec:
    rng = random.Random(seed)
    n_loc = rng.randint(1, p.max_locations)
    n_tok = rng.randint(1, p.max_tokens)
    want_decision = n_tok == 1 and rng.random() < p.decision_prob
    n_static = 0 if want_decision else rng.randint(0, p.max_static_activities)

    act_counter = 0
    mv_counter = 0
    tokens: list[TokenSpec] = []
    sequences: list[list[ChainStep]] = []
    for t in range(n_tok):
        n_seg = 1 if n_loc == 1 else rng.randint(1, p.max_segments)
        loc_idx = [rng.randrange(n_loc)]
        for _ in range(n_seg - 1):
            step = rng.randrange(n_loc - 1)
            loc_idx.append(step if step < loc_idx[-1] else step + 1)
        steps: list[ChainStep] = []
        for si in range(n_seg):
            for _ in range(rng.randint(1, p.max_activities_per_segment)):
                steps.append(ChainStep("activity", t, f"act{act_counter}"))
                act_counter += 1
            if si < n_seg - 1:
                steps.append(ChainStep("move", t, f"mv{mv_counter}",
                                       target=f"Loc{loc_idx[si + 1]}"))
                mv_counter += 1
        tokens.append(TokenSpec(f"tok{t}", TOKEN_CLASSES[t % len(TOKEN_CLASSES)],
                                f"Loc{loc_idx[0]}"))
        sequences.append(steps)

    # visited locations (before interleaving; tokens fully determine them)
    visited: list[str] = []
    for t in range(n_tok):
        loc = tokens[t].initial
        if loc not in visited:
            visited.append(loc)
        for s in sequences[t]:
            if s.kind == "move" and s.target not in visited:
                visited.append(s.target)  # type: ignore[arg-type]

    statics = [
        ChainStep("static", None, f"st{i}", target=rng.choice(visited))
        for i in range(n_static)
    ]

    # random merge: tokens keep their own order, statics drop in anywhere
    pools = [list(seq) for seq in sequences] + ([list(statics)] if statics else [])
    chain: list[ChainStep] = []
    while any(pools):
        k = rng.choice([i for i, pool in enumerate(pools) if pool])
        chain.append(pools[k].pop(0))

    decision = None
    if want_decision:
        branches = tuple(
            tuple(f"act{act_counter + 10 * b + i}"
                  for i in range(rng.randint(1, p.max_activities_per_segment)))
            for b in range(2)
        )
        decision = DecisionSpec(branches=branches)  # type: ignore[arg-type]

    # cooperation variant: one static shares its action name with a token
    # activity performed at the static's own place, so the place context
    # genuinely synchronises (an off-place share would deadlock the
    # static — legal, but a lively sync exercises more semantics).
    if statics and rng.random() < p.cooperation_prob:
        spec_probe = ScenarioSpec(seed, "", tuple(tokens), tuple(chain),
                                  None, (), 1.0)
        static_idx = [i for i, s in enumerate(chain) if s.kind == "static"]
        pick = rng.choice(static_idx)
        place = chain[pick].target
        colocated = [
            s.action
            for t in range(n_tok)
            for (s, before, _after) in _token_route(spec_probe, t)
            if s.kind == "activity" and before == place
        ]
        if colocated:
            chain[pick] = replace(chain[pick], action=rng.choice(colocated))

    # rate regime over every action name (shared names share a rate)
    names: list[str] = []
    for s in chain:
        if s.action not in names:
            names.append(s.action)
    if decision:
        for branch in decision.branches:
            names.extend(branch)
    regime = rng.choice(("uniform", "wide", "mixed"))

    def draw_rate() -> float:
        wide = regime == "wide" or (regime == "mixed" and rng.random() < 0.5)
        if wide:
            return round(10.0 ** rng.uniform(-1.5, 1.5), 4)
        return round(rng.uniform(0.3, 6.0), 3)

    rates = tuple((name, draw_rate()) for name in names)
    reset_rate = round(rng.uniform(0.4, 3.0), 3)
    return ScenarioSpec(
        seed=seed,
        name=f"scenario_{seed}",
        tokens=tuple(tokens),
        chain=tuple(chain),
        decision=decision,
        rates=rates,
        reset_rate=reset_rate,
    )


# ----------------------------------------------------------------------
# The scenario object: dual renderers + fingerprint
# ----------------------------------------------------------------------
@dataclass
class Scenario:
    """A generated scenario with its two renderings.

    All artefacts are pure functions of :attr:`spec` — no clocks, no
    global counters — so repeated calls (and repeated processes) produce
    identical bytes.
    """

    spec: ScenarioSpec
    _xmi: str | None = field(default=None, repr=False)
    _net_text: str | None = field(default=None, repr=False)

    @property
    def seed(self) -> int:
        return self.spec.seed

    @property
    def rates(self) -> dict[str, float]:
        """Activity name → rate, for :class:`repro.extract.rates.RateTable`."""
        return dict(self.spec.rates)

    # -- UML rendering --------------------------------------------------
    def build_model(self) -> UmlModel:
        """The scenario as a UML model with one activity diagram.

        Every ``xmi.id`` is pinned (``m1``/``g1``/``n<k>``): ids derived
        from the process-global element counter would differ from run to
        run and break the byte-for-byte reproducibility contract.
        """
        spec = self.spec
        counter = iter(range(1, 10_000))

        def nid() -> str:
            return f"n{next(counter)}"

        graph = ActivityGraph(spec.name, xmi_id="g1")
        model = UmlModel(name=spec.name, xmi_id="m1")
        model.add_activity_graph(graph)

        prev = graph.add_initial(xmi_id=nid())
        cur_box: dict[int, object] = {}
        stars: dict[int, int] = {}
        loc_now: dict[int, str] = {}

        def new_box(t: int, loc: str):
            stars[t] = stars.get(t, -1) + 1
            token = spec.tokens[t]
            name = f"{token.obj}{'*' * stars[t]}: {token.cls}"
            return graph.add_object(name, atloc=loc, xmi_id=nid())

        def add_token_action(t: int, action: str, *, move: bool,
                             out_loc: str, prev_ctrl, prev_box):
            node = graph.add_action(action, move=move, xmi_id=nid())
            graph.connect(prev_ctrl, node, xmi_id=nid())
            graph.connect(prev_box, node, xmi_id=nid())
            box = new_box(t, out_loc)
            graph.connect(node, box, xmi_id=nid())
            return node, box

        for step in spec.chain:
            if step.kind == "static":
                node = graph.add_action(step.action, xmi_id=nid())
                node.set_tag("performedBy", step.target or "")
                graph.connect(prev, node, xmi_id=nid())
                prev = node
                continue
            t = step.token
            assert t is not None
            if t not in cur_box:
                loc_now[t] = spec.tokens[t].initial
                cur_box[t] = new_box(t, loc_now[t])
            if step.kind == "move":
                loc_now[t] = step.target or loc_now[t]
            prev, cur_box[t] = add_token_action(
                t, step.action, move=step.kind == "move",
                out_loc=loc_now[t], prev_ctrl=prev, prev_box=cur_box[t],
            )

        if spec.decision is not None:
            t = 0
            decision = graph.add_decision(xmi_id=nid())
            graph.connect(prev, decision, xmi_id=nid())
            shared_box = cur_box[t]
            ends = []
            for branch in spec.decision.branches:
                ctrl, box = decision, shared_box
                for action in branch:
                    node, box = add_token_action(
                        t, action, move=False, out_loc=loc_now[t],
                        prev_ctrl=ctrl, prev_box=box,
                    )
                    ctrl = node
                ends.append(ctrl)
            final = graph.add_final(xmi_id=nid())
            for end in ends:
                graph.connect(end, final, xmi_id=nid())
        else:
            final = graph.add_final(xmi_id=nid())
            graph.connect(prev, final, xmi_id=nid())
        return model

    def xmi_text(self) -> str:
        """The XMI document (cached; identical bytes per seed)."""
        if self._xmi is None:
            from repro.uml.xmi.writer import write_model

            self._xmi = write_model(self.build_model())
        return self._xmi

    # -- direct PEPA-net rendering --------------------------------------
    def build_net(self) -> PepaNet:
        """The PEPA net the extractor *should* produce, built directly.

        Mirrors :mod:`repro.extract.activity2pepanet` rule for rule —
        including the alias constant closing each component's cycle,
        which reproduces the extractor's distinct transient initial
        state (``Const(family)`` differs structurally from the cycle's
        re-entry state even though they behave identically).
        """
        spec = self.spec
        rates = dict(spec.rates)
        env = Environment()
        order = _token_order(spec)
        firing: set[str] = {
            s.action for s in spec.chain if s.kind == "move"
        }
        reset_specs: list[NetTransitionSpec] = []
        alphabets: dict[int, set[str]] = {}

        for t in order:
            base = f"Tok{t}"
            route = _token_route(spec, t)
            alphabet = {s.action for s, _, _ in route}
            linear = [(s.action, rates[s.action]) for s, _, _ in route]
            final_loc = _token_final_location(spec, t)
            names = [base] + [f"{base}_{i}" for i in range(1, len(linear) + 1)]

            if spec.decision is not None and t == 0:
                # linear prefix chain up to the decision state ...
                for i, (action, rate) in enumerate(linear):
                    env.define(names[i], Prefix(action, ActiveRate(rate),
                                                Const(names[i + 1])))
                # ... whose body is the choice of both branches' first
                # prefixes; branch tails chain to a shared end constant.
                end = f"{base}_end"
                branch_heads: list[Sequential] = []
                for b, branch in enumerate(spec.decision.branches):
                    tail: Sequential = Const(end)
                    chain_names = [f"{base}_b{b}_{i}"
                                   for i in range(1, len(branch))]
                    for i, action in enumerate(branch):
                        alphabet.add(action)
                        nxt = (Const(chain_names[i])
                               if i < len(branch) - 1 else tail)
                        prefix = Prefix(action, ActiveRate(rates[action]), nxt)
                        if i == 0:
                            branch_heads.append(prefix)
                        else:
                            env.define(chain_names[i - 1], prefix)
                env.define(names[-1], Choice(branch_heads[0], branch_heads[1]))
                end_name = end
            else:
                for i, (action, rate) in enumerate(linear):
                    env.define(names[i], Prefix(action, ActiveRate(rate),
                                                Const(names[i + 1])))
                end_name = names[-1]

            initial = spec.tokens[t].initial
            if final_loc == initial:
                if end_name == base:
                    # a token with no steps at all never happens in
                    # generated specs, but shrinking guards against it
                    raise ValueError(f"token {t} has an empty behaviour")
                env.define(end_name, Const(base))
            else:
                reset_action = f"reset_{spec.tokens[t].obj}"
                env.define(end_name, Prefix(reset_action,
                                            ActiveRate(spec.reset_rate),
                                            Const(base)))
                firing.add(reset_action)
                alphabet.add(reset_action)
                reset_specs.append(NetTransitionSpec(
                    name=f"{reset_action}_{final_loc}",
                    action=reset_action,
                    rate=ActiveRate(spec.reset_rate),
                    inputs=(final_loc,),
                    outputs=(initial,),
                ))
            alphabets[t] = alphabet

        static_by_place: dict[str, list[str]] = {}
        for s in _static_steps(spec):
            static_by_place.setdefault(s.target or "", []).append(s.action)
        static_names: dict[str, str] = {}
        static_alphabets: dict[str, set[str]] = {}
        for place in _place_order(spec):
            actions = static_by_place.get(place)
            if not actions:
                continue
            base = f"St{place}"
            names = [base] + [f"{base}_{i}" for i in range(1, len(actions) + 1)]
            for i, action in enumerate(actions):
                env.define(names[i], Prefix(action, ActiveRate(rates[action]),
                                            Const(names[i + 1])))
            env.define(names[-1], Const(base))
            static_names[place] = base
            static_alphabets[place] = set(actions)

        net = PepaNet(environment=env)
        for place in _place_order(spec):
            parts: list[tuple[Expression, set[str], Sequential | None]] = []
            for t in order:
                if place not in _token_visited(spec, t):
                    continue
                base = f"Tok{t}"
                initial = (Const(base)
                           if spec.tokens[t].initial == place else None)
                parts.append((Cell(base, None), set(alphabets[t]), initial))
            if place in static_names:
                parts.append((Const(static_names[place]),
                              set(static_alphabets[place]), None))
            expr = parts[0][0]
            alphabet = set(parts[0][1])
            for other, other_alpha, _ in parts[1:]:
                shared = (alphabet & other_alpha) - firing
                expr = Cooperation(expr, other, frozenset(shared))
                alphabet |= other_alpha
            contents = tuple(initial for part, _, initial in parts
                             if isinstance(part, Cell))
            net.add_place(PlaceDef(place, expr, contents))

        for t in order:
            for step, before, _after in _token_route(spec, t):
                if step.kind == "move":
                    net.add_transition(NetTransitionSpec(
                        name=step.action, action=step.action,
                        rate=ActiveRate(rates[step.action]),
                        inputs=(before,), outputs=(step.target or before,),
                    ))
        for reset in reset_specs:
            net.add_transition(reset)
        return net

    def net_text(self) -> str:
        """The textual PEPA-net form (cached; identical bytes per seed)."""
        if self._net_text is None:
            self._net_text = net_source(self.build_net())
        return self._net_text

    # -- identity -------------------------------------------------------
    def fingerprint(self) -> str:
        """SHA-256 over both renderings and the rate regime — the
        regression pin the golden mini-corpus freezes."""
        payload = "\x00".join((
            self.xmi_text(),
            self.net_text(),
            json.dumps({"rates": sorted(self.spec.rates),
                        "reset_rate": self.spec.reset_rate}, sort_keys=True),
        ))
        return hashlib.sha256(payload.encode()).hexdigest()


# ----------------------------------------------------------------------
# Spec (de)serialisation — reproducer files and regression tests
# ----------------------------------------------------------------------
def spec_to_json(spec: ScenarioSpec) -> str:
    """Serialise a spec as stable, diff-friendly JSON."""
    doc = {
        "schema": "repro-scenario/1",
        "seed": spec.seed,
        "name": spec.name,
        "tokens": [[t.obj, t.cls, t.initial] for t in spec.tokens],
        "chain": [[s.kind, s.token, s.action, s.target] for s in spec.chain],
        "decision": (list(map(list, spec.decision.branches))
                     if spec.decision else None),
        "rates": [[name, rate] for name, rate in spec.rates],
        "reset_rate": spec.reset_rate,
    }
    return json.dumps(doc, indent=2) + "\n"


def spec_from_json(text: str) -> ScenarioSpec:
    """Rebuild a spec from :func:`spec_to_json` output."""
    doc = json.loads(text)
    if doc.get("schema") != "repro-scenario/1":
        raise ValueError(f"not a repro-scenario/1 document: {doc.get('schema')!r}")
    decision = None
    if doc["decision"] is not None:
        decision = DecisionSpec(branches=tuple(
            tuple(branch) for branch in doc["decision"]))  # type: ignore[arg-type]
    return ScenarioSpec(
        seed=doc["seed"],
        name=doc["name"],
        tokens=tuple(TokenSpec(*entry) for entry in doc["tokens"]),
        chain=tuple(ChainStep(*entry) for entry in doc["chain"]),
        decision=decision,
        rates=tuple((name, float(rate)) for name, rate in doc["rates"]),
        reset_rate=float(doc["reset_rate"]),
    )


# ----------------------------------------------------------------------
# Corpus entry points (bench workload / batch tasks)
# ----------------------------------------------------------------------
def corpus_net(seed: int) -> PepaNet:
    """The direct PEPA net of one corpus scenario — the ``corpus``
    bench workload's builder (importable from spawn workers)."""
    return generate_scenario(seed).build_net()


def corpus_source(seed: int) -> str:
    """The textual PEPA net of one corpus scenario — what ``--corpus``
    batch tasks carry as their payload."""
    return generate_scenario(seed).net_text()
