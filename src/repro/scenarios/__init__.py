"""Seeded generative scenario corpus and differential fuzzing.

The generator (:mod:`repro.scenarios.generator`) draws deterministic
random mobile-app scenarios and renders each one both as XMI (the tool
chain's front door) and as a directly-constructed PEPA net; the fuzz
harness (:mod:`repro.scenarios.fuzz`) checks the two paths agree on
every steady-state measure, shrinking and dumping a reproducer when
they do not.  ``choreographer fuzz`` is the CLI front end.
"""

from repro.scenarios.generator import (
    ChainStep,
    DecisionSpec,
    GeneratorParams,
    Scenario,
    ScenarioSpec,
    TokenSpec,
    corpus_net,
    corpus_source,
    generate_scenario,
    scenario_from_spec,
    spec_from_json,
    spec_to_json,
)

__all__ = [
    "ChainStep",
    "DecisionSpec",
    "GeneratorParams",
    "Scenario",
    "ScenarioSpec",
    "TokenSpec",
    "corpus_net",
    "corpus_source",
    "generate_scenario",
    "scenario_from_spec",
    "spec_from_json",
    "spec_to_json",
]
