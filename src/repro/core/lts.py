"""The shared labelled-transition-system structure.

Every formalism in the tool chain — PEPA derivation graphs, PEPA-net
marking graphs, Petri-net reachability graphs — boils down to the same
numerical object: a list of interned states, a multiset of labelled
arcs between state *indices*, and an index mapping each state back to
its position (Ding & Hillston's argument for one uniform numerical
representation between the algebraic model and the solver).  This
module is that one representation; the per-formalism state-space
classes are thin subclasses adding only domain vocabulary.

Accessors that need per-state or per-action lookups (``successors``,
``arcs_by_action``, ``deadlocks``) run off a **built-once adjacency
index**: the first such call groups the arc list by source and by
action in one O(arcs) pass, after which every lookup is O(out-degree)
/ O(1) instead of a full-arc-list scan per call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterator

__all__ = ["LabelledArc", "Lts"]


@dataclass(frozen=True)
class LabelledArc:
    """One transition of the LTS, with state indices and a *numeric*
    rate.  For stochastic formalisms the rate is the exponential rate of
    the activity/firing; untimed graphs (plain Petri reachability) use
    a conventional rate of 1.0 and ignore it."""

    source: int
    action: str
    rate: float
    target: int


class Lts:
    """Interned states + labelled arcs with lazy, built-once adjacency.

    ``states[i]`` is the domain object for state ``i`` (a PEPA
    derivative, a net marking, ...); ``arcs`` is the ordered multiset of
    labelled transitions between state indices; ``index`` maps each
    state object back to its index.  The initial state is always 0 —
    every exploration starts numbering from its root.

    The adjacency index is constructed at most once per instance, on
    the first call that needs it (:attr:`adjacency_builds` counts the
    constructions so tests can pin the "at most once" contract).  The
    arc list must therefore not be mutated after the first indexed
    lookup.
    """

    def __init__(
        self,
        states: list[Any],
        arcs: list[LabelledArc],
        index: dict[Hashable, int] | None = None,
    ):
        self.states = states
        self.arcs = arcs
        self.index: dict[Hashable, int] = (
            {s: i for i, s in enumerate(states)} if index is None else index
        )
        self._out: list[list[LabelledArc]] | None = None
        self._by_action: dict[str, list[LabelledArc]] | None = None
        #: How many times the adjacency index has been built (0 or 1).
        self.adjacency_builds = 0

    # ------------------------------------------------------------------
    # Plain accessors
    # ------------------------------------------------------------------
    @property
    def initial(self) -> int:
        return 0

    @property
    def size(self) -> int:
        return len(self.states)

    def __len__(self) -> int:
        return len(self.states)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(states={len(self.states)}, "
            f"arcs={len(self.arcs)})"
        )

    def actions(self) -> frozenset[str]:
        """Every action type labelling some arc."""
        return frozenset(arc.action for arc in self.arcs)

    def state_label(self, i: int) -> str:
        """Human-readable rendering of state ``i``."""
        return str(self.states[i])

    # ------------------------------------------------------------------
    # Indexed accessors — O(out-degree) after a one-time O(arcs) build
    # ------------------------------------------------------------------
    def _build_adjacency(self) -> None:
        out: list[list[LabelledArc]] = [[] for _ in range(len(self.states))]
        by_action: dict[str, list[LabelledArc]] = {}
        for arc in self.arcs:
            out[arc.source].append(arc)
            by_action.setdefault(arc.action, []).append(arc)
        self._out = out
        self._by_action = by_action
        self.adjacency_builds += 1

    def successors(self, state: int) -> list[LabelledArc]:
        """The outgoing arcs of one state (do not mutate)."""
        if self._out is None:
            self._build_adjacency()
        return self._out[state]

    def arcs_by_action(self, action: str) -> list[LabelledArc]:
        """All arcs labelled with the given action type (do not mutate)."""
        if self._by_action is None:
            self._build_adjacency()
        return self._by_action.get(action, [])

    def deadlocks(self) -> list[int]:
        """Indices of states with no outgoing arcs."""
        if self._out is None:
            self._build_adjacency()
        return [i for i, out in enumerate(self._out) if not out]

    def iter_transitions(self) -> Iterator[tuple[int, str, float, int]]:
        """Arcs as plain ``(source, action, rate, target)`` tuples — the
        shape :func:`repro.ctmc.chain.build_ctmc` consumes."""
        for arc in self.arcs:
            yield arc.source, arc.action, arc.rate, arc.target
