"""Hashable derivation keys: the identity of one exploration result.

A state-space derivation is a pure function of three things — the model
source text, the formalism whose semantics interpret it, and the
derivation parameters (state ceiling, excluded actions, ...).  A
:class:`DerivationKey` captures exactly that triple and nothing else,
so two runs that would derive the same LTS map to the same key and a
content-addressed cache (:mod:`repro.batch.cache`) can serve the second
one from disk.

The digest is a SHA-256 over a canonical JSON rendering, so it is
stable across processes, Python versions and ``PYTHONHASHSEED`` — the
property that makes it safe to persist on disk and share between the
worker processes of :mod:`repro.batch.engine`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["DerivationKey", "stable_digest"]

#: Bump when the serialised payload format changes: the version is part
#: of the hashed material, so old cache entries go stale automatically.
KEY_SCHEMA = "repro-derivation/1"


def stable_digest(document: Any) -> str:
    """SHA-256 hex digest of a JSON-able document, canonically encoded.

    Keys are sorted and separators pinned, so logically equal documents
    hash identically regardless of construction order.
    """
    encoded = json.dumps(
        document, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class DerivationKey:
    """The content address of one derivation.

    ``formalism`` names the semantics (``"pepa"``, ``"pepanet"``);
    ``source`` is the canonical model text — for plain PEPA the
    :func:`repro.pepa.export.model_source` rendering, for nets the
    :func:`repro.pepanets.export.net_source` rendering — which includes
    every rate value, so a rate change is a different key;
    ``params`` are the derivation parameters as a sorted tuple of
    ``(name, value)`` pairs; ``variant`` distinguishes artefacts derived
    from the same exploration (the state space vs its assembled CTMC).
    """

    formalism: str
    source: str
    params: tuple[tuple[str, Any], ...] = ()
    variant: str = "statespace"

    @classmethod
    def of(
        cls,
        formalism: str,
        source: str,
        params: Mapping[str, Any] | None = None,
        *,
        variant: str = "statespace",
    ) -> "DerivationKey":
        """Build a key from a plain params mapping (sorted internally)."""
        items = tuple(sorted((params or {}).items()))
        return cls(formalism=formalism, source=source, params=items, variant=variant)

    def child(self, variant: str) -> "DerivationKey":
        """The same derivation, a different artefact (e.g. ``"ctmc"``)."""
        return DerivationKey(
            formalism=self.formalism, source=self.source,
            params=self.params, variant=variant,
        )

    @property
    def digest(self) -> str:
        """The stable SHA-256 content address of this key."""
        return stable_digest({
            "schema": KEY_SCHEMA,
            "formalism": self.formalism,
            "source": self.source,
            "params": [[name, value] for name, value in self.params],
            "variant": self.variant,
        })

    def describe(self) -> str:
        """Short human-readable identity for logs and events."""
        return f"{self.formalism}/{self.variant}/{self.digest[:12]}"
