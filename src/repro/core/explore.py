"""The one breadth-first state-space exploration kernel.

Deriving a labelled transition system from an initial state and a
successor function is the operation the whole tool chain hinges on —
PEPA derivation graphs, PEPA-net marking graphs and Petri-net
reachability/coverability graphs are all instances.  Each used to carry
its own hand-rolled BFS loop; this module is the single kernel they now
share, so every cross-cutting concern lands in exactly one place:

* a **state ceiling** (``max_states``) raising
  :class:`~repro.exceptions.StateSpaceError` with a per-formalism
  message before memory blows up;
* a cooperative :class:`~repro.resilience.budget.ExecutionBudget`
  checkpoint once per expanded state;
* a tracer span around the whole search, ``explore.progress`` events
  every :data:`PROGRESS_INTERVAL` discovered states, and the
  ``states_explored`` / ``transitions`` metrics counters;
* optional per-successor hooks (``adjust_successor``,
  ``on_new_state``) with access to the parent chain, which is how the
  Petri layer expresses Karp–Miller ω-acceleration and the
  unboundedness (strict-covering) abort without owning a loop.

Future optimisations — parallel frontiers, smarter state interning,
disk-backed spaces — belong here and nowhere else.
"""

from __future__ import annotations

import time
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Hashable, Iterable, Iterator, Mapping

from repro.core.lts import LabelledArc, Lts
from repro.exceptions import StateSpaceError
from repro.obs import get_events, get_metrics, get_tracer

if TYPE_CHECKING:  # pragma: no cover — typing only, avoids a hard import
    from repro.resilience.budget import ExecutionBudget

__all__ = [
    "DEFAULT_MAX_STATES",
    "PROGRESS_INTERVAL",
    "BatchSuccessorFn",
    "Exploration",
    "SuccessorFn",
    "emit_progress",
    "explore_lts",
]

#: Default ceiling on explored states; generous for the paper's models
#: (hundreds of states) while catching accidental explosions quickly.
DEFAULT_MAX_STATES = 1_000_000

#: How many newly discovered states between ``explore.progress`` events.
#: Small enough to show life on a slow derivation, large enough to stay
#: off the BFS hot path; tests shrink it via monkeypatching (the kernel
#: reads it at call time).
PROGRESS_INTERVAL = 1_000

#: A successor function: state -> iterable of (action, rate, target).
SuccessorFn = Callable[[Any], Iterable[tuple[str, float, Any]]]

#: A batched successor function: a whole BFS level of states -> one
#: successor list per state, aligned with the input.  Lets a formalism
#: amortise per-state work (memoised SOS derivation, vectorised rate
#: evaluation) across the level instead of paying it per call.
BatchSuccessorFn = Callable[
    [list[Any]], Iterable[Iterable[tuple[str, float, Any]]]
]


def emit_progress(events, stage: str, explored: int, frontier: int,
                  start: float) -> None:
    """One ``explore.progress`` event with the BFS vital signs."""
    elapsed = time.perf_counter() - start
    events.emit(
        "explore.progress", stage=stage, explored=explored, frontier=frontier,
        states_per_sec=round(explored / elapsed, 3) if elapsed > 0 else None,
        elapsed_s=round(elapsed, 9),
    )


class Exploration:
    """The in-flight view the per-successor hooks see.

    Exposes the states interned so far and the BFS parent chain, so a
    hook can walk a state's ancestors (the Petri coverability check)
    without the kernel hard-coding any formalism."""

    __slots__ = ("states", "parent")

    def __init__(self, states: list[Any]):
        self.states = states
        self.parent: dict[int, int | None] = {0: None}

    def ancestors(self, state: int) -> Iterator[Any]:
        """The states on the BFS path from ``state`` back to the root,
        starting with ``state`` itself."""
        walker: int | None = state
        while walker is not None:
            yield self.states[walker]
            walker = self.parent[walker]


def explore_lts(
    initial: Hashable,
    successors: SuccessorFn,
    *,
    stage: str,
    max_states: int = DEFAULT_MAX_STATES,
    budget: "ExecutionBudget | None" = None,
    budget_stage: str | None = None,
    span_attrs: Mapping[str, Any] | None = None,
    span_count_key: str = "states",
    overflow: Callable[[int], str] | None = None,
    adjust_successor: Callable[[Any, int, Exploration], Any] | None = None,
    on_new_state: Callable[[Any, int, Exploration], None] | None = None,
    progress_interval: int | None = None,
    successors_batch: BatchSuccessorFn | None = None,
) -> Lts:
    """Breadth-first exploration of the reachable state space.

    ``stage`` names the tracer span and the ``explore.progress`` event
    stage (e.g. ``"pepa.statespace"``); ``budget_stage`` is the
    human-readable stage embedded in budget errors (defaults to
    ``stage``).  ``span_attrs`` are extra attributes opened on the span;
    ``span_count_key`` is the attribute name under which the state count
    is reported (``states`` / ``markings``), keeping each formalism's
    established trace vocabulary.  ``overflow`` renders the
    :class:`StateSpaceError` message when the ceiling is hit.

    ``adjust_successor(candidate, source_index, exploration)`` may
    replace a successor before interning (Karp–Miller ω-acceleration);
    ``on_new_state(candidate, source_index, exploration)`` runs for each
    not-yet-interned successor and may raise to abort the search (the
    Petri unboundedness check).  Providing either enables parent-chain
    tracking on the :class:`Exploration` they receive.

    ``successors_batch`` switches the kernel to level-batched BFS: the
    whole current frontier is handed to the callable in one call and the
    results are expanded in frontier order.  Because a state discovered
    while expanding level *k* always lands behind every remaining
    level-*k* state, the interleaving is exactly the serial FIFO one —
    discovery order, arc order, overflow point and progress cadence are
    bit-identical to the per-state path; only the per-call overhead is
    amortised.  ``successors`` is ignored while a batch function is
    supplied (it remains the fallback contract for hooks and docs).

    States are interned in discovery order — the returned
    :class:`~repro.core.lts.Lts` numbers the initial state 0 and lists
    arcs in generation order, which downstream golden tests pin.
    """
    interval = PROGRESS_INTERVAL if progress_interval is None else progress_interval
    index: dict[Hashable, int] = {initial: 0}
    states: list[Any] = [initial]
    arcs: list[LabelledArc] = []
    queue: deque[Any] = deque([initial])
    events = get_events()
    start = time.perf_counter() if events.enabled else 0.0
    track_parents = adjust_successor is not None or on_new_state is not None
    exploration = Exploration(states) if track_parents else None
    budget_stage = stage if budget_stage is None else budget_stage

    attrs = dict(span_attrs) if span_attrs else {}
    attrs["max_states"] = max_states
    with get_tracer().span(stage, **attrs) as sp:

        def expand(src: int, succ: Iterable[tuple[str, float, Any]],
                   pending: int) -> None:
            """Intern one state's successors (``pending`` = frontier
            states still waiting behind this one, for the vital signs)."""
            for action, rate, target in succ:
                if adjust_successor is not None:
                    target = adjust_successor(target, src, exploration)
                tgt = index.get(target)
                if tgt is None:
                    if on_new_state is not None:
                        on_new_state(target, src, exploration)
                    if len(states) >= max_states:
                        sp.set(**{span_count_key: len(states), "arcs": len(arcs)})
                        raise StateSpaceError(
                            overflow(max_states) if overflow is not None else
                            f"{stage}: state space exceeds {max_states} states"
                        )
                    tgt = len(states)
                    index[target] = tgt
                    states.append(target)
                    queue.append(target)
                    if exploration is not None:
                        exploration.parent[tgt] = src
                    if events.enabled and tgt % interval == 0:
                        emit_progress(
                            events, stage, len(states), len(queue) + pending, start
                        )
                arcs.append(LabelledArc(src, action, rate, tgt))

        if successors_batch is None:
            while queue:
                state = queue.popleft()
                src = index[state]
                if budget is not None:
                    budget.checkpoint(
                        stage=budget_stage, explored=len(states), frontier=len(queue)
                    )
                expand(src, successors(state), 0)
        else:
            while queue:
                level = list(queue)
                queue.clear()
                batched = successors_batch(level)
                for pos, (state, succ) in enumerate(zip(level, batched)):
                    pending = len(level) - pos - 1
                    src = index[state]
                    if budget is not None:
                        budget.checkpoint(
                            stage=budget_stage, explored=len(states),
                            frontier=len(queue) + pending,
                        )
                    expand(src, succ, pending)
        sp.set(**{span_count_key: len(states), "arcs": len(arcs)})
    if events.enabled:
        emit_progress(events, stage, len(states), 0, start)
    metrics = get_metrics()
    metrics.counter("states_explored").inc(len(states))
    metrics.counter("transitions").inc(len(arcs))
    return Lts(states=states, arcs=arcs, index=index)
