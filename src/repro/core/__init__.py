"""``repro.core`` — the shared state-space exploration substrate.

One labelled-transition-system structure (:mod:`repro.core.lts`), one
breadth-first exploration kernel (:mod:`repro.core.explore`), one
LTS → CTMC assembly path (:mod:`repro.core.ctmcgen`).  The three
formalism layers — :mod:`repro.pepa`, :mod:`repro.pepanets`,
:mod:`repro.petri` — are façades over this package; see
``docs/architecture.md`` for the mapping.
"""

from repro.core.ctmcgen import ctmc_from_lts
from repro.core.explore import (
    DEFAULT_MAX_STATES,
    PROGRESS_INTERVAL,
    Exploration,
    explore_lts,
)
from repro.core.keys import DerivationKey, stable_digest
from repro.core.lts import LabelledArc, Lts

__all__ = [
    "DEFAULT_MAX_STATES",
    "PROGRESS_INTERVAL",
    "DerivationKey",
    "Exploration",
    "LabelledArc",
    "Lts",
    "ctmc_from_lts",
    "explore_lts",
    "stable_digest",
]
