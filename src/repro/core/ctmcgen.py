"""The one LTS → CTMC assembly path.

Treating the explored LTS as a CTMC — each state a chain state, rates
of parallel arcs between the same pair summing under the race condition
— is identical across formalisms, so both the PEPA route
(:func:`repro.pepa.ctmcgen.ctmc_from_statespace`, which now delegates
here) and the GSPN route (:func:`repro.petri.gspn.spn_to_ctmc`) feed
:func:`repro.ctmc.chain.build_ctmc` through this single function.

The ``generator`` knob selects the generator representation:

* ``"csr"`` (default) — materialise the global sparse matrix;
* ``"descriptor"`` — build a matrix-free Kronecker descriptor via the
  caller-supplied ``descriptor_builder`` (raises if the model is not
  descriptor-representable);
* ``"auto"`` — try the descriptor, fall back to CSR on
  :class:`~repro.ctmc.operator.DescriptorUnsupported` with a
  ``generator.fallback`` event.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.lts import Lts
from repro.ctmc.chain import CTMC, build_ctmc
from repro.ctmc.operator import DescriptorUnsupported
from repro.exceptions import SolverError
from repro.obs import get_events, get_metrics, get_tracer

__all__ = ["ctmc_from_lts", "GENERATOR_MODES"]

#: Valid values of the ``generator`` knob, in CLI/bench order.
GENERATOR_MODES = ("csr", "descriptor", "auto")


def _cached_chain(cache, child):
    """Fetch + decode one cached chain; stale schemas are evicted, not
    silently shadowed, so the warehouse can count them."""
    payload = cache.fetch(child)
    if payload is None:
        return None
    from repro.ctmc.serialize import ctmc_from_payload

    try:
        return ctmc_from_payload(payload)
    except ValueError:
        # A payload from an older schema: unlink it so the rebuilt
        # entry takes its slot, and make the event observable.
        get_events().emit(
            "cache.stale_schema",
            key=child.describe(),
            schema=str(payload.get("schema")) if isinstance(payload, dict) else "?",
        )
        get_metrics().counter("cache.stale_schema").inc()
        try:
            cache.path_of(child).unlink(missing_ok=True)
        except OSError:  # pragma: no cover - eviction is best-effort
            pass
        return None


def ctmc_from_lts(
    lts: Lts,
    *,
    generator: str = "csr",
    descriptor_builder: Callable[[Lts], CTMC] | None = None,
) -> CTMC:
    """Build the CTMC (generator + labels + action-rate vectors) of an
    explored LTS, under a ``ctmc.assemble`` tracer span.

    An LTS that came through the derivation cache carries its
    :class:`~repro.core.keys.DerivationKey` as ``cache_key``; when an
    ambient :class:`~repro.batch.cache.DerivationCache` is installed the
    assembled generator is cached too — under the ``"ctmc"`` child of
    that key for the CSR path and ``"ctmc-descriptor"`` for the
    matrix-free path (serialised via :mod:`repro.ctmc.serialize`) — so a
    fully cached analysis skips both exploration *and* assembly.
    """
    if generator not in GENERATOR_MODES:
        raise SolverError(
            f"unknown generator mode {generator!r}; choose from {GENERATOR_MODES}"
        )
    if generator == "descriptor" and descriptor_builder is None:
        raise SolverError(
            "generator='descriptor' needs a descriptor builder; this "
            "formalism only supports the materialised CSR path"
        )
    from repro.batch.cache import get_cache

    cache = get_cache()
    key = getattr(lts, "cache_key", None)

    if descriptor_builder is not None and generator in ("descriptor", "auto"):
        child = (
            key.child("ctmc-descriptor") if cache is not None and key is not None else None
        )
        if child is not None:
            chain = _cached_chain(cache, child)
            if chain is not None:
                return chain
        try:
            with get_tracer().span(
                "ctmc.assemble.descriptor", states=lts.size, arcs=len(lts.arcs)
            ) as sp:
                chain = descriptor_builder(lts)
                op = chain.generator
                sp.set(
                    terms=len(getattr(op, "terms", ())),
                    stored_bytes=int(op.stored_bytes),
                )
        except DescriptorUnsupported as exc:
            if generator == "descriptor":
                raise
            get_events().emit("generator.fallback", reason=str(exc))
            get_metrics().counter("generator.fallback").inc()
        else:
            if child is not None:
                from repro.ctmc.serialize import ctmc_to_payload

                cache.store(child, ctmc_to_payload(chain))
            return chain

    child = key.child("ctmc") if cache is not None and key is not None else None
    if child is not None:
        chain = _cached_chain(cache, child)
        if chain is not None:
            return chain
    with get_tracer().span("ctmc.assemble", states=lts.size,
                           arcs=len(lts.arcs)) as sp:
        labels = [lts.state_label(i) for i in range(lts.size)]
        chain = build_ctmc(
            lts.size, list(lts.iter_transitions()), labels=labels,
            initial=lts.initial,
        )
        sp.set(nnz=int(chain.Q.nnz))
    if child is not None:
        from repro.ctmc.serialize import ctmc_to_payload

        cache.store(child, ctmc_to_payload(chain))
    return chain
