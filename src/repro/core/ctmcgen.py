"""The one LTS → CTMC assembly path.

Treating the explored LTS as a CTMC — each state a chain state, rates
of parallel arcs between the same pair summing under the race condition
— is identical across formalisms, so both the PEPA route
(:func:`repro.pepa.ctmcgen.ctmc_from_statespace`, which now delegates
here) and the GSPN route (:func:`repro.petri.gspn.spn_to_ctmc`) feed
:func:`repro.ctmc.chain.build_ctmc` through this single function.
"""

from __future__ import annotations

from repro.core.lts import Lts
from repro.ctmc.chain import CTMC, build_ctmc
from repro.obs import get_tracer

__all__ = ["ctmc_from_lts"]


def ctmc_from_lts(lts: Lts) -> CTMC:
    """Build the CTMC (generator + labels + action-rate vectors) of an
    explored LTS, under a ``ctmc.assemble`` tracer span.

    An LTS that came through the derivation cache carries its
    :class:`~repro.core.keys.DerivationKey` as ``cache_key``; when an
    ambient :class:`~repro.batch.cache.DerivationCache` is installed the
    assembled generator is cached too, under the ``"ctmc"`` child of
    that key (serialised via :mod:`repro.ctmc.serialize`), so a fully
    cached analysis skips both exploration *and* assembly.
    """
    from repro.batch.cache import get_cache

    cache = get_cache()
    key = getattr(lts, "cache_key", None)
    child = key.child("ctmc") if cache is not None and key is not None else None
    if child is not None:
        payload = cache.fetch(child)
        if payload is not None:
            from repro.ctmc.serialize import ctmc_from_payload

            try:
                return ctmc_from_payload(payload)
            except ValueError:
                pass  # stale schema: rebuild below and overwrite
    with get_tracer().span("ctmc.assemble", states=lts.size,
                           arcs=len(lts.arcs)) as sp:
        labels = [lts.state_label(i) for i in range(lts.size)]
        chain = build_ctmc(
            lts.size, list(lts.iter_transitions()), labels=labels,
            initial=lts.initial,
        )
        sp.set(nnz=int(chain.Q.nnz))
    if child is not None:
        from repro.ctmc.serialize import ctmc_to_payload

        cache.store(child, ctmc_to_payload(chain))
    return chain
