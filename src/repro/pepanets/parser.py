"""Parser for textual PEPA nets.

The surface syntax extends the PEPA syntax (see
:mod:`repro.pepa.parser`) with two statement forms::

    // a place: initial cell contents on the left, context on the right
    P1[IM]  = IM[_];
    P2[_]   = File[_] <openread, read, close> FileReader;

    // a net-level transition: label (action, rate[, priority]) and arcs
    transmit = (transmit, r_t) : P1 -> P2;
    swap     = (exchange, 1.0, 2) : A, B -> B, A;

The left-hand bracket of a place definition lists the *initial content*
of each cell of the context, positionally: ``_`` for vacant, a
component constant (or parenthesised sequential expression) for a
token.  This mirrors the paper's pictures, where the marking is drawn
inside the places (``InstantMessage[IM]``).

Rate constants and component definitions are exactly as in plain PEPA
and may appear in any order.
"""

from __future__ import annotations

from repro.exceptions import PepaSyntaxError, WellFormednessError
from repro.obs import get_tracer
from repro.pepa.environment import Environment
from repro.pepa.lexer import Token, TokenStream, tokenize
from repro.pepa.parser import (
    _eval_rate_expr,
    _is_definition,
    _Parser,
    _rate_refs,
    _split_statements,
    _to_rate,
)
from repro.pepa.syntax import Sequential
from repro.pepanets.syntax import NetTransitionSpec, PepaNet, PlaceDef
from repro.utils.ordering import topological_order

__all__ = ["parse_net"]


def _statement_kind(stmt: list[Token]) -> str:
    if any(t.kind == "ARROW" for t in stmt):
        return "transition"
    if len(stmt) >= 2 and stmt[0].kind == "IDENT" and stmt[1].kind == "LBRACK":
        return "place"
    if _is_definition(stmt):
        return "rate" if not stmt[0].text[0].isupper() else "component"
    raise PepaSyntaxError(
        f"unrecognised statement starting with {stmt[0].text!r}",
        stmt[0].line,
        stmt[0].column,
    )


def _stream_of(stmt: list[Token], offset: int = 0) -> TokenStream:
    tail = stmt[offset:]
    last = stmt[-1]
    return TokenStream(tail + [Token("EOF", "", last.line, last.column)])


def parse_net(source: str) -> PepaNet:
    """Parse a complete PEPA net model."""
    with get_tracer().span("pepanet.parse", source_chars=len(source)) as sp:
        net = _parse_net(source)
        sp.set(places=len(net.places), net_transitions=len(net.transitions))
    return net


def _parse_net(source: str) -> PepaNet:
    tokens = tokenize(source)
    statements = _split_statements(tokens)
    if not statements:
        raise PepaSyntaxError("empty PEPA net model")

    buckets: dict[str, list[list[Token]]] = {
        "rate": [], "component": [], "place": [], "transition": []
    }
    for stmt in statements:
        buckets[_statement_kind(stmt)].append(stmt)
    if not buckets["place"]:
        raise PepaSyntaxError("a PEPA net needs at least one place definition")

    rates = _resolve_rates(buckets["rate"])

    env = Environment(rates=dict(rates))
    for stmt in buckets["component"]:
        name = stmt[0].text
        stream = _stream_of(stmt, 2)
        parser = _Parser(stream, rates)
        body = parser.parse_composite()
        if not stream.at("EOF"):
            raise stream.error(f"unexpected trailing tokens in definition of {name!r}")
        env.define(name, body)

    net = PepaNet(environment=env)
    for stmt in buckets["place"]:
        net.add_place(_parse_place(stmt, rates, env))
    for stmt in buckets["transition"]:
        net.add_transition(_parse_transition(stmt, rates))
    return net


def _resolve_rates(rate_stmts: list[list[Token]]) -> dict[str, float]:
    rate_exprs: dict[str, object] = {}
    for stmt in rate_stmts:
        name = stmt[0].text
        if name in rate_exprs:
            raise PepaSyntaxError(
                f"rate constant {name!r} defined twice", stmt[0].line, stmt[0].column
            )
        stream = _stream_of(stmt, 2)
        parser = _Parser(stream, {})
        expr = parser.parse_rate_expr()
        if not stream.at("EOF"):
            raise stream.error("unexpected trailing tokens in rate definition")
        rate_exprs[name] = expr
    edges = {
        name: [ref for ref in _rate_refs(expr) if ref in rate_exprs]
        for name, expr in rate_exprs.items()
    }
    try:
        order = topological_order(rate_exprs.keys(), edges)
    except Exception as exc:
        raise WellFormednessError(f"cyclic rate definitions: {exc}") from exc
    rates: dict[str, float] = {}
    for name in reversed(order):
        value = _eval_rate_expr(rate_exprs[name], rates)
        if isinstance(value, tuple):
            raise WellFormednessError(
                f"rate constant {name!r} resolves to a passive rate"
            )
        rates[name] = value
    return rates


def _parse_place(stmt: list[Token], rates: dict[str, float], env: Environment) -> PlaceDef:
    stream = _stream_of(stmt)
    name_tok = stream.expect("IDENT", "place name")
    if not name_tok.text[0].isupper():
        raise PepaSyntaxError(
            f"place names begin upper-case, got {name_tok.text!r}",
            name_tok.line,
            name_tok.column,
        )
    stream.expect("LBRACK")
    parser = _Parser(stream, rates)
    contents: list[Sequential | None] = []
    while not stream.at("RBRACK"):
        if stream.at("UNDERSCORE"):
            stream.advance()
            contents.append(None)
        else:
            component = parser.parse_seq_factor()
            contents.append(component)
        if stream.at("COMMA"):
            stream.advance()
    stream.expect("RBRACK")
    stream.expect("DEF", "'='")
    template = parser.parse_composite()
    if not stream.at("EOF"):
        raise stream.error(f"unexpected trailing tokens in place {name_tok.text!r}")
    template = env.resolve_wildcards(template)
    return PlaceDef(name_tok.text, template, tuple(contents))


def _parse_transition(stmt: list[Token], rates: dict[str, float]) -> NetTransitionSpec:
    stream = _stream_of(stmt)
    name_tok = stream.expect("IDENT", "net transition name")
    stream.expect("DEF", "'='")
    stream.expect("LPAREN")
    action_tok = stream.expect("IDENT", "firing action type")
    if action_tok.text[0].isupper():
        raise PepaSyntaxError(
            f"firing action types begin lower-case, got {action_tok.text!r}",
            action_tok.line,
            action_tok.column,
        )
    stream.expect("COMMA")
    parser = _Parser(stream, rates)
    rate = parser.parse_rate_value()
    priority = 1
    if stream.at("COMMA"):
        stream.advance()
        prio_tok = stream.expect("NUMBER", "priority")
        priority = int(float(prio_tok.text))
    stream.expect("RPAREN")
    stream.expect("COLON", "':'")
    inputs = _parse_place_list(stream)
    stream.expect("ARROW", "'->'")
    outputs = _parse_place_list(stream)
    if not stream.at("EOF"):
        raise stream.error(f"unexpected trailing tokens in net transition {name_tok.text!r}")
    return NetTransitionSpec(
        name=name_tok.text,
        action=action_tok.text,
        rate=rate,
        inputs=inputs,
        outputs=outputs,
        priority=priority,
    )


def _parse_place_list(stream: TokenStream) -> tuple[str, ...]:
    places = [stream.expect("IDENT", "place name").text]
    while stream.at("COMMA"):
        stream.advance()
        places.append(stream.expect("IDENT", "place name").text)
    return tuple(places)
