"""PEPA nets: the paper's performance-modelling formalism (substrate S4).

Coloured stochastic Petri nets whose tokens are PEPA terms with state
and identity; local transitions model computation within a location,
net-level firings model mobility between locations.

Public surface::

    from repro.pepanets import parse_net, analyse_net

    net = parse_net(SOURCE)
    result = analyse_net(net)
    result.throughput("transmit")          # a firing (movement) rate
    result.location_distribution("File")   # where the tokens live
"""

from repro.pepanets.abstraction import occupancy_counts, project_marking, to_petri_net
from repro.pepanets.firing import (
    DerivativeSets,
    FiringInstance,
    eligible_tokens,
    enabled_transitions,
    firing_instances,
    has_concession,
    vacant_cells,
)
from repro.pepanets.measures import NetAnalysis, analyse_net, ctmc_of_net
from repro.pepanets.parser import parse_net
from repro.pepanets.semantics import NetStateSpace, explore_net, net_arcs
from repro.pepanets.syntax import (
    NetMarking,
    NetTransitionSpec,
    PepaNet,
    PlaceDef,
    derivative_set,
    find_cells,
    replace_cell,
)
from repro.pepanets.wellformed import assert_net_well_formed, check_net

__all__ = [
    "PepaNet",
    "PlaceDef",
    "NetTransitionSpec",
    "NetMarking",
    "find_cells",
    "replace_cell",
    "derivative_set",
    "parse_net",
    "DerivativeSets",
    "FiringInstance",
    "eligible_tokens",
    "vacant_cells",
    "has_concession",
    "enabled_transitions",
    "firing_instances",
    "NetStateSpace",
    "explore_net",
    "net_arcs",
    "NetAnalysis",
    "analyse_net",
    "ctmc_of_net",
    "check_net",
    "assert_net_well_formed",
    "to_petri_net",
    "project_marking",
    "occupancy_counts",
]
