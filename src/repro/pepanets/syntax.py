"""Abstract syntax for PEPA nets (paper Definition 1 and Figure 3).

A PEPA net is a tuple ``N = (P, T, I, O, l, π, C, D, M0)``:

* ``P``  — places, each with a *context*: a PEPA expression containing
  at least one :class:`~repro.pepa.syntax.Cell` plus optional static
  components (:class:`PlaceDef`);
* ``T, I, O`` — net-level transitions with input and output places
  (:class:`NetTransitionSpec`; the paper's balance condition requires
  ``len(inputs) == len(outputs)``);
* ``l``  — the labelling function: each net transition carries a firing
  activity ``(action, rate)``, the rate possibly passive;
* ``π``  — the priority function, here an ``int`` per transition
  (larger = higher priority, matching :mod:`repro.petri`);
* ``C``  — the place-definition function: we store the context template
  on each :class:`PlaceDef`;
* ``D``  — token/static component definitions: the shared
  :class:`~repro.pepa.environment.Environment`;
* ``M0`` — the initial marking: the initial contents declared on each
  place definition's left-hand side (``P1[IM] = IM[_] ...``).

Cells inside a context are addressed by *paths* — tuples of tree
directions — so firing can vacate and fill individual cells while
keeping expressions immutable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import WellFormednessError
from repro.pepa.environment import Environment
from repro.pepa.rates import Rate
from repro.pepa.semantics import derivative_set, derivatives
from repro.pepa.syntax import (
    Cell,
    Choice,
    Const,
    Cooperation,
    Expression,
    Hiding,
    Prefix,
    Sequential,
)

__all__ = [
    "CellPath",
    "PlaceDef",
    "NetTransitionSpec",
    "PepaNet",
    "NetMarking",
    "find_cells",
    "replace_cell",
    "derivative_set",
]

#: A path from an expression root to a Cell node: 'L'/'R' descend a
#: cooperation, 'H' descends a hiding.
CellPath = tuple[str, ...]


def find_cells(expr: Expression, _prefix: CellPath = ()) -> list[tuple[CellPath, Cell]]:
    """All cells in ``expr`` with their paths, left-to-right."""
    if isinstance(expr, Cell):
        return [(_prefix, expr)]
    if isinstance(expr, Cooperation):
        return find_cells(expr.left, _prefix + ("L",)) + find_cells(expr.right, _prefix + ("R",))
    if isinstance(expr, Hiding):
        return find_cells(expr.expr, _prefix + ("H",))
    # Sequential components contain no cells (Fig 3 grammar).
    return []


def replace_cell(expr: Expression, path: CellPath, new_cell: Cell) -> Expression:
    """Rebuild ``expr`` with the cell at ``path`` replaced."""
    if not path:
        if not isinstance(expr, Cell):
            raise WellFormednessError(f"path does not lead to a cell: {expr}")
        return new_cell
    head, rest = path[0], path[1:]
    if head == "L" and isinstance(expr, Cooperation):
        return Cooperation(replace_cell(expr.left, rest, new_cell), expr.right, expr.actions)
    if head == "R" and isinstance(expr, Cooperation):
        return Cooperation(expr.left, replace_cell(expr.right, rest, new_cell), expr.actions)
    if head == "H" and isinstance(expr, Hiding):
        return Hiding(replace_cell(expr.expr, rest, new_cell), expr.actions)
    raise WellFormednessError(f"invalid cell path {path} into {expr}")


@dataclass(frozen=True)
class PlaceDef:
    """A place: its context template (cells vacant) and initial cell
    contents, positionally matching the template's cells."""

    name: str
    template: Expression
    initial_contents: tuple[Sequential | None, ...]

    def __post_init__(self) -> None:
        cells = find_cells(self.template)
        if not cells:
            raise WellFormednessError(
                f"place {self.name!r} has no cell: every PEPA-net place "
                "context must contain at least one cell"
            )
        for _, cell in cells:
            if cell.content is not None:
                raise WellFormednessError(
                    f"place {self.name!r}: template cells must be vacant; "
                    "initial contents go on the left-hand side"
                )
        if len(self.initial_contents) != len(cells):
            raise WellFormednessError(
                f"place {self.name!r}: {len(self.initial_contents)} initial "
                f"content(s) declared for {len(cells)} cell(s)"
            )

    def cell_families(self) -> tuple[str, ...]:
        """The cell families of the context, in template order."""
        return tuple(cell.family for _, cell in find_cells(self.template))

    def initial_expression(self) -> Expression:
        """The template with initial contents substituted into cells."""
        expr = self.template
        for (path, cell), content in zip(find_cells(self.template), self.initial_contents):
            if content is not None:
                expr = replace_cell(expr, path, Cell(cell.family, content))
        return expr


@dataclass(frozen=True)
class NetTransitionSpec:
    """A net-level transition: label ``(action, rate)``, priority, and
    input/output place names (repeats allowed, meaning several tokens
    from/to the same place)."""

    name: str
    action: str
    rate: Rate
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    priority: int = 1

    def __post_init__(self) -> None:
        if not self.inputs or not self.outputs:
            raise WellFormednessError(
                f"net transition {self.name!r} needs at least one input and one output place"
            )
        if self.priority < 0:
            raise WellFormednessError(f"net transition {self.name!r}: priority must be >= 0")

    def is_balanced(self) -> bool:
        """True when input and output place counts agree (paper requirement)."""
        return len(self.inputs) == len(self.outputs)


@dataclass(frozen=True)
class NetMarking:
    """A marking: the current PEPA expression of every place, in the
    net's canonical place order.  Hashable — markings are the states of
    the net-level LTS."""

    place_names: tuple[str, ...]
    place_states: tuple[Expression, ...]

    def state_of(self, place: str) -> Expression:
        """The current PEPA expression of one place."""
        try:
            return self.place_states[self.place_names.index(place)]
        except ValueError:
            raise KeyError(f"unknown place {place!r}") from None

    def with_state(self, place: str, expr: Expression) -> "NetMarking":
        """A copy of the marking with one place's expression replaced."""
        idx = self.place_names.index(place)
        states = list(self.place_states)
        states[idx] = expr
        return NetMarking(self.place_names, tuple(states))

    def __str__(self) -> str:
        return " | ".join(
            f"{name}: {expr}" for name, expr in zip(self.place_names, self.place_states)
        )


@dataclass
class PepaNet:
    """A complete PEPA net (Definition 1)."""

    environment: Environment
    places: dict[str, PlaceDef] = field(default_factory=dict)
    transitions: dict[str, NetTransitionSpec] = field(default_factory=dict)

    def add_place(self, place: PlaceDef) -> None:
        """Register a place definition; duplicate names are rejected."""
        if place.name in self.places:
            raise WellFormednessError(f"place {place.name!r} defined twice")
        self.places[place.name] = place

    def add_transition(self, spec: NetTransitionSpec) -> None:
        """Register a net transition; unknown places are rejected."""
        if spec.name in self.transitions:
            raise WellFormednessError(f"net transition {spec.name!r} defined twice")
        for place in spec.inputs + spec.outputs:
            if place not in self.places:
                raise WellFormednessError(
                    f"net transition {spec.name!r} references unknown place {place!r}"
                )
        self.transitions[spec.name] = spec

    # ------------------------------------------------------------------
    @property
    def firing_actions(self) -> frozenset[str]:
        """The set A_f of firing action types (suppressed from local
        place-level derivation)."""
        return frozenset(t.action for t in self.transitions.values())

    def initial_marking(self) -> NetMarking:
        """The marking M0: every place's template with declared contents."""
        names = tuple(self.places)
        return NetMarking(names, tuple(self.places[n].initial_expression() for n in names))

    def place_order(self) -> tuple[str, ...]:
        """The canonical (definition) order of place names."""
        return tuple(self.places)

    def __str__(self) -> str:
        # _paren_seq wraps Choice contents in parentheses: the parser
        # reads each initial cell content as a seq *factor*, so a bare
        # "P + Q" in the bracket would not round-trip.
        from repro.pepa.syntax import _paren_seq

        lines = []
        for name, body in self.environment.components.items():
            lines.append(f"{name} = {body};")
        for place in self.places.values():
            contents = ", ".join(
                "_" if c is None else _paren_seq(c) for c in place.initial_contents
            )
            lines.append(f"{place.name}[{contents}] = {place.template};")
        for t in self.transitions.values():
            lines.append(
                f"{t.name} = ({t.action}, {t.rate}, {t.priority}) : "
                f"{', '.join(t.inputs)} -> {', '.join(t.outputs)};"
            )
        return "\n".join(lines)
