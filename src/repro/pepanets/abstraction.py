"""Abstraction of a PEPA net to its underlying classical Petri net.

The paper contrasts PEPA nets with classical nets: "In classical Petri
nets tokens are identitiless ... In contrast, in PEPA nets our tokens
have state and identity."  Forgetting token state and identity yields a
classical P/T net — one (capacity-bounded) place per PEPA-net place,
one transition per net-level transition, the marking counting occupied
cells.  The abstraction is sound for *occupancy* questions:

* every reachable PEPA-net marking projects to a reachable marking of
  the abstraction (the converse need not hold — token state can forbid
  firings the structure alone would allow);
* therefore structural facts about the abstraction (place bounds, token
  conservation P-invariants) are valid for the PEPA net too.

This makes the whole :mod:`repro.petri` analysis suite (invariants,
boundedness, liveness on the abstraction) applicable to PEPA nets —
a cheap pre-analysis before the full marking-space derivation, and
exactly the relationship the two formalisms have in the literature.
"""

from __future__ import annotations

from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.pepanets.syntax import NetMarking, PepaNet, find_cells

__all__ = ["to_petri_net", "project_marking", "occupancy_counts"]


def occupancy_counts(marking: NetMarking) -> dict[str, int]:
    """Occupied-cell count per place of a PEPA-net marking."""
    return {
        place: sum(
            1 for _, cell in find_cells(marking.state_of(place)) if cell.content is not None
        )
        for place in marking.place_names
    }


def to_petri_net(net: PepaNet) -> PetriNet:
    """The classical abstraction: cells → capacity, tokens → counts,
    net transitions → P/T transitions (rates become the label rate's
    value when active, 1.0 when passive, so the GSPN interpretation
    stays runnable)."""
    abstract = PetriNet(name="abstraction")
    initial = net.initial_marking()
    counts = occupancy_counts(initial)
    for place in net.places.values():
        capacity = len(find_cells(place.template))
        abstract.add_place(place.name, tokens=counts[place.name], capacity=capacity)
    for spec in net.transitions.values():
        inputs: dict[str, int] = {}
        for p in spec.inputs:
            inputs[p] = inputs.get(p, 0) + 1
        outputs: dict[str, int] = {}
        for p in spec.outputs:
            outputs[p] = outputs.get(p, 0) + 1
        rate = 1.0 if spec.rate.is_passive() else spec.rate.value
        abstract.add_transition(
            spec.name, inputs, outputs, priority=spec.priority, rate=rate
        )
    return abstract


def project_marking(marking: NetMarking, abstract: PetriNet) -> Marking:
    """Project a PEPA-net marking onto the abstraction's marking space."""
    counts = occupancy_counts(marking)
    return Marking.from_dict(counts, order=sorted(abstract.places))
