"""The firing semantics of PEPA nets: Definitions 2–6 of the paper.

* **Enabling** (Def 2) — for each input place of a transition, a token
  (filled cell) whose content has a one-step derivative of the firing
  type.
* **Output** (Def 3) — a vacant cell in each output place.
* **Concession** (Def 4) — a type-preserving bijection φ between an
  enabling and an output: each fired token's derivative must belong to
  the derivative set of the cell family it is mapped into.
* **Enabling rule** (Def 5) — a transition fires only if no
  higher-priority transition has concession in the current marking.
* **Firing rule** (Def 6) — fired tokens are removed from their input
  cells (``T[T] → T[_]``) and their derivatives deposited per φ; when
  several φ exist they are equally likely, so the firing rate divides
  equally among the distinct outcomes.

The firing *rate* follows the paper's pointer to PEPA's apparent rates
and bounded capacity: the transition label and every participating
place act as an n-way cooperation on the firing type.  With label rate
``r_l`` and per-input-place apparent firing rates ``a_p`` (summed over
all eligible tokens of the place), a particular choice of tokens with
activity rates ``r_i`` fires at::

    ( Π_i  r_i / a_{p_i} ) · min(r_l, a_{p_1}, ..., a_{p_k})

with passive rates dropping out of the ``min`` as usual.  For the
repeated-input-place corner (two tokens drawn from one place) the same
formula is applied slot-wise; this matches the n-way cooperation law
whenever input places are distinct, which covers every model in the
paper.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.exceptions import RateError, WellFormednessError
from repro.pepa.environment import Environment
from repro.pepa.rates import Rate, rate_min, rate_sum
from repro.pepa.semantics import Transition, derivatives
from repro.pepa.syntax import Cell, Expression, Sequential
from repro.pepanets.syntax import (
    CellPath,
    NetMarking,
    NetTransitionSpec,
    PepaNet,
    derivative_set,
    find_cells,
    replace_cell,
)

__all__ = [
    "FiringInstance",
    "eligible_tokens",
    "vacant_cells",
    "has_concession",
    "enabled_transitions",
    "firing_instances",
    "DerivativeSets",
]


class DerivativeSets:
    """Cache of token-family derivative sets for type checking."""

    def __init__(self, env: Environment):
        self._env = env
        self._cache: dict[str, frozenset[Sequential]] = {}

    def of(self, family: str) -> frozenset[Sequential]:
        """The (cached) derivative set of a token family."""
        if family not in self._cache:
            self._cache[family] = derivative_set(family, self._env)
        return self._cache[family]

    def admits(self, family: str, component: Sequential) -> bool:
        """True when the component may occupy a cell of that family."""
        return component in self.of(family)


@dataclass(frozen=True)
class FiringInstance:
    """One resolved firing: transition, rate, and the successor marking."""

    transition: str
    action: str
    rate: float
    marking: NetMarking


def eligible_tokens(
    place_expr: Expression, action: str, env: Environment
) -> list[tuple[CellPath, Cell, Transition]]:
    """Tokens of the place with a one-step ``action``-derivative
    (Definition 2's per-place condition)."""
    out = []
    for path, cell in find_cells(place_expr):
        if cell.content is None:
            continue
        for tr in derivatives(cell.content, env):
            if tr.action == action:
                out.append((path, cell, tr))
    return out


def vacant_cells(place_expr: Expression) -> list[tuple[CellPath, Cell]]:
    """Vacant cells of the place (Definition 3's raw material)."""
    return [(path, cell) for path, cell in find_cells(place_expr) if cell.content is None]


def _place_apparent_rate(
    eligibles: list[tuple[CellPath, Cell, Transition]], place: str, action: str
) -> Rate:
    total: Rate | None = None
    for _, _, tr in eligibles:
        try:
            total = tr.rate if total is None else rate_sum(total, tr.rate)
        except RateError:
            raise WellFormednessError(
                f"place {place!r} mixes active and passive tokens for firing "
                f"type {action!r}; the apparent rate is undefined"
            ) from None
    assert total is not None
    return total


def _token_combinations(
    net: PepaNet, marking: NetMarking, spec: NetTransitionSpec, env: Environment
) -> tuple[list[tuple[tuple, float]], dict[str, Rate]]:
    """All token selections plus per-place apparent rates.

    Each entry is ``(combo, share)``: a tuple over input slots of
    ``(place, path, Transition)`` together with its probabilistic share
    of the firing rate.  When a place appears once, the share is the
    classic apparent-rate ratio ``r_i / a_p``.  When a transition draws
    ``k`` tokens from one place (Definition 1 has single input places;
    multi-arc transitions are our conservative generalisation),
    selections are *unordered* ``k``-subsets of distinct cells, weighted
    by the normalised product of their activity rates — which reduces to
    the ratio rule at ``k = 1`` and never double-counts a physical
    selection.
    """
    apparent: dict[str, Rate] = {}
    multiplicity: dict[str, int] = {}
    eligibles: dict[str, list[tuple[CellPath, Transition]]] = {}
    slot_order: list[str] = list(spec.inputs)
    for place in slot_order:
        multiplicity[place] = multiplicity.get(place, 0) + 1
        if place in eligibles:
            continue
        elig = eligible_tokens(marking.state_of(place), spec.action, env)
        if not elig:
            return [], {}
        apparent[place] = _place_apparent_rate(elig, place, spec.action)
        eligibles[place] = [(path, tr) for path, _, tr in elig]

    # per-place weighted selections
    per_place: dict[str, list[tuple[list[tuple[str, CellPath, Transition]], float]]] = {}
    for place, k in multiplicity.items():
        options = eligibles[place]
        raw: list[tuple[list[tuple[str, CellPath, Transition]], float]] = []
        for subset in itertools.combinations(options, k):
            paths = [p for p, _ in subset]
            if len(set(paths)) != k:
                continue  # one cell cannot supply two tokens
            weight = 1.0
            chosen = []
            for path, tr in subset:
                weight *= _rate_weight(tr.rate)
                chosen.append((place, path, tr))
            raw.append((chosen, weight))
        if not raw:
            return [], {}
        total = sum(w for _, w in raw)
        per_place[place] = [(chosen, w / total) for chosen, w in raw]

    combos: list[tuple[tuple, float]] = []
    places = list(per_place)
    for assignment in itertools.product(*(per_place[p] for p in places)):
        share = 1.0
        pool: dict[str, list[tuple[str, CellPath, Transition]]] = {}
        for (chosen, weight), place in zip(assignment, places):
            share *= weight
            pool[place] = list(chosen)
        combo = tuple(pool[place].pop(0) for place in slot_order)
        combos.append((combo, share))
    return combos, apparent


def _rate_weight(rate: Rate) -> float:
    """A comparable magnitude for selection weighting: the value for
    actives, the weight for passives (kinds never mix within a place —
    :func:`_place_apparent_rate` enforces that)."""
    if rate.is_passive():
        from repro.pepa.rates import PassiveRate

        assert isinstance(rate, PassiveRate)
        return rate.weight
    return rate.value


def _output_mappings(
    marking: NetMarking,
    spec: NetTransitionSpec,
    targets: tuple[Sequential, ...],
    ds: DerivativeSets,
) -> list[tuple[tuple[str, CellPath, str], ...]]:
    """All type-preserving bijections φ (Definition 4).

    Each mapping is a tuple over *input slots* ``i`` of
    ``(output_place, cell_path, family)`` receiving token ``i``'s
    derivative.  Deduplicated, because a permutation of equal slots can
    produce the same physical assignment twice.
    """
    k = len(spec.outputs)
    vacant_per_outslot: list[list[tuple[str, CellPath, str]]] = []
    for place in spec.outputs:
        cells = vacant_cells(marking.state_of(place))
        if not cells:
            return []
        vacant_per_outslot.append([(place, path, cell.family) for path, cell in cells])

    mappings: set[tuple[tuple[str, CellPath, str], ...]] = set()
    for sigma in itertools.permutations(range(k)):
        # input slot i is delivered to output slot sigma[i]
        for cells_choice in itertools.product(*vacant_per_outslot):
            used: set[tuple[str, CellPath]] = set()
            clash = False
            for place, path, _ in cells_choice:
                key = (place, path)
                if key in used:
                    clash = True
                    break
                used.add(key)
            if clash:
                continue
            assignment = tuple(cells_choice[sigma[i]] for i in range(k))
            if all(ds.admits(assignment[i][2], targets[i]) for i in range(k)):
                mappings.add(assignment)
    return sorted(mappings)


def has_concession(
    net: PepaNet,
    marking: NetMarking,
    spec: NetTransitionSpec,
    env: Environment,
    ds: DerivativeSets,
) -> bool:
    """Definition 4: some enabling admits a type-preserving bijection to
    an output."""
    combos, _ = _token_combinations(net, marking, spec, env)
    for combo, _share in combos:
        targets = tuple(tr.target for _, _, tr in combo)
        if _output_mappings(marking, spec, targets, ds):
            return True
    return False


def enabled_transitions(
    net: PepaNet, marking: NetMarking, env: Environment, ds: DerivativeSets
) -> list[NetTransitionSpec]:
    """Definition 5: transitions with concession, filtered by priority."""
    with_concession = [
        spec
        for spec in net.transitions.values()
        if has_concession(net, marking, spec, env, ds)
    ]
    if not with_concession:
        return []
    top = max(s.priority for s in with_concession)
    return sorted((s for s in with_concession if s.priority == top), key=lambda s: s.name)


def firing_instances(
    net: PepaNet, marking: NetMarking, env: Environment, ds: DerivativeSets
) -> list[FiringInstance]:
    """All firings enabled in ``marking`` with their rates and successor
    markings (Definitions 5 and 6)."""
    out: list[FiringInstance] = []
    for spec in enabled_transitions(net, marking, env, ds):
        combos, apparent = _token_combinations(net, marking, spec, env)
        floor = spec.rate
        for place_rate in apparent.values():
            floor = rate_min(floor, place_rate)
        if floor.is_passive():
            raise WellFormednessError(
                f"net transition {spec.name!r}: the label and every "
                "participating token are passive; the firing rate is undefined"
            )
        for combo, share in combos:
            targets = tuple(tr.target for _, _, tr in combo)
            mappings = _output_mappings(marking, spec, targets, ds)
            if not mappings:
                continue
            combo_rate = share * floor.value
            per_mapping = combo_rate / len(mappings)
            for mapping in mappings:
                successor = _apply_firing(marking, combo, mapping)
                out.append(
                    FiringInstance(spec.name, spec.action, per_mapping, successor)
                )
    return out


def _apply_firing(
    marking: NetMarking,
    combo: tuple[tuple[str, CellPath, Transition], ...],
    mapping: tuple[tuple[str, CellPath, str], ...],
) -> NetMarking:
    """Definition 6: vacate every fired cell, then deposit derivatives."""
    result = marking
    for place, path, _ in combo:
        expr = result.state_of(place)
        _, old_cell = next(
            (p, c) for p, c in find_cells(expr) if p == path
        )
        result = result.with_state(place, replace_cell(expr, path, old_cell.vacated()))
    for (in_place, in_path, tr), (out_place, out_path, family) in zip(combo, mapping):
        expr = result.state_of(out_place)
        target = tr.target
        assert isinstance(target, Sequential)
        result = result.with_state(
            out_place, replace_cell(expr, out_path, Cell(family, target))
        )
    return result
