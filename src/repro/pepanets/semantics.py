"""Marking-level semantics of PEPA nets.

The paper distinguishes two kinds of state change (Section 2.2):

* **transitions of PEPA components** — local evolution inside one
  place (small-scale changes of state): these are the PEPA derivatives
  of the place's context expression with firing types excluded;
* **firings of the net** — macro-step changes moving tokens between
  places, per Definitions 2–6 (:mod:`repro.pepanets.firing`).

Treating each marking as a distinct state yields the CTMC
("The structured operational semantics ... shows how a CTMC can be
derived, treating each marking as a distinct state").
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

from repro.exceptions import StateSpaceError, WellFormednessError
from repro.obs import get_events, get_metrics, get_tracer
from repro.pepa import statespace as _statespace
from repro.pepa.semantics import derivatives
from repro.pepa.statespace import DEFAULT_MAX_STATES, LabelledArc, emit_progress
from repro.pepanets.firing import DerivativeSets, firing_instances
from repro.pepanets.syntax import NetMarking, PepaNet

__all__ = ["NetStateSpace", "explore_net", "net_arcs"]


@dataclass
class NetStateSpace:
    """The reachable markings of a PEPA net with all labelled arcs.

    Arc actions are either local PEPA action types or firing action
    types; :attr:`firing_actions` tells them apart for measures.
    """

    net: PepaNet
    markings: list[NetMarking]
    arcs: list[LabelledArc]
    index: dict[NetMarking, int] = field(repr=False, default_factory=dict)

    @property
    def initial(self) -> int:
        return 0

    @property
    def size(self) -> int:
        return len(self.markings)

    def __len__(self) -> int:
        return len(self.markings)

    @property
    def firing_actions(self) -> frozenset[str]:
        return self.net.firing_actions

    def actions(self) -> frozenset[str]:
        """Every action type labelling some arc of the marking space."""
        return frozenset(a.action for a in self.arcs)

    def deadlocks(self) -> list[int]:
        """Indices of markings with no outgoing arcs."""
        sources = {a.source for a in self.arcs}
        return [i for i in range(self.size) if i not in sources]

    def state_label(self, i: int) -> str:
        """Human-readable rendering of marking ``i``."""
        return str(self.markings[i])


def net_arcs(
    net: PepaNet, marking: NetMarking, ds: DerivativeSets
) -> list[tuple[str, float, NetMarking]]:
    """All outgoing (action, rate, successor) of one marking: local
    transitions of every place plus enabled net firings."""
    env = net.environment
    exclude = net.firing_actions
    out: list[tuple[str, float, NetMarking]] = []
    for place in marking.place_names:
        expr = marking.state_of(place)
        for tr in derivatives(expr, env, exclude=exclude):
            if tr.rate.is_passive():
                raise WellFormednessError(
                    f"place {place!r}: local activity ({tr.action}, {tr.rate}) is "
                    "passive at place level and has no partner"
                )
            out.append((tr.action, tr.rate.value, marking.with_state(place, tr.target)))
    for firing in firing_instances(net, marking, env, ds):
        out.append((firing.action, firing.rate, firing.marking))
    return out


def explore_net(
    net: PepaNet,
    *,
    max_states: int = DEFAULT_MAX_STATES,
    budget=None,
) -> NetStateSpace:
    """Breadth-first derivation of the net's marking space.

    ``budget`` is an optional
    :class:`~repro.resilience.budget.ExecutionBudget` checked
    cooperatively once per expanded marking; exhaustion raises a
    resumable :class:`~repro.exceptions.BudgetExceededError`.
    """
    ds = DerivativeSets(net.environment)
    initial = net.initial_marking()
    index: dict[NetMarking, int] = {initial: 0}
    markings: list[NetMarking] = [initial]
    arcs: list[LabelledArc] = []
    queue: deque[NetMarking] = deque([initial])
    events = get_events()
    start = time.perf_counter() if events.enabled else 0.0

    with get_tracer().span("pepanet.markingspace", places=len(net.places),
                           net_transitions=len(net.transitions),
                           max_states=max_states) as sp:
        while queue:
            marking = queue.popleft()
            src = index[marking]
            if budget is not None:
                budget.checkpoint(
                    stage="pepa-net marking space",
                    explored=len(markings), frontier=len(queue),
                )
            for action, rate, successor in net_arcs(net, marking, ds):
                tgt = index.get(successor)
                if tgt is None:
                    if len(markings) >= max_states:
                        sp.set(markings=len(markings), arcs=len(arcs))
                        raise StateSpaceError(
                            f"PEPA-net marking space exceeds {max_states} states"
                        )
                    tgt = len(markings)
                    index[successor] = tgt
                    markings.append(successor)
                    queue.append(successor)
                    if events.enabled and tgt % _statespace.PROGRESS_INTERVAL == 0:
                        emit_progress(events, "pepanet.markingspace",
                                      len(markings), len(queue), start)
                arcs.append(LabelledArc(src, action, rate, tgt))
        sp.set(markings=len(markings), arcs=len(arcs))
    if events.enabled:
        emit_progress(events, "pepanet.markingspace", len(markings), 0, start)
    metrics = get_metrics()
    metrics.counter("states_explored").inc(len(markings))
    metrics.counter("transitions").inc(len(arcs))
    return NetStateSpace(net=net, markings=markings, arcs=arcs, index=index)
