"""Marking-level semantics of PEPA nets.

The paper distinguishes two kinds of state change (Section 2.2):

* **transitions of PEPA components** — local evolution inside one
  place (small-scale changes of state): these are the PEPA derivatives
  of the place's context expression with firing types excluded;
* **firings of the net** — macro-step changes moving tokens between
  places, per Definitions 2–6 (:mod:`repro.pepanets.firing`).

Treating each marking as a distinct state yields the CTMC
("The structured operational semantics ... shows how a CTMC can be
derived, treating each marking as a distinct state").  The breadth-first
walk itself is the shared :func:`repro.core.explore.explore_lts`
kernel; this module only supplies the successor relation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.explore import DEFAULT_MAX_STATES, explore_lts
from repro.core.lts import LabelledArc, Lts
from repro.exceptions import WellFormednessError
from repro.pepa.semantics import derivatives
from repro.pepanets.firing import DerivativeSets, firing_instances
from repro.pepanets.syntax import NetMarking, PepaNet

if TYPE_CHECKING:  # pragma: no cover — typing only, avoids a hard import
    from repro.resilience.budget import ExecutionBudget

__all__ = ["NetStateSpace", "explore_net", "net_arcs"]


class NetStateSpace(Lts):
    """The reachable markings of a PEPA net with all labelled arcs.

    Arc actions are either local PEPA action types or firing action
    types; :attr:`firing_actions` tells them apart for measures.  The
    graph accessors come from :class:`repro.core.lts.Lts`;
    :attr:`markings` is the net-flavoured name for its ``states``.
    """

    def __init__(
        self,
        net: PepaNet,
        markings: list[NetMarking],
        arcs: list[LabelledArc],
        index: dict[NetMarking, int] | None = None,
    ):
        super().__init__(states=markings, arcs=arcs, index=index)
        self.net = net

    @property
    def markings(self) -> list[NetMarking]:
        return self.states

    @property
    def firing_actions(self) -> frozenset[str]:
        return self.net.firing_actions


def net_arcs(
    net: PepaNet, marking: NetMarking, ds: DerivativeSets
) -> list[tuple[str, float, NetMarking]]:
    """All outgoing (action, rate, successor) of one marking: local
    transitions of every place plus enabled net firings."""
    env = net.environment
    exclude = net.firing_actions
    out: list[tuple[str, float, NetMarking]] = []
    for place in marking.place_names:
        expr = marking.state_of(place)
        for tr in derivatives(expr, env, exclude=exclude):
            if tr.rate.is_passive():
                raise WellFormednessError(
                    f"place {place!r}: local activity ({tr.action}, {tr.rate}) is "
                    "passive at place level and has no partner"
                )
            out.append((tr.action, tr.rate.value, marking.with_state(place, tr.target)))
    for firing in firing_instances(net, marking, env, ds):
        out.append((firing.action, firing.rate, firing.marking))
    return out


#: Payload schema of cached marking spaces; bump on layout changes.
CACHE_SCHEMA = "repro-markingspace/1"


def explore_net(
    net: PepaNet,
    *,
    max_states: int = DEFAULT_MAX_STATES,
    budget: "ExecutionBudget | None" = None,
) -> NetStateSpace:
    """Breadth-first derivation of the net's marking space.

    ``budget`` is an optional
    :class:`~repro.resilience.budget.ExecutionBudget` checked
    cooperatively once per expanded marking; exhaustion raises a
    resumable :class:`~repro.exceptions.BudgetExceededError`.

    With an ambient :class:`~repro.batch.cache.DerivationCache`
    installed, the marking space is content-addressed by the net's
    canonical source (:func:`repro.pepanets.export.net_source`): a hit
    reconstructs markings and arcs from disk and skips the BFS
    entirely; a miss explores and publishes.  Cached spaces above
    ``max_states`` are rejected, preserving the ceiling's semantics.
    """
    from repro.batch.cache import get_cache

    cache = get_cache()
    key = None
    if cache is not None:
        from repro.core.keys import DerivationKey
        from repro.pepanets.export import net_source

        key = DerivationKey.of("pepanet", net_source(net))
        payload = cache.fetch(key)
        if (
            payload is not None
            and payload.get("schema") == CACHE_SCHEMA
            and len(payload.get("markings", ())) <= max_states
        ):
            space = NetStateSpace(
                net=net, markings=payload["markings"], arcs=payload["arcs"]
            )
            space.cache_key = key
            return space
    ds = DerivativeSets(net.environment)
    lts = explore_lts(
        net.initial_marking(),
        lambda marking: net_arcs(net, marking, ds),
        stage="pepanet.markingspace",
        budget_stage="pepa-net marking space",
        max_states=max_states,
        budget=budget,
        span_attrs={"places": len(net.places),
                    "net_transitions": len(net.transitions)},
        span_count_key="markings",
        overflow=lambda n: f"PEPA-net marking space exceeds {n} states",
    )
    space = NetStateSpace(net=net, markings=lts.states, arcs=lts.arcs, index=lts.index)
    if cache is not None and key is not None:
        cache.store(
            key, {"schema": CACHE_SCHEMA, "markings": space.markings, "arcs": space.arcs}
        )
        space.cache_key = key
    return space
