"""Static checks specific to PEPA nets.

Beyond the plain-PEPA checks (delegated per component), a net must
satisfy:

* **balance** — every net transition has as many input as output places
  ("we require that the net is balanced in the sense that, for each
  transition, the number of input cells is equal to the number of
  output cells");
* every place context contains **at least one cell** (enforced at
  :class:`PlaceDef` construction, revalidated here);
* initial cell contents are **type-correct**: each declared content
  belongs to the derivative set of its cell's family;
* firing action types and net-transition names do not collide with
  component constants in confusing ways (names are checked for
  definedness);
* every firing type is **performable by some token family** appearing
  in a cell of one of its input places — otherwise the transition is
  permanently dead (warning).
"""

from __future__ import annotations

from repro.exceptions import WellFormednessError
from repro.pepa.environment import Environment
from repro.pepa.syntax import Const, constants_of
from repro.pepa.wellformed import CheckReport
from repro.pepanets.syntax import PepaNet, derivative_set, find_cells

__all__ = ["check_net", "assert_net_well_formed"]


def check_net(net: PepaNet) -> CheckReport:
    """Run every net-level static check; returns a report."""
    report = CheckReport()
    env = net.environment
    _check_definitions(net, env, report)
    if report.errors:
        return report
    _check_balance(net, report)
    _check_initial_types(net, env, report)
    _check_firing_feasibility(net, env, report)
    return report


def assert_net_well_formed(net: PepaNet) -> None:
    """Raise WellFormednessError on the first failing check category."""
    check_net(net).raise_if_failed()


def _check_definitions(net: PepaNet, env: Environment, report: CheckReport) -> None:
    if not net.places:
        report.errors.append("a PEPA net needs at least one place")
        return
    referenced: set[str] = set()
    for place in net.places.values():
        referenced |= set(constants_of(place.template))
        for content in place.initial_contents:
            if content is not None:
                referenced |= set(constants_of(content))
    for name in sorted(referenced):
        if name not in env:
            report.errors.append(f"undefined component constant {name!r}")


def _check_balance(net: PepaNet, report: CheckReport) -> None:
    for spec in net.transitions.values():
        if not spec.is_balanced():
            report.errors.append(
                f"net transition {spec.name!r} is unbalanced: "
                f"{len(spec.inputs)} input place(s) vs {len(spec.outputs)} output place(s)"
            )


def _check_initial_types(net: PepaNet, env: Environment, report: CheckReport) -> None:
    for place in net.places.values():
        cells = find_cells(place.template)
        for (path, cell), content in zip(cells, place.initial_contents):
            if content is None:
                continue
            try:
                ds = derivative_set(cell.family, env)
            except WellFormednessError as exc:
                report.errors.append(str(exc))
                continue
            if content not in ds:
                report.errors.append(
                    f"place {place.name!r}: initial content {content} is not a "
                    f"derivative of cell family {cell.family!r}"
                )


def _check_firing_feasibility(net: PepaNet, env: Environment, report: CheckReport) -> None:
    for spec in net.transitions.values():
        feasible = False
        for place_name in spec.inputs:
            place = net.places[place_name]
            for _, cell in find_cells(place.template):
                try:
                    alphabet = env.alphabet(Const(cell.family))
                except WellFormednessError:
                    continue
                if spec.action in alphabet:
                    feasible = True
                    break
            if feasible:
                break
        if not feasible:
            report.warnings.append(
                f"net transition {spec.name!r}: no token family reachable at its "
                f"input place(s) ever performs firing type {spec.action!r}; "
                "the transition is permanently dead"
            )
