"""Visual and explicit-state exports for PEPA nets.

* :func:`net_structure_dot` — the net-level structure (places as
  circles showing their cell families and static components, net
  transitions as boxes labelled with their firing activity and rate),
  the picture the paper draws for its examples;
* :func:`marking_space_dot` — the full marking-level LTS with arcs
  labelled ``action, rate`` and firings highlighted;
* :func:`net_source` — the textual PEPA-net dialect of
  :mod:`repro.pepanets.parser`, closing the parse/print round trip;
* the CTMC-level exporters of :mod:`repro.ctmc.export` apply unchanged
  via :func:`repro.pepanets.measures.ctmc_of_net`.
"""

from __future__ import annotations

from repro.pepanets.semantics import NetStateSpace
from repro.pepanets.syntax import PepaNet, find_cells

__all__ = ["net_source", "net_structure_dot", "marking_space_dot"]


def net_source(net: PepaNet) -> str:
    """Render ``net`` in the textual dialect :func:`repro.pepanets.parser.parse_net`
    reads, such that parsing the result reproduces the same definitions.

    Rate constants were already resolved to numbers at parse time, so
    the output inlines numeric rates instead of re-deriving constant
    definitions; the net's structure (components, places, transitions)
    round-trips exactly.
    """
    return str(net) + "\n"


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def net_structure_dot(net: PepaNet) -> str:
    """Graphviz source for the net's place/transition structure."""
    lines = [
        "digraph pepanet {",
        "  rankdir=LR;",
        '  node [fontsize=10, fontname="Helvetica"];',
    ]
    initial = net.initial_marking()
    for place in net.places.values():
        cells = find_cells(initial.state_of(place.name))
        tokens = [str(c.content) for _, c in cells if c.content is not None]
        families = ", ".join(place.cell_families())
        label = f"{place.name}\\ncells: {families}"
        if tokens:
            label += "\\ntokens: " + ", ".join(tokens)
        lines.append(
            f'  p_{place.name} [shape=ellipse, label="{_escape(label)}"];'
        )
    for spec in net.transitions.values():
        label = f"{spec.name}\\n({spec.action}, {spec.rate})"
        if spec.priority != 1:
            label += f"\\npriority {spec.priority}"
        lines.append(
            f'  t_{spec.name} [shape=box, style=filled, fillcolor=lightgrey, '
            f'label="{_escape(label)}"];'
        )
        for place in spec.inputs:
            lines.append(f"  p_{place} -> t_{spec.name};")
        for place in spec.outputs:
            lines.append(f"  t_{spec.name} -> p_{place};")
    lines.append("}")
    return "\n".join(lines)


def marking_space_dot(space: NetStateSpace, *, max_states: int = 150) -> str:
    """Graphviz source for the marking-level LTS.

    Firing arcs (mobility events) are drawn bold; local activities
    plain.  Refuses unreasonably large spaces — render the CTMC with
    PRISM or inspect measures instead.
    """
    if space.size > max_states:
        raise ValueError(
            f"refusing to render {space.size} markings as dot (limit {max_states})"
        )
    firings = space.firing_actions
    lines = [
        "digraph markings {",
        "  rankdir=LR;",
        '  node [shape=box, fontsize=9, fontname="Helvetica"];',
    ]
    for i in range(space.size):
        label = _escape(space.state_label(i))
        extra = ", style=bold" if i == space.initial else ""
        lines.append(f'  m{i} [label="{label}"{extra}];')
    for arc in space.arcs:
        style = ' style=bold color="black"' if arc.action in firings else ' color="grey40"'
        lines.append(
            f'  m{arc.source} -> m{arc.target} '
            f'[label="{_escape(arc.action)}, {arc.rate:g}"{style}];'
        )
    lines.append("}")
    return "\n".join(lines)
