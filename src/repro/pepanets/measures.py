"""Measures over solved PEPA nets.

Adds to the plain-PEPA measures the mobility-specific questions:

* where is a token? — the steady-state probability that some cell at a
  given place is occupied (optionally by a given family);
* throughput of firings (movement events) vs local activities;
* per-place occupancy counts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.ctmcgen import ctmc_from_lts
from repro.core.explore import DEFAULT_MAX_STATES
from repro.ctmc import rewards
from repro.ctmc.chain import CTMC
from repro.ctmc.steady import steady_state
from repro.exceptions import SolverError
from repro.pepanets.semantics import NetStateSpace, explore_net
from repro.pepanets.syntax import NetMarking, PepaNet, find_cells

if TYPE_CHECKING:  # pragma: no cover — typing only, avoids a hard import
    from repro.resilience.budget import ExecutionBudget
    from repro.resilience.fallback import FallbackPolicy

__all__ = ["NetAnalysis", "analyse_net", "ctmc_of_net"]


def ctmc_of_net(
    net: PepaNet, *, max_states: int = DEFAULT_MAX_STATES,
    budget: "ExecutionBudget | None" = None,
) -> tuple[NetStateSpace, CTMC]:
    """Derive the marking space of ``net`` and its CTMC.

    ``budget`` is an optional cooperative
    :class:`~repro.resilience.budget.ExecutionBudget`.
    """
    space = explore_net(net, max_states=max_states, budget=budget)
    return space, ctmc_from_lts(space)


class NetAnalysis:
    """A solved PEPA net with measure accessors."""

    def __init__(self, net: PepaNet, space: NetStateSpace, chain: CTMC, pi: np.ndarray,
                 solver: str = "direct", diagnostics=None):
        self.net = net
        self.space = space
        self.chain = chain
        self.pi = pi
        self.solver = solver
        #: :class:`~repro.resilience.fallback.SolveDiagnostics` when the
        #: net was solved through a fallback policy, else ``None``.
        self.diagnostics = diagnostics

    @property
    def n_states(self) -> int:
        return self.chain.n_states

    def throughput(self, action: str) -> float:
        """Completions per time unit of a local activity *or* a firing
        type — firings are activities too, so the same measure applies
        (this is the number the reflector writes on ``<<move>>``
        activities)."""
        return rewards.throughput(self.chain, action, self.pi)

    def all_throughputs(self) -> dict[str, float]:
        """Throughput of every action (local and firing), keyed by name."""
        return rewards.all_throughputs(self.chain, self.pi)

    def firing_throughputs(self) -> dict[str, float]:
        """Throughput of the firing (mobility) actions only."""
        return {
            a: v
            for a, v in self.all_throughputs().items()
            if a in self.space.firing_actions
        }

    # ------------------------------------------------------------------
    # Mobility measures
    # ------------------------------------------------------------------
    def occupancy(self, place: str, family: str | None = None) -> float:
        """Expected number of occupied cells at ``place`` (of ``family``,
        if given) in steady state."""
        counts = np.fromiter(
            (self._count(m, place, family) for m in self.space.markings),
            dtype=float,
            count=self.space.size,
        )
        return float(self.pi @ counts)

    def probability_at(self, place: str, family: str | None = None) -> float:
        """Probability that at least one (matching) token is at ``place``."""
        mask = np.fromiter(
            (self._count(m, place, family) > 0 for m in self.space.markings),
            dtype=bool,
            count=self.space.size,
        )
        return float(self.pi[mask].sum())

    def location_distribution(self, family: str | None = None) -> dict[str, float]:
        """Expected occupied-cell count per place — the steady-state
        'where do tokens live' picture of the mobile system."""
        return {
            place: self.occupancy(place, family) for place in self.net.place_order()
        }

    def probability_of_local_state(self, name: str) -> float:
        """Probability that ``name`` appears as a whole identifier in the
        marking (some component is in that local state)."""
        import re

        pattern = rf"\b{re.escape(name)}\b"
        return rewards.probability_by_label(self.chain, pattern, self.pi, regex=True)

    # ------------------------------------------------------------------
    # Time-dependent mobility measures
    # ------------------------------------------------------------------
    def transient_probability_at(
        self, place: str, t: float, family: str | None = None
    ) -> float:
        """P(at least one matching token is at ``place`` at time ``t``),
        from the net's initial marking — e.g. "has the PDA session
        reached transmitter_2 within 10 seconds?"."""
        from repro.ctmc.transient import transient_distribution

        dist = transient_distribution(self.chain, t, self.chain.initial)
        return float(
            sum(
                p
                for p, m in zip(dist, self.space.markings)
                if self._count(m, place, family) > 0
            )
        )

    def mean_time_to_reach(self, place: str, family: str | None = None) -> float:
        """Expected time until a matching token first occupies
        ``place``, from the initial marking."""
        from repro.ctmc.passage import mean_passage_time

        targets = [
            i
            for i, m in enumerate(self.space.markings)
            if self._count(m, place, family) > 0
        ]
        if not targets:
            raise SolverError(
                f"no reachable marking puts a matching token at {place!r}"
            )
        return mean_passage_time(self.chain, self.chain.initial, targets)

    @staticmethod
    def _count(marking: NetMarking, place: str, family: str | None) -> int:
        expr = marking.state_of(place)
        n = 0
        for _, cell in find_cells(expr):
            if cell.content is not None and (family is None or cell.family == family):
                n += 1
        return n


def analyse_net(
    net: PepaNet,
    *,
    solver: str = "direct",
    max_states: int = DEFAULT_MAX_STATES,
    reducible: str = "bscc",
    budget: "ExecutionBudget | None" = None,
    policy: "FallbackPolicy | str | None" = None,
) -> NetAnalysis:
    """Derive and solve a PEPA net; returns a :class:`NetAnalysis`.

    Mobility models routinely have a transient start-up phase (a token
    transmitted exactly once never comes back), so the reducible policy
    defaults to ``"bscc"``: probability mass settles on the unique
    recurrent class.  Pass ``reducible="error"`` to insist on a fully
    irreducible marking space.

    ``budget`` bounds the marking-space derivation cooperatively; a
    non-``None`` ``policy`` solves through the resilient fallback chain
    (see :func:`repro.pepa.measures.analyse`).
    """
    space, chain = ctmc_of_net(net, max_states=max_states, budget=budget)
    diagnostics = None
    if policy is not None:
        from repro.resilience.fallback import solve_with_fallback

        pi, diagnostics = solve_with_fallback(chain, policy, reducible=reducible)
        solver = diagnostics.method or solver
    else:
        pi = steady_state(chain, method=solver, reducible=reducible)
    return NetAnalysis(net, space, chain, pi, solver=solver, diagnostics=diagnostics)
