"""repro — a reproduction of "A design environment for mobile
applications" (Gilmore, Haenel, Hillston, Tenzer; IPPS 2006).

The package implements the complete Choreographer tool chain:

* :mod:`repro.pepa` — the PEPA stochastic process algebra;
* :mod:`repro.ctmc` — numerical CTMC solution and measures;
* :mod:`repro.petri` — classical/stochastic Petri nets (baseline);
* :mod:`repro.pepanets` — the PEPA nets formalism (Definitions 1–6);
* :mod:`repro.uml` — UML activity/state diagrams, mobility notation,
  XMI interchange, Poseidon pre/post-processing, metadata repository;
* :mod:`repro.extract` — UML → PEPA net compilation (Section 3);
* :mod:`repro.reflect` — results → UML annotation;
* :mod:`repro.choreographer` — the integrated design platform;
* :mod:`repro.sim` — stochastic simulation (complementary analysis);
* :mod:`repro.workloads` — every model from the paper, ready to run.

Quickstart::

    from repro.choreographer import Choreographer
    from repro.workloads.pda import build_pda_activity_diagram, PDA_RATES

    platform = Choreographer()
    outcome = platform.analyse_activity_diagram(
        build_pda_activity_diagram(), rates=PDA_RATES)
    print(outcome.report())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
