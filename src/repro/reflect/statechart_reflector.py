"""Reflecting steady-state probabilities onto state diagrams.

"The purpose of a state diagram is to expose the states of interest
... and here a different performance measure is more appropriate,
namely the steady-state probabilities of the states."  Each simple
state receives a ``steadyStateProbability`` tagged value: the total
probability of the global states in which the component currently
occupies that local state.
"""

from __future__ import annotations

from repro.exceptions import ReflectionError
from repro.extract.statechart2pepa import StatechartExtraction
from repro.pepa.measures import ModelAnalysis
from repro.reflect.results import ResultTable
from repro.uml.model import TAG_PROBABILITY
from repro.uml.statechart import StateMachine

__all__ = ["results_of_model_analysis", "reflect_state_probabilities"]


def results_of_model_analysis(
    extractions: list[StatechartExtraction], analysis: ModelAnalysis
) -> ResultTable:
    """One probability row per simple state of every machine."""
    table = ResultTable()
    for extraction in extractions:
        for state in extraction.machine.simple_states():
            constant = extraction.state_constants[state.xmi_id]
            probability = analysis.probability_of_local_state(constant)
            table.add("state", constant, "probability", probability)
    for action, value in analysis.all_throughputs().items():
        table.add("activity", action, "throughput", value)
    return table


def reflect_state_probabilities(
    extraction: StatechartExtraction,
    table: ResultTable,
    *,
    digits: int = 6,
) -> StateMachine:
    """Annotate the machine's states in place; returns it for chaining."""
    machine = extraction.machine
    for state in machine.simple_states():
        constant = extraction.state_constants[state.xmi_id]
        try:
            value = table.value("state", constant, "probability")
        except ReflectionError:
            raise ReflectionError(
                f"result table has no probability for state {state.name!r} "
                f"(PEPA constant {constant!r})"
            ) from None
        state.set_tag(TAG_PROBABILITY, f"{value:.{digits}g}")
    return machine
