"""Reflectors: analysis results → annotated UML models (paper S8)."""

from repro.reflect.activity_reflector import (
    reflect_activity_results,
    results_of_net_analysis,
)
from repro.reflect.results import ResultRow, ResultTable
from repro.reflect.statechart_reflector import (
    reflect_state_probabilities,
    results_of_model_analysis,
)

__all__ = [
    "ResultTable",
    "ResultRow",
    "results_of_net_analysis",
    "reflect_activity_results",
    "results_of_model_analysis",
    "reflect_state_probabilities",
]
