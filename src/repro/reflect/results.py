"""The analysis result table (the ``.xmltable`` of Figure 4).

The PEPA Workbench for PEPA nets hands its results to the Reflector as
an XML table; we reproduce the shape: rows of (kind, subject, measure,
value), serialisable to a small XML dialect and parseable back, so the
reflection step can run from a file exactly as the original pipeline
did.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass
from pathlib import Path

from repro.exceptions import ReflectionError

__all__ = ["ResultRow", "ResultTable"]

_KINDS = ("activity", "state", "firing", "place")
_MEASURES = ("throughput", "probability", "occupancy")


@dataclass(frozen=True)
class ResultRow:
    """One measurement: e.g. (activity, 'download file', throughput, 0.42)."""

    kind: str
    subject: str
    measure: str
    value: float

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ReflectionError(f"unknown result kind {self.kind!r}")
        if self.measure not in _MEASURES:
            raise ReflectionError(f"unknown measure {self.measure!r}")


class ResultTable:
    """An ordered collection of result rows with lookup helpers."""

    def __init__(self, rows: list[ResultRow] | None = None):
        self.rows: list[ResultRow] = list(rows or [])

    def add(self, kind: str, subject: str, measure: str, value: float) -> ResultRow:
        """Append a row; kind and measure are validated."""
        row = ResultRow(kind, subject, measure, float(value))
        self.rows.append(row)
        return row

    def value(self, kind: str, subject: str, measure: str) -> float:
        """Look up one measurement; raises when absent."""
        for row in self.rows:
            if (row.kind, row.subject, row.measure) == (kind, subject, measure):
                return row.value
        raise ReflectionError(
            f"no {measure} result for {kind} {subject!r} in the table"
        )

    def subjects(self, kind: str) -> list[str]:
        """The distinct subjects of one kind, in insertion order."""
        seen: list[str] = []
        for row in self.rows:
            if row.kind == kind and row.subject not in seen:
                seen.append(row.subject)
        return seen

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    # ------------------------------------------------------------------
    # XML round trip
    # ------------------------------------------------------------------
    def to_xml(self) -> str:
        """Serialise the table as the .xmltable XML dialect."""
        root = ET.Element("resultTable")
        for row in self.rows:
            ET.SubElement(
                root,
                "result",
                {
                    "kind": row.kind,
                    "subject": row.subject,
                    "measure": row.measure,
                    "value": f"{row.value:.12g}",
                },
            )
        ET.indent(root)
        return ET.tostring(root, encoding="unicode", xml_declaration=True)

    @classmethod
    def from_xml(cls, text: str) -> "ResultTable":
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise ReflectionError(f"result table is not well-formed XML: {exc}") from exc
        if root.tag != "resultTable":
            raise ReflectionError(f"expected <resultTable>, got <{root.tag}>")
        table = cls()
        for el in root:
            if el.tag != "result":
                raise ReflectionError(f"unexpected element <{el.tag}> in result table")
            try:
                table.add(
                    el.attrib["kind"], el.attrib["subject"], el.attrib["measure"],
                    float(el.attrib["value"]),
                )
            except KeyError as exc:
                raise ReflectionError(f"result row missing attribute {exc}") from exc
        return table

    def write(self, path: str | Path) -> Path:
        """Write the XML form to a file and return the path."""
        path = Path(path)
        path.write_text(self.to_xml())
        return path

    @classmethod
    def read(cls, path: str | Path) -> "ResultTable":
        return cls.from_xml(Path(path).read_text())
