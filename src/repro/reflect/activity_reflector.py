"""Reflecting PEPA-net results onto activity diagrams (Figures 6/7).

"With an activity diagram the modelling focus is on activities, and so
the performance results which are written back to the diagram also
centre on activities, recording throughput."  Every action state of the
diagram — moves included, since firings are activities too — receives a
``throughput`` tagged value; places receive nothing (they are
locations, not model elements of the diagram).
"""

from __future__ import annotations

from repro.exceptions import ReflectionError
from repro.extract.activity2pepanet import ExtractionResult
from repro.pepanets.measures import NetAnalysis
from repro.reflect.results import ResultTable
from repro.uml.activity import ActivityGraph
from repro.uml.model import TAG_THROUGHPUT

__all__ = ["results_of_net_analysis", "reflect_activity_results"]


def results_of_net_analysis(
    extraction: ExtractionResult, analysis: NetAnalysis
) -> ResultTable:
    """Build the result table the reflector consumes: one throughput row
    per UML activity (and per synthetic reset firing), plus steady-state
    occupancy per place — useful diagnostics even though only activity
    rows are written back to the diagram."""
    table = ResultTable()
    seen_actions: set[str] = set()
    for node in extraction.graph.actions():
        action = extraction.pepa_action_of(node)
        if action in seen_actions:
            continue
        seen_actions.add(action)
        kind = "firing" if node.is_move else "activity"
        table.add(kind, action, "throughput", analysis.throughput(action))
    for action in extraction.reset_actions:
        table.add("firing", action, "throughput", analysis.throughput(action))
    for place, occupancy in analysis.location_distribution().items():
        table.add("place", place, "occupancy", occupancy)
    return table


def reflect_activity_results(
    extraction: ExtractionResult,
    table: ResultTable,
    *,
    digits: int = 6,
) -> ActivityGraph:
    """Annotate the diagram in place: every action state gets a
    ``throughput`` tagged value.  Returns the same graph for chaining.

    Raises :class:`ReflectionError` if the table lacks a row for some
    activity — a symptom of reflecting against the wrong model.
    """
    graph = extraction.graph
    for node in graph.actions():
        action = extraction.pepa_action_of(node)
        kind = "firing" if node.is_move else "activity"
        try:
            value = table.value(kind, action, "throughput")
        except ReflectionError:
            raise ReflectionError(
                f"result table has no throughput for {kind} {action!r} "
                f"(UML activity {node.name!r})"
            ) from None
        node.set_tag(TAG_THROUGHPUT, f"{value:.{digits}g}")
    return graph
