"""Textual and visual export of PEPA models and derivation graphs.

The counterpart of :mod:`repro.pepanets.export` for plain PEPA:
:func:`model_source` renders a model back into the textual dialect
(closing the parse/print round trip and giving the derivation cache a
canonical content identity), and :func:`derivation_graph_dot` draws the
labelled multi-transition system as Graphviz dot, with activities on
the arcs — the picture PEPA papers draw for small components.
"""

from __future__ import annotations

from repro.pepa.environment import PepaModel
from repro.pepa.statespace import StateSpace

__all__ = ["model_source", "derivation_graph_dot"]


def model_source(model: PepaModel) -> str:
    """Render ``model`` in the textual dialect
    :func:`repro.pepa.parser.parse_model` reads.

    Every rate-constant binding is emitted (with full ``repr``
    precision) ahead of the component definitions and the system
    equation, so two models that differ *only* in a rate value render
    differently — the property :class:`repro.core.keys.DerivationKey`
    needs to make this text a sound cache identity.
    """
    env = model.environment
    lines = [f"{name} = {value!r};" for name, value in env.rates.items()]
    lines.extend(f"{name} = {body};" for name, body in env.components.items())
    lines.append(str(model.system))
    return "\n".join(lines) + "\n"


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def derivation_graph_dot(space: StateSpace, *, max_states: int = 150) -> str:
    """Graphviz source for the derivation graph of a PEPA model."""
    if space.size > max_states:
        raise ValueError(
            f"refusing to render {space.size} states as dot (limit {max_states})"
        )
    lines = [
        "digraph pepa {",
        "  rankdir=LR;",
        '  node [shape=box, style=rounded, fontsize=10, fontname="Helvetica"];',
    ]
    for i in range(space.size):
        label = _escape(space.state_label(i))
        extra = ", penwidth=2" if i == space.initial else ""
        lines.append(f'  s{i} [label="{label}"{extra}];')
    for arc in space.arcs:
        lines.append(
            f'  s{arc.source} -> s{arc.target} '
            f'[label="({_escape(arc.action)}, {arc.rate:g})"];'
        )
    lines.append("}")
    return "\n".join(lines)
