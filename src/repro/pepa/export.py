"""Visual export of PEPA derivation graphs.

The counterpart of :mod:`repro.pepanets.export` for plain PEPA: the
labelled multi-transition system as Graphviz dot, with activities on
the arcs — the picture PEPA papers draw for small components.
"""

from __future__ import annotations

from repro.pepa.statespace import StateSpace

__all__ = ["derivation_graph_dot"]


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def derivation_graph_dot(space: StateSpace, *, max_states: int = 150) -> str:
    """Graphviz source for the derivation graph of a PEPA model."""
    if space.size > max_states:
        raise ValueError(
            f"refusing to render {space.size} states as dot (limit {max_states})"
        )
    lines = [
        "digraph pepa {",
        "  rankdir=LR;",
        '  node [shape=box, style=rounded, fontsize=10, fontname="Helvetica"];',
    ]
    for i in range(space.size):
        label = _escape(space.state_label(i))
        extra = ", penwidth=2" if i == space.initial else ""
        lines.append(f'  s{i} [label="{label}"{extra}];')
    for arc in space.arcs:
        lines.append(
            f'  s{arc.source} -> s{arc.target} '
            f'[label="({_escape(arc.action)}, {arc.rate:g})"];'
        )
    lines.append("}")
    return "\n".join(lines)
