"""Recursive-descent parser for textual PEPA models.

Accepted surface syntax (PEPA Workbench flavour)::

    // rate constants (lower-case initial), any order, may reference
    // each other acyclically
    r_open  = 2.0;
    r_read  = 10.0;
    slow    = r_read / 100;

    // component constants (upper-case initial)
    File      = (openread, r_open).InStream + (openwrite, r_open).OutStream;
    InStream  = (read, r_read).InStream + (close, 1.0).File;
    OutStream = (write, 4.0).OutStream + (close, 1.0).File;

    // the final bare expression is the system equation
    File <openread, openwrite, read, write, close> FileReader

Cooperation is written ``P <a, b> Q`` (``P || Q`` for the empty set,
``P <*> Q`` for the shared-alphabet wildcard), hiding ``P/{a, b}``,
passive rates ``T`` or ``infty`` (optionally weighted, ``2*T``), and
cells ``Family[_]`` / ``Family[Component]`` per Figure 3 of the paper.

The parser makes two passes over the statement list: rate constants are
resolved first (topologically, so definition order is free), then
component bodies are parsed with all rates available.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import PepaSyntaxError, RateError, WellFormednessError
from repro.obs import get_tracer
from repro.pepa.environment import Environment, PepaModel
from repro.pepa.lexer import Token, TokenStream, tokenize
from repro.pepa.rates import ActiveRate, PassiveRate, Rate
from repro.pepa.syntax import (
    WILDCARD_SET,
    Cell,
    Choice,
    Const,
    Cooperation,
    Expression,
    Hiding,
    Prefix,
    Sequential,
)
from repro.utils.ordering import topological_order

__all__ = ["parse_model", "parse_expression", "parse_rate", "PASSIVE_NAMES"]

#: Identifiers that denote the passive rate in rate position.
PASSIVE_NAMES = frozenset({"T", "infty", "top"})


# ----------------------------------------------------------------------
# Rate expressions (symbolic, resolved against the rate environment)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Num:
    value: float


@dataclass(frozen=True)
class _Ref:
    name: str
    token: Token


@dataclass(frozen=True)
class _Passive:
    pass


@dataclass(frozen=True)
class _BinOp:
    op: str
    left: object
    right: object


@dataclass(frozen=True)
class _Neg:
    operand: object


def _rate_refs(expr: object) -> frozenset[str]:
    if isinstance(expr, _Ref):
        return frozenset({expr.name})
    if isinstance(expr, _BinOp):
        return _rate_refs(expr.left) | _rate_refs(expr.right)
    if isinstance(expr, _Neg):
        return _rate_refs(expr.operand)
    return frozenset()


def _eval_rate_expr(expr: object, rates: dict[str, float]) -> float | _Passive | tuple:
    """Evaluate to a float, or ('passive', weight) for passive results."""
    if isinstance(expr, _Num):
        return expr.value
    if isinstance(expr, _Passive):
        return ("passive", 1.0)
    if isinstance(expr, _Ref):
        if expr.name not in rates:
            raise PepaSyntaxError(
                f"undefined rate constant {expr.name!r}", expr.token.line, expr.token.column
            )
        return rates[expr.name]
    if isinstance(expr, _Neg):
        v = _eval_rate_expr(expr.operand, rates)
        if isinstance(v, tuple):
            raise RateError("cannot negate a passive rate")
        return -v
    if isinstance(expr, _BinOp):
        lv = _eval_rate_expr(expr.left, rates)
        rv = _eval_rate_expr(expr.right, rates)
        lpass, rpass = isinstance(lv, tuple), isinstance(rv, tuple)
        if lpass or rpass:
            # The only legal passive arithmetic in a rate position is a
            # scalar weight: w*T or T*w.
            if expr.op == "*" and lpass != rpass:
                weight = rv if lpass else lv
                base = lv if lpass else rv
                assert isinstance(base, tuple)
                return ("passive", base[1] * float(weight))  # type: ignore[arg-type]
            raise RateError(f"illegal passive-rate arithmetic: operator {expr.op!r}")
        assert isinstance(lv, float) and isinstance(rv, float)
        if expr.op == "+":
            return lv + rv
        if expr.op == "-":
            return lv - rv
        if expr.op == "*":
            return lv * rv
        if expr.op == "/":
            if rv == 0.0:
                raise RateError("division by zero in rate expression")
            return lv / rv
        raise RateError(f"unknown rate operator {expr.op!r}")
    raise TypeError(f"not a rate expression: {expr!r}")


def _to_rate(value: float | tuple) -> Rate:
    if isinstance(value, tuple):
        return PassiveRate(value[1])
    return ActiveRate(value)


# ----------------------------------------------------------------------
# The parser proper
# ----------------------------------------------------------------------
class _Parser:
    def __init__(self, stream: TokenStream, rates: dict[str, float]):
        self.stream = stream
        self.rates = rates

    # -- expression grammar ------------------------------------------
    def parse_composite(self) -> Expression:
        left = self.parse_choice()
        while self.stream.at("LANGLE", "PAR"):
            actions = self._parse_coop_set()
            right = self.parse_choice()
            left = Cooperation(left, right, actions)
        return left

    def _parse_coop_set(self) -> frozenset[str]:
        if self.stream.at("PAR"):
            self.stream.advance()
            return frozenset()
        self.stream.expect("LANGLE")
        if self.stream.at("STAR"):
            self.stream.advance()
            self.stream.expect("RANGLE")
            return WILDCARD_SET
        names: set[str] = set()
        while not self.stream.at("RANGLE"):
            tok = self.stream.expect("IDENT", "action type")
            names.add(tok.text)
            if self.stream.at("COMMA"):
                self.stream.advance()
        self.stream.expect("RANGLE")
        return frozenset(names)

    def parse_choice(self) -> Expression:
        left = self.parse_hiding()
        while self.stream.at("PLUS"):
            plus = self.stream.advance()
            right = self.parse_hiding()
            if not isinstance(left, Sequential) or not isinstance(right, Sequential):
                raise PepaSyntaxError(
                    "choice (+) is only defined between sequential components",
                    plus.line,
                    plus.column,
                )
            left = Choice(left, right)
        return left

    def parse_hiding(self) -> Expression:
        expr = self.parse_postfix()
        while self.stream.at("SLASH"):
            self.stream.advance()
            self.stream.expect("LBRACE")
            names: set[str] = set()
            while not self.stream.at("RBRACE"):
                tok = self.stream.expect("IDENT", "action type")
                names.add(tok.text)
                if self.stream.at("COMMA"):
                    self.stream.advance()
            self.stream.expect("RBRACE")
            expr = Hiding(expr, frozenset(names))
        return expr

    def parse_postfix(self) -> Expression:
        expr = self.parse_primary()
        if isinstance(expr, Const) and self.stream.at("LBRACK"):
            self.stream.advance()
            content: Sequential | None
            if self.stream.at("UNDERSCORE"):
                self.stream.advance()
                content = None
            elif self.stream.at("RBRACK"):
                content = None
            else:
                inner = self.parse_choice()
                if not isinstance(inner, Sequential):
                    raise self.stream.error("cell contents must be a sequential component")
                content = inner
            self.stream.expect("RBRACK")
            return Cell(expr.name, content)
        return expr

    def parse_primary(self) -> Expression:
        if self.stream.at("IDENT"):
            tok = self.stream.advance()
            if not tok.text[0].isupper():
                raise PepaSyntaxError(
                    f"component constants begin upper-case, got {tok.text!r}",
                    tok.line,
                    tok.column,
                )
            return Const(tok.text)
        if self.stream.at("LPAREN"):
            # '(' IDENT ',' ...  is a prefix when IDENT is lower-case;
            # anything else is a parenthesised expression.
            if (
                self.stream.peek(1).kind == "IDENT"
                and not self.stream.peek(1).text[0].isupper()
                and self.stream.peek(2).kind == "COMMA"
            ):
                return self.parse_prefix()
            self.stream.advance()
            inner = self.parse_composite()
            self.stream.expect("RPAREN")
            return inner
        raise self.stream.error("expected a component expression")

    def parse_prefix(self) -> Prefix:
        self.stream.expect("LPAREN")
        action_tok = self.stream.expect("IDENT", "action type")
        self.stream.expect("COMMA")
        rate = self.parse_rate_value()
        self.stream.expect("RPAREN")
        self.stream.expect("DOT")
        cont = self.parse_seq_factor()
        return Prefix(action_tok.text, rate, cont)

    def parse_seq_factor(self) -> Sequential:
        """A prefix continuation: a constant, another prefix, or a
        parenthesised sequential expression."""
        if self.stream.at("IDENT"):
            tok = self.stream.advance()
            if not tok.text[0].isupper():
                raise PepaSyntaxError(
                    f"component constants begin upper-case, got {tok.text!r}",
                    tok.line,
                    tok.column,
                )
            return Const(tok.text)
        if self.stream.at("LPAREN"):
            if (
                self.stream.peek(1).kind == "IDENT"
                and not self.stream.peek(1).text[0].isupper()
                and self.stream.peek(2).kind == "COMMA"
            ):
                return self.parse_prefix()
            self.stream.advance()
            inner = self.parse_choice()
            self.stream.expect("RPAREN")
            if not isinstance(inner, Sequential):
                raise self.stream.error("prefix continuation must be sequential")
            return inner
        raise self.stream.error("expected a sequential component after '.'")

    # -- rates ---------------------------------------------------------
    def parse_rate_value(self) -> Rate:
        expr = self.parse_rate_expr()
        return _to_rate(_eval_rate_expr(expr, self.rates))

    def parse_rate_expr(self) -> object:
        left = self.parse_rate_term()
        while self.stream.at("PLUS", "MINUS"):
            op = self.stream.advance().text
            right = self.parse_rate_term()
            left = _BinOp(op, left, right)
        return left

    def parse_rate_term(self) -> object:
        left = self.parse_rate_factor()
        while self.stream.at("STAR", "SLASH"):
            op = self.stream.advance().text
            right = self.parse_rate_factor()
            left = _BinOp(op, left, right)
        return left

    def parse_rate_factor(self) -> object:
        if self.stream.at("NUMBER"):
            return _Num(float(self.stream.advance().text))
        if self.stream.at("MINUS"):
            self.stream.advance()
            return _Neg(self.parse_rate_factor())
        if self.stream.at("IDENT"):
            tok = self.stream.advance()
            if tok.text in PASSIVE_NAMES:
                return _Passive()
            if tok.text[0].isupper():
                raise PepaSyntaxError(
                    f"rate constants begin lower-case, got {tok.text!r}", tok.line, tok.column
                )
            return _Ref(tok.text, tok)
        if self.stream.at("LPAREN"):
            self.stream.advance()
            inner = self.parse_rate_expr()
            self.stream.expect("RPAREN")
            return inner
        raise self.stream.error("expected a rate expression")


# ----------------------------------------------------------------------
# Statement splitting + two-phase model assembly
# ----------------------------------------------------------------------
def _split_statements(tokens: list[Token]) -> list[list[Token]]:
    """Split the token list into ';'-terminated statements.  A trailing
    statement without ';' is allowed (the system equation)."""
    statements: list[list[Token]] = []
    current: list[Token] = []
    for tok in tokens:
        if tok.kind == "EOF":
            break
        if tok.kind == "SEMI":
            if current:
                statements.append(current)
                current = []
            continue
        current.append(tok)
    if current:
        statements.append(current)
    return statements


def _is_definition(stmt: list[Token]) -> bool:
    return len(stmt) >= 2 and stmt[0].kind == "IDENT" and stmt[1].kind == "DEF"


def parse_model(source: str) -> PepaModel:
    """Parse a complete PEPA model (definitions + system equation)."""
    with get_tracer().span("pepa.parse", source_chars=len(source)) as sp:
        model = _parse_model(source)
        sp.set(components=len(model.environment.components),
               rates=len(model.environment.rates))
    return model


def _parse_model(source: str) -> PepaModel:
    tokens = tokenize(source)
    statements = _split_statements(tokens)
    if not statements:
        raise PepaSyntaxError("empty model")

    rate_stmts: list[list[Token]] = []
    comp_stmts: list[list[Token]] = []
    system_stmts: list[list[Token]] = []
    for stmt in statements:
        if _is_definition(stmt):
            if stmt[0].text[0].isupper():
                comp_stmts.append(stmt)
            else:
                rate_stmts.append(stmt)
        else:
            system_stmts.append(stmt)
    if len(system_stmts) != 1:
        raise PepaSyntaxError(
            f"a model needs exactly one system equation, found {len(system_stmts)}"
        )

    # Phase 1: resolve rate constants topologically so order is free.
    rate_exprs: dict[str, object] = {}
    rate_tokens: dict[str, Token] = {}
    for stmt in rate_stmts:
        name = stmt[0].text
        if name in rate_exprs:
            raise PepaSyntaxError(f"rate constant {name!r} defined twice", stmt[0].line, stmt[0].column)
        stream = TokenStream(stmt[2:] + [Token("EOF", "", stmt[-1].line, stmt[-1].column)])
        parser = _Parser(stream, {})
        expr = parser.parse_rate_expr()
        if not stream.at("EOF"):
            raise stream.error("unexpected trailing tokens in rate definition")
        rate_exprs[name] = expr
        rate_tokens[name] = stmt[0]

    edges = {
        name: [ref for ref in _rate_refs(expr) if ref in rate_exprs]
        for name, expr in rate_exprs.items()
    }
    try:
        # topological_order orders dependencies *after* dependents given
        # successor edges name -> refs; evaluate in reverse.
        order = topological_order(rate_exprs.keys(), edges)
    except Exception as exc:  # cycle
        raise WellFormednessError(f"cyclic rate definitions: {exc}") from exc

    rates: dict[str, float] = {}
    for name in reversed(order):
        value = _eval_rate_expr(rate_exprs[name], rates)
        if isinstance(value, tuple):
            raise WellFormednessError(
                f"rate constant {name!r} resolves to a passive rate; write T inline instead"
            )
        rates[name] = value

    # Phase 2: component definitions and the system equation.
    env = Environment(rates=dict(rates))
    for stmt in comp_stmts:
        name = stmt[0].text
        stream = TokenStream(stmt[2:] + [Token("EOF", "", stmt[-1].line, stmt[-1].column)])
        parser = _Parser(stream, rates)
        body = parser.parse_composite()
        if not stream.at("EOF"):
            raise stream.error(f"unexpected trailing tokens in definition of {name!r}")
        env.define(name, body)

    stmt = system_stmts[0]
    stream = TokenStream(stmt + [Token("EOF", "", stmt[-1].line, stmt[-1].column)])
    parser = _Parser(stream, rates)
    system = parser.parse_composite()
    if not stream.at("EOF"):
        raise stream.error("unexpected trailing tokens after the system equation")

    return PepaModel(env, system)


def parse_expression(source: str, rates: dict[str, float] | None = None) -> Expression:
    """Parse a single PEPA expression (no definitions)."""
    stream = TokenStream(tokenize(source))
    parser = _Parser(stream, dict(rates or {}))
    expr = parser.parse_composite()
    if not stream.at("EOF"):
        raise stream.error("unexpected trailing tokens")
    return expr


def parse_rate(source: str, rates: dict[str, float] | None = None) -> Rate:
    """Parse and evaluate a single rate expression."""
    stream = TokenStream(tokenize(source))
    parser = _Parser(stream, dict(rates or {}))
    rate = parser.parse_rate_value()
    if not stream.at("EOF"):
        raise stream.error("unexpected trailing tokens")
    return rate
