"""From a PEPA state space to a CTMC.

Each distinct derivative is a CTMC state; parallel activities between
the same pair of derivatives race, so their rates sum.  The per-action
outgoing-rate vectors needed for throughput are collected here too,
*including* self-loop activities, which do not affect the generator but
do count as completed work.
"""

from __future__ import annotations

from repro.ctmc.chain import CTMC, build_ctmc
from repro.obs import get_tracer
from repro.pepa.environment import PepaModel
from repro.pepa.statespace import DEFAULT_MAX_STATES, StateSpace, derive

__all__ = ["ctmc_from_statespace", "ctmc_of_model"]


def ctmc_from_statespace(space: StateSpace) -> CTMC:
    """Build the CTMC (generator + labels + action-rate vectors)."""
    with get_tracer().span("ctmc.assemble", states=space.size,
                           arcs=len(space.arcs)) as sp:
        transitions = [(arc.source, arc.action, arc.rate, arc.target) for arc in space.arcs]
        labels = [space.state_label(i) for i in range(space.size)]
        chain = build_ctmc(space.size, transitions, labels=labels, initial=space.initial)
        sp.set(nnz=int(chain.Q.nnz))
    return chain


def ctmc_of_model(model: PepaModel, *, max_states: int = DEFAULT_MAX_STATES) -> tuple[StateSpace, CTMC]:
    """Derive the state space of ``model`` and its CTMC in one call."""
    space = derive(model, max_states=max_states)
    return space, ctmc_from_statespace(space)
