"""From a PEPA state space to a CTMC.

Each distinct derivative is a CTMC state; parallel activities between
the same pair of derivatives race, so their rates sum.  The per-action
outgoing-rate vectors needed for throughput are collected here too,
*including* self-loop activities, which do not affect the generator but
do count as completed work.
"""

from __future__ import annotations

from repro.core.ctmcgen import ctmc_from_lts
from repro.core.explore import DEFAULT_MAX_STATES
from repro.ctmc.chain import CTMC
from repro.pepa.environment import PepaModel
from repro.pepa.statespace import StateSpace, derive

__all__ = ["ctmc_from_statespace", "ctmc_of_model"]


def ctmc_from_statespace(space: StateSpace) -> CTMC:
    """Build the CTMC (generator + labels + action-rate vectors)."""
    return ctmc_from_lts(space)


def ctmc_of_model(model: PepaModel, *, max_states: int = DEFAULT_MAX_STATES) -> tuple[StateSpace, CTMC]:
    """Derive the state space of ``model`` and its CTMC in one call."""
    space = derive(model, max_states=max_states)
    return space, ctmc_from_statespace(space)
