"""From a PEPA state space to a CTMC.

Each distinct derivative is a CTMC state; parallel activities between
the same pair of derivatives race, so their rates sum.  The per-action
outgoing-rate vectors needed for throughput are collected here too,
*including* self-loop activities, which do not affect the generator but
do count as completed work.

PEPA is the one formalism with a compositional system equation, so it
is also the one route that can ask for the matrix-free Kronecker
backend: pass ``generator="descriptor"`` (or ``"auto"``) together with
the model's environment and the chain is built by
:func:`repro.pepa.kronecker.descriptor_chain` instead of materialising
the global CSR matrix.
"""

from __future__ import annotations

from repro.core.ctmcgen import ctmc_from_lts
from repro.core.explore import DEFAULT_MAX_STATES
from repro.ctmc.chain import CTMC
from repro.exceptions import SolverError
from repro.pepa.environment import Environment, PepaModel
from repro.pepa.statespace import StateSpace, derive

__all__ = ["ctmc_from_statespace", "ctmc_of_model"]


def ctmc_from_statespace(
    space: StateSpace,
    *,
    generator: str = "csr",
    environment: Environment | None = None,
) -> CTMC:
    """Build the CTMC (generator + labels + action-rate vectors)."""
    builder = None
    if generator in ("descriptor", "auto"):
        if environment is None:
            if generator == "descriptor":
                raise SolverError(
                    "generator='descriptor' needs the model environment to "
                    "decompose the system equation"
                )
        else:
            from repro.pepa.kronecker import descriptor_chain

            def builder(lts):
                return descriptor_chain(lts, environment)

    return ctmc_from_lts(space, generator=generator, descriptor_builder=builder)


def ctmc_of_model(
    model: PepaModel,
    *,
    max_states: int = DEFAULT_MAX_STATES,
    generator: str = "csr",
) -> tuple[StateSpace, CTMC]:
    """Derive the state space of ``model`` and its CTMC in one call."""
    space = derive(model, max_states=max_states)
    return space, ctmc_from_statespace(
        space, generator=generator, environment=model.environment
    )
