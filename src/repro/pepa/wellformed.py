"""Static well-formedness checks for PEPA models.

Run before state-space derivation to turn latent model bugs into clear
diagnostics:

* every referenced constant is defined;
* no unguarded recursion (a constant must not reach itself without
  passing through at least one prefix — ``X = X + (a, r).Y`` is
  rejected);
* choice branches do not mix active and passive activities of one
  action type (PEPA's apparent-rate restriction);
* cooperation sets only mention action types both partners can perform
  (a cooperation on an action foreign to one side blocks forever —
  legal but almost always a modelling error, reported as a warning);
* sequential positions (prefix continuations, cell contents, choice
  operands) hold genuinely sequential components after constant
  resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import RateError, WellFormednessError
from repro.pepa.environment import Environment, PepaModel
from repro.pepa.semantics import apparent_rate
from repro.pepa.syntax import (
    Cell,
    Choice,
    Const,
    Cooperation,
    Expression,
    Hiding,
    Prefix,
    Sequential,
    action_set,
    constants_of,
)

__all__ = ["CheckReport", "check_model", "assert_well_formed"]


@dataclass
class CheckReport:
    """Outcome of the static checks: hard errors and advisory warnings."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_if_failed(self) -> None:
        """Raise WellFormednessError summarising any errors."""
        if self.errors:
            raise WellFormednessError("; ".join(self.errors))


def check_model(model: PepaModel) -> CheckReport:
    """Run every static check; returns a report of errors and warnings."""
    report = CheckReport()
    env = model.environment
    _check_defined(model, report)
    if report.errors:
        return report
    _check_guardedness(env, report)
    _check_mixed_choice(model, report)
    _check_cooperation_sets(model.system, env, report)
    _check_sequential_positions(model, report)
    return report


def assert_well_formed(model: PepaModel) -> None:
    """Raise :class:`WellFormednessError` on the first category of failure."""
    check_model(model).raise_if_failed()


# ----------------------------------------------------------------------
def _check_defined(model: PepaModel, report: CheckReport) -> None:
    env = model.environment
    referenced: set[str] = set(constants_of(model.system))
    for name, body in env.components.items():
        referenced |= constants_of(body)
    for name in sorted(referenced):
        if name not in env:
            report.errors.append(f"undefined component constant {name!r}")
    for name in env.components:
        if not _reachable_from_system(name, model):
            report.warnings.append(f"component {name!r} is defined but never used")


def _reachable_from_system(name: str, model: PepaModel) -> bool:
    seen: set[str] = set()
    frontier = set(constants_of(model.system))
    while frontier:
        current = frontier.pop()
        if current == name:
            return True
        if current in seen or current not in model.environment:
            continue
        seen.add(current)
        frontier |= set(constants_of(model.environment.components[current]))
    return False


def _check_guardedness(env: Environment, report: CheckReport) -> None:
    """A constant is unguarded if it can reach itself through choice /
    hiding / cooperation / constant references without crossing a
    prefix."""

    def unguarded_refs(expr: Expression) -> frozenset[str]:
        if isinstance(expr, Prefix):
            return frozenset()  # the prefix guards everything below
        if isinstance(expr, Choice):
            return unguarded_refs(expr.left) | unguarded_refs(expr.right)
        if isinstance(expr, Const):
            return frozenset({expr.name})
        if isinstance(expr, Cooperation):
            return unguarded_refs(expr.left) | unguarded_refs(expr.right)
        if isinstance(expr, Hiding):
            return unguarded_refs(expr.expr)
        if isinstance(expr, Cell):
            return frozenset() if expr.content is None else unguarded_refs(expr.content)
        raise TypeError(f"not a PEPA expression: {expr!r}")

    graph = {
        name: sorted(r for r in unguarded_refs(body) if r in env.components)
        for name, body in env.components.items()
    }
    # DFS for a cycle in the unguarded-reference graph
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {name: WHITE for name in graph}

    def dfs(node: str, stack: list[str]) -> list[str] | None:
        colour[node] = GREY
        stack.append(node)
        for nxt in graph[node]:
            if colour[nxt] == GREY:
                return stack[stack.index(nxt):] + [nxt]
            if colour[nxt] == WHITE:
                cycle = dfs(nxt, stack)
                if cycle:
                    return cycle
        stack.pop()
        colour[node] = BLACK
        return None

    for name in sorted(graph):
        if colour[name] == WHITE:
            cycle = dfs(name, [])
            if cycle:
                report.errors.append(
                    "unguarded recursion through " + " -> ".join(cycle)
                )
                return


def _check_mixed_choice(model: PepaModel, report: CheckReport) -> None:
    """Apparent-rate computation raises RateError on active+passive
    mixing; probe every defined sequential component."""
    env = model.environment
    for name, body in sorted(env.components.items()):
        if not isinstance(body, Sequential):
            continue
        for action in sorted(action_set(body)):
            try:
                apparent_rate(body, action, env)
            except RateError:
                report.errors.append(
                    f"component {name!r} enables both active and passive "
                    f"activities of type {action!r}"
                )
            except WellFormednessError:
                # unguarded recursion already reported separately
                return


def _check_cooperation_sets(expr: Expression, env: Environment, report: CheckReport) -> None:
    if isinstance(expr, Cooperation):
        left_alpha = env.alphabet(expr.left)
        right_alpha = env.alphabet(expr.right)
        for action in sorted(expr.actions):
            if action not in left_alpha or action not in right_alpha:
                side = "left" if action not in left_alpha else "right"
                report.warnings.append(
                    f"cooperation on {action!r} but the {side} partner never "
                    "performs it (the activity is permanently blocked)"
                )
        _check_cooperation_sets(expr.left, env, report)
        _check_cooperation_sets(expr.right, env, report)
    elif isinstance(expr, Hiding):
        _check_cooperation_sets(expr.expr, env, report)


def _check_sequential_positions(model: PepaModel, report: CheckReport) -> None:
    env = model.environment

    def is_sequential_resolved(expr: Expression, visiting: frozenset[str]) -> bool:
        if isinstance(expr, Const):
            if expr.name in visiting or expr.name not in env:
                return True  # cycles are sequential-safe; undefined reported already
            return is_sequential_resolved(env.resolve(expr.name), visiting | {expr.name})
        return isinstance(expr, Sequential)

    def walk(expr: Expression, context: str) -> None:
        if isinstance(expr, Prefix):
            if not is_sequential_resolved(expr.continuation, frozenset()):
                report.errors.append(
                    f"{context}: prefix continuation {expr.continuation} resolves "
                    "to a concurrent component"
                )
            walk(expr.continuation, context)
        elif isinstance(expr, Choice):
            for side in (expr.left, expr.right):
                if not is_sequential_resolved(side, frozenset()):
                    report.errors.append(
                        f"{context}: choice operand {side} resolves to a concurrent component"
                    )
                walk(side, context)
        elif isinstance(expr, Cooperation):
            walk(expr.left, context)
            walk(expr.right, context)
        elif isinstance(expr, Hiding):
            walk(expr.expr, context)
        elif isinstance(expr, Cell):
            if expr.content is not None and not is_sequential_resolved(expr.content, frozenset()):
                report.errors.append(f"{context}: cell content {expr.content} is not sequential")

    for name, body in sorted(env.components.items()):
        walk(body, f"definition of {name!r}")
    walk(model.system, "system equation")
