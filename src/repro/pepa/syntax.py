"""Abstract syntax for PEPA expressions (paper Figure 3, PEPA subset).

The grammar implemented across this module and :mod:`repro.pepanets.syntax`
is the one printed in Figure 3 of the paper::

    P ::= P <L> P   (cooperation)
        | P / L     (hiding)
        | P[C]      (cell)
        | I         (identifier)
    C ::= _         (empty cell)
        | S         (full cell)
    S ::= (alpha, r).S  (prefix)
        | S + S         (choice)
        | I             (identifier)

All nodes are immutable frozen dataclasses, so structural equality and
hashing come for free; the state-space explorer uses expressions
themselves as state identities.  By PEPA convention component constants
begin with an upper-case letter and action types with a lower-case
letter; the parser enforces this, the AST does not.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import WellFormednessError
from repro.pepa.rates import Rate

__all__ = [
    "Expression",
    "Sequential",
    "Prefix",
    "Choice",
    "Const",
    "Cooperation",
    "Hiding",
    "Cell",
    "TAU",
    "WILDCARD_SET",
    "action_set",
    "constants_of",
]

#: The silent action type produced by hiding.
TAU = "tau"

#: Marker cooperation set meaning "all shared action types" (``<*>``);
#: resolved against component alphabets by the environment.
WILDCARD_SET = frozenset({"*"})


class _CachedHash:
    """Hash caching for frozen AST nodes.

    Expressions are used as dictionary keys throughout state-space
    exploration; the dataclass-generated ``__hash__`` walks the whole
    subtree on every call, which profiling showed to be ~25 % of
    derivation time.  Caching the value on first use (legal: nodes are
    immutable) makes repeated lookups O(1).
    """

    def __hash__(self) -> int:
        try:
            return self._hash_cache  # type: ignore[attr-defined]
        except AttributeError:
            value = hash((type(self).__name__,) + tuple(
                getattr(self, f.name) for f in _fields(self)
            ))
            object.__setattr__(self, "_hash_cache", value)
            return value


def _fields(obj):
    from dataclasses import fields

    return fields(obj)


@dataclass(frozen=True)
class Expression(_CachedHash):
    """Base class for every PEPA expression node."""

    def is_sequential(self) -> bool:
        """True for nodes that may appear inside cells / as token terms."""
        return isinstance(self, Sequential)


@dataclass(frozen=True)
class Sequential(Expression):
    """Base class for sequential components (prefix, choice, constant)."""


@dataclass(frozen=True)
class Prefix(Sequential):
    """``(action, rate).continuation``"""

    action: str
    rate: Rate
    continuation: Sequential

    def __str__(self) -> str:
        return f"({self.action}, {self.rate}).{_paren_seq(self.continuation)}"


@dataclass(frozen=True)
class Choice(Sequential):
    """``left + right``"""

    left: Sequential
    right: Sequential

    def __str__(self) -> str:
        # the parser is left-associative, so a right-nested choice needs
        # parentheses to round-trip structurally
        right = f"({self.right})" if isinstance(self.right, Choice) else str(self.right)
        return f"{self.left} + {right}"


@dataclass(frozen=True)
class Const(Sequential):
    """A named component constant, bound by a definition ``I = S``.

    Constants double as concurrent-component identifiers in place
    definitions; the environment checks each use site.
    """

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Cooperation(Expression):
    """``left <L> right`` — synchronise on every action type in ``L``.

    ``actions`` may be :data:`WILDCARD_SET` until resolved by the
    environment.  The empty set gives pure interleaving (``||``).
    """

    left: Expression
    right: Expression
    actions: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if TAU in self.actions:
            raise WellFormednessError("cooperation on the silent action tau is not allowed")

    def __str__(self) -> str:
        if self.actions == WILDCARD_SET:
            label = "<*>"
        elif self.actions:
            label = "<" + ", ".join(sorted(self.actions)) + ">"
        else:
            label = "||"
        return f"{_paren(self.left)} {label} {_paren(self.right)}"


@dataclass(frozen=True)
class Hiding(Expression):
    """``expr / {L}`` — action types in ``L`` become the silent ``tau``."""

    expr: Expression
    actions: frozenset[str]

    def __str__(self) -> str:
        return f"{_paren(self.expr)}/{{{', '.join(sorted(self.actions))}}}"


@dataclass(frozen=True)
class Cell(Expression):
    """A token cell ``Family[content]``.

    ``family`` names the sequential component whose derivatives the cell
    may store (its *type* in the PEPA-nets sense); ``content`` is either
    ``None`` (vacant, printed ``Family[_]``) or a sequential component.
    Cells are the only mutable-looking structure in the formalism, but we
    model mutation by rebuilding the enclosing expression, preserving
    immutability.
    """

    family: str
    content: Sequential | None = None

    def is_vacant(self) -> bool:
        """True when the cell holds no token."""
        return self.content is None

    def filled(self, component: Sequential) -> "Cell":
        """A copy of this cell holding the given component."""
        return Cell(self.family, component)

    def vacated(self) -> "Cell":
        """A copy of this cell with its content removed."""
        return Cell(self.family, None)

    def __str__(self) -> str:
        inner = "_" if self.content is None else str(self.content)
        return f"{self.family}[{inner}]"


# @dataclass(frozen=True) regenerates __hash__ on every subclass, which
# would shadow the caching mixin; install the cached version explicitly.
for _cls in (Prefix, Choice, Const, Cooperation, Hiding, Cell):
    _cls.__hash__ = _CachedHash.__hash__  # type: ignore[method-assign]


def _paren(expr: Expression) -> str:
    if isinstance(expr, (Cooperation, Hiding, Choice)):
        return f"({expr})"
    return str(expr)


def _paren_seq(expr: Sequential) -> str:
    if isinstance(expr, Choice):
        return f"({expr})"
    return str(expr)


def action_set(expr: Expression) -> frozenset[str]:
    """The syntactic action types occurring in ``expr`` (not following
    constants — use :meth:`Environment.alphabet` for the full alphabet)."""
    if isinstance(expr, Prefix):
        return frozenset({expr.action}) | action_set(expr.continuation)
    if isinstance(expr, Choice):
        return action_set(expr.left) | action_set(expr.right)
    if isinstance(expr, Const):
        return frozenset()
    if isinstance(expr, Cooperation):
        return action_set(expr.left) | action_set(expr.right)
    if isinstance(expr, Hiding):
        return action_set(expr.expr)
    if isinstance(expr, Cell):
        return frozenset() if expr.content is None else action_set(expr.content)
    raise TypeError(f"not a PEPA expression: {expr!r}")


def constants_of(expr: Expression) -> frozenset[str]:
    """Every constant name referenced anywhere in ``expr``."""
    if isinstance(expr, Prefix):
        return constants_of(expr.continuation)
    if isinstance(expr, Choice):
        return constants_of(expr.left) | constants_of(expr.right)
    if isinstance(expr, Const):
        return frozenset({expr.name})
    if isinstance(expr, Cooperation):
        return constants_of(expr.left) | constants_of(expr.right)
    if isinstance(expr, Hiding):
        return constants_of(expr.expr)
    if isinstance(expr, Cell):
        base = frozenset({expr.family})
        return base if expr.content is None else base | constants_of(expr.content)
    raise TypeError(f"not a PEPA expression: {expr!r}")
