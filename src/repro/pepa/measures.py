"""Model-level performance measures for plain PEPA models.

Thin convenience layer tying the PEPA pipeline together: parse/derive
once, then ask for throughputs, local-state probabilities and
utilisations by *component-local state name* rather than raw CTMC state
index — the vocabulary a modeller (and the reflector) uses.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING

import numpy as np

from repro.ctmc import rewards
from repro.ctmc.chain import CTMC
from repro.ctmc.steady import steady_state
from repro.exceptions import SolverError
from repro.pepa.ctmcgen import ctmc_from_statespace
from repro.pepa.environment import PepaModel
from repro.pepa.statespace import DEFAULT_MAX_STATES, StateSpace, derive

if TYPE_CHECKING:  # pragma: no cover — typing only, avoids a hard import
    from repro.resilience.budget import ExecutionBudget
    from repro.resilience.fallback import FallbackPolicy

__all__ = ["ModelAnalysis", "analyse"]


class ModelAnalysis:
    """A solved PEPA model with measure accessors.

    The heavy work (derivation + steady state) happens once in
    :func:`analyse`; every accessor is then a cheap dot product.
    """

    def __init__(self, model: PepaModel, space: StateSpace, chain: CTMC, pi: np.ndarray,
                 solver: str = "direct", diagnostics=None):
        self.model = model
        self.space = space
        self.chain = chain
        self.pi = pi
        self.solver = solver
        #: :class:`~repro.resilience.fallback.SolveDiagnostics` when the
        #: model was solved through a fallback policy, else ``None``.
        self.diagnostics = diagnostics

    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        return self.chain.n_states

    def throughput(self, action: str) -> float:
        """Completions of ``action`` per time unit in steady state."""
        return rewards.throughput(self.chain, action, self.pi)

    def all_throughputs(self) -> dict[str, float]:
        """Throughput of every action type, keyed by name."""
        return rewards.all_throughputs(self.chain, self.pi)

    def probability_of_local_state(self, name: str) -> float:
        """Total probability of global states in which some component is
        currently in local state ``name``.

        Matches ``name`` as a whole identifier inside the derivative
        label, so ``File`` does not match ``FileReader``.
        """
        pattern = rf"\b{re.escape(name)}\b"
        return rewards.probability_by_label(self.chain, pattern, self.pi, regex=True)

    def utilisation(self, predicate) -> float:
        """Probability mass of states satisfying ``predicate(index, label)``."""
        return rewards.utilisation(self.chain, predicate, self.pi)

    def state_probabilities(self) -> list[tuple[str, float]]:
        """(label, probability) for every global state, model order."""
        return [(self.chain.labels[i], float(self.pi[i])) for i in range(self.n_states)]

    # ------------------------------------------------------------------
    # Time-dependent measures
    # ------------------------------------------------------------------
    def _states_with_local(self, name: str) -> list[int]:
        pattern = re.compile(rf"\b{re.escape(name)}\b")
        return [i for i, lbl in enumerate(self.chain.labels) if pattern.search(lbl)]

    def transient_probability_of_local_state(self, name: str, t: float) -> float:
        """P(some component is in local state ``name`` at time ``t``),
        starting from the model's initial state."""
        from repro.ctmc.transient import transient_distribution

        dist = transient_distribution(self.chain, t, self.chain.initial)
        return float(sum(dist[i] for i in self._states_with_local(name)))

    def mean_time_to_local_state(self, name: str) -> float:
        """Expected time until some component first enters local state
        ``name``, from the initial state."""
        from repro.ctmc.passage import mean_passage_time

        targets = self._states_with_local(name)
        if not targets:
            raise SolverError(f"no state mentions local state {name!r}")
        return mean_passage_time(self.chain, self.chain.initial, targets)


def analyse(
    model: PepaModel,
    *,
    solver: str = "direct",
    max_states: int = DEFAULT_MAX_STATES,
    reducible: str = "error",
    budget: "ExecutionBudget | None" = None,
    policy: "FallbackPolicy | str | None" = None,
    generator: str = "csr",
    fluid: bool = False,
    replicas: int | None = None,
):
    """Derive and solve ``model``; returns a :class:`ModelAnalysis`.

    ``reducible="bscc"`` permits models with a transient start-up phase
    (see :func:`repro.ctmc.steady.steady_state`).  ``budget`` is an
    optional :class:`~repro.resilience.budget.ExecutionBudget` bounding
    the derivation; a non-``None`` ``policy``
    (:class:`~repro.resilience.fallback.FallbackPolicy` or a
    comma-separated method list) solves through the resilient fallback
    chain and records per-attempt diagnostics on the returned analysis.
    ``generator`` selects the generator representation (``"csr"``,
    ``"descriptor"`` or ``"auto"`` — see
    :func:`repro.pepa.ctmcgen.ctmc_from_statespace`).

    ``fluid=True`` switches to the mean-field route: the model must
    have the replicated population shape, the (optional) ``replicas``
    count overrides the one spelled out in the system equation, and the
    result is a :class:`~repro.fluid.ode.FluidAnalysis` (occupancies
    and throughputs in time independent of the replica count) instead
    of a :class:`ModelAnalysis`.
    """
    if fluid:
        from repro.fluid.ode import analyse_fluid

        return analyse_fluid(model, replicas=replicas)
    if replicas is not None:
        raise SolverError(
            "replicas is only meaningful on the fluid route; pass fluid=True"
        )
    space = derive(model, max_states=max_states, budget=budget)
    chain = ctmc_from_statespace(
        space, generator=generator, environment=model.environment
    )
    diagnostics = None
    if policy is not None:
        from repro.resilience.fallback import solve_with_fallback

        pi, diagnostics = solve_with_fallback(chain, policy, reducible=reducible)
        solver = diagnostics.method or solver
    else:
        pi = steady_state(chain, method=solver, reducible=reducible)
    return ModelAnalysis(model, space, chain, pi, solver=solver,
                         diagnostics=diagnostics)
