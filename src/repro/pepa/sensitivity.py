"""PEPA-level sensitivity: which activity's rate should the modeller
tune?

Built on :mod:`repro.ctmc.sensitivity`: the state space retains every
arc with its action label, so the generator derivative for "scale all
rates of action α by (1+θ)" is assembled exactly — each α-arc
contributes its rate to ``dQ`` off-diagonal and subtracts it on the
diagonal.  Self-loop α-arcs cancel in the generator but still count
toward the throughput reward derivative.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.ctmc.chain import CTMC
from repro.ctmc.sensitivity import measure_sensitivity
from repro.exceptions import SolverError
from repro.pepa.statespace import StateSpace

__all__ = ["action_generator_derivative", "throughput_sensitivity", "sensitivity_profile"]


def action_generator_derivative(space: StateSpace, action: str) -> sp.csr_matrix:
    """``∂Q/∂θ`` for scaling every ``action``-labelled rate by (1+θ)."""
    n = space.size
    rows, cols, vals = [], [], []
    for arc in space.arcs:
        if arc.action != action or arc.source == arc.target:
            continue
        rows.extend((arc.source, arc.source))
        cols.extend((arc.target, arc.source))
        vals.extend((arc.rate, -arc.rate))
    dQ = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    dQ.sum_duplicates()
    return dQ


def throughput_sensitivity(
    space: StateSpace,
    chain: CTMC,
    measured: str,
    perturbed: str,
    pi: np.ndarray | None = None,
) -> float:
    """``d throughput(measured) / dθ`` at θ=0, where θ scales every
    rate of action ``perturbed`` by (1+θ).

    When ``measured == perturbed`` the reward vector itself scales, so
    the product-rule term ``π·r`` is added.
    """
    if measured not in chain.action_rates:
        raise SolverError(f"chain performs no action {measured!r}")
    if perturbed not in chain.action_rates:
        raise SolverError(f"chain performs no action {perturbed!r}")
    dQ = action_generator_derivative(space, perturbed)
    rewards = chain.action_rates[measured]
    d_rewards = rewards if measured == perturbed else None
    return measure_sensitivity(chain, dQ, rewards, d_rewards, pi)


def sensitivity_profile(
    space: StateSpace, chain: CTMC, measured: str, pi: np.ndarray | None = None
) -> dict[str, float]:
    """The full tuning guide: sensitivity of one measure to *every*
    action's rate scale, sorted by absolute impact (largest first)."""
    profile = {
        action: throughput_sensitivity(space, chain, measured, action, pi)
        for action in chain.action_rates
    }
    return dict(sorted(profile.items(), key=lambda kv: -abs(kv[1])))
