"""Definition environments and whole models.

A PEPA model is a set of constant definitions ``I = S`` plus a system
equation (the composite expression whose derivatives form the state
space).  The environment resolves constants, computes alphabets
(following constants, cycle-safely) and resolves ``<*>`` wildcard
cooperation sets to the intersection of the partners' alphabets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import WellFormednessError
from repro.pepa.syntax import (
    WILDCARD_SET,
    Cell,
    Choice,
    Const,
    Cooperation,
    Expression,
    Hiding,
    Prefix,
    Sequential,
)

__all__ = ["Environment", "PepaModel"]


@dataclass
class Environment:
    """Constant and rate-constant bindings for a model."""

    components: dict[str, Expression] = field(default_factory=dict)
    rates: dict[str, float] = field(default_factory=dict)

    def define(self, name: str, body: Expression) -> None:
        """Bind a component constant; duplicates are rejected."""
        if name in self.components:
            raise WellFormednessError(f"component {name!r} defined twice")
        self.components[name] = body

    def define_rate(self, name: str, value: float) -> None:
        """Bind a rate constant; duplicates are rejected."""
        if name in self.rates:
            raise WellFormednessError(f"rate constant {name!r} defined twice")
        self.rates[name] = value

    def resolve(self, name: str) -> Expression:
        """The defining body of a constant; raises on unknown names."""
        try:
            return self.components[name]
        except KeyError:
            raise WellFormednessError(f"undefined component constant {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.components

    # ------------------------------------------------------------------
    # Alphabets
    # ------------------------------------------------------------------
    def alphabet(self, expr: Expression) -> frozenset[str]:
        """The full action-type alphabet of ``expr``, following constant
        definitions (cycle-safe)."""
        return self._alphabet(expr, frozenset())

    def _alphabet(self, expr: Expression, visiting: frozenset[str]) -> frozenset[str]:
        if isinstance(expr, Prefix):
            return frozenset({expr.action}) | self._alphabet(expr.continuation, visiting)
        if isinstance(expr, Choice):
            return self._alphabet(expr.left, visiting) | self._alphabet(expr.right, visiting)
        if isinstance(expr, Const):
            if expr.name in visiting:
                return frozenset()
            return self._alphabet(self.resolve(expr.name), visiting | {expr.name})
        if isinstance(expr, Cooperation):
            return self._alphabet(expr.left, visiting) | self._alphabet(expr.right, visiting)
        if isinstance(expr, Hiding):
            return self._alphabet(expr.expr, visiting) - expr.actions
        if isinstance(expr, Cell):
            # A cell's alphabet is that of its *family*: even a vacant
            # cell constrains cooperation sets because a token may arrive.
            fam = self._alphabet(Const(expr.family), visiting)
            if expr.content is not None:
                fam |= self._alphabet(expr.content, visiting)
            return fam
        raise TypeError(f"not a PEPA expression: {expr!r}")

    # ------------------------------------------------------------------
    # Wildcard resolution
    # ------------------------------------------------------------------
    def resolve_wildcards(self, expr: Expression) -> Expression:
        """Replace every ``<*>`` cooperation set with the intersection of
        the partners' alphabets, recursively."""
        if isinstance(expr, Cooperation):
            left = self.resolve_wildcards(expr.left)
            right = self.resolve_wildcards(expr.right)
            actions = expr.actions
            if actions == WILDCARD_SET:
                actions = self.alphabet(left) & self.alphabet(right)
            return Cooperation(left, right, frozenset(actions))
        if isinstance(expr, Hiding):
            return Hiding(self.resolve_wildcards(expr.expr), expr.actions)
        # Sequential components and cells contain no composite operators
        # below them by construction (Fig 3 grammar), so pass through.
        return expr

    def resolved_rate(self, name: str) -> float:
        """The value of a rate constant; raises on unknown names."""
        try:
            return self.rates[name]
        except KeyError:
            raise WellFormednessError(f"undefined rate constant {name!r}") from None


@dataclass
class PepaModel:
    """A complete PEPA model: definitions plus the system equation."""

    environment: Environment
    system: Expression

    def __post_init__(self) -> None:
        self.system = self.environment.resolve_wildcards(self.system)

    @property
    def alphabet(self) -> frozenset[str]:
        return self.environment.alphabet(self.system)

    def component(self, name: str) -> Expression:
        """Look up a component definition by constant name."""
        return self.environment.resolve(name)

    def __str__(self) -> str:
        lines = []
        for name, body in self.environment.components.items():
            lines.append(f"{name} = {body};")
        lines.append(str(self.system))
        return "\n".join(lines)


def sequential_or_raise(expr: Expression, context: str) -> Sequential:
    """Assert that ``expr`` is sequential (tokens/cell contents must be)."""
    if not isinstance(expr, Sequential):
        raise WellFormednessError(f"{context} must be a sequential component, got: {expr}")
    return expr
