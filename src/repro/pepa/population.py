"""Population (counting) semantics for replicated components.

The client/server families that drive state-space explosion have a
well-known cure: when ``n`` identical sequential components run in pure
interleaving, global states that differ only by *which* replica is in
which local state are lumpable, and the quotient is the **population
CTMC** whose states count replicas per local state.  The state count
drops from ``|ds(P)|^n`` to ``C(n + |ds(P)| - 1, |ds(P)| - 1)`` —
polynomial instead of exponential.

We implement the construction for the system shape

    (P || P || ... || P)  <L>  Q

(``n`` replicas of one sequential component cooperating with an
arbitrary — typically small — environment component ``Q``):

* an *individual* activity of a replica in local state ``s`` with rate
  ``r`` occurs at population rate ``n_s · r``;
* a *shared* activity ``α ∈ L`` follows the apparent-rate law with the
  replica side's apparent rate ``Σ_s n_s · rα(s)`` — exactly what the
  unfolded cooperation would compute, because apparent rates add across
  interleaved replicas;
* ``Q``'s independent activities are unchanged.

The result is exact: the tests verify that every measure (throughput,
local-state probabilities scaled by counts) matches the unfolded model
on instances small enough to unfold.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ctmc.chain import CTMC, build_ctmc
from repro.exceptions import StateSpaceError, WellFormednessError
from repro.pepa.environment import Environment
from repro.pepa.rates import Rate, cooperation_rate, rate_sum
from repro.pepa.semantics import apparent_rate, derivative_set, derivatives
from repro.pepa.syntax import Expression, Sequential
from repro.utils.ordering import stable_sorted

__all__ = [
    "PopulationState",
    "PopulationModel",
    "population_ctmc",
    "environment_states",
]


@dataclass(frozen=True)
class PopulationState:
    """(counts per replica local state, environment state).

    ``environment_state`` is ``None`` for environment-free systems
    (pure interleaving of replicas, no cooperation).
    """

    counts: tuple[tuple[str, int], ...]  # sorted (local-state-name, n>0)
    environment_state: Expression | None

    def count_of(self, local_state: str) -> int:
        """How many replicas currently occupy the given local state."""
        return dict(self.counts).get(local_state, 0)

    def total(self) -> int:
        """The total replica count (invariant across the state space)."""
        return sum(n for _, n in self.counts)

    def __str__(self) -> str:
        pops = ", ".join(f"{name}:{n}" for name, n in self.counts)
        if self.environment_state is None:
            return f"[{pops}]"
        return f"[{pops}] | {self.environment_state}"


class PopulationModel:
    """The counting-semantics model for ``replica^n <L> environment``."""

    def __init__(
        self,
        env: Environment,
        replica: str,
        n_replicas: int,
        environment_component: Expression | None,
        cooperation: frozenset[str],
    ):
        if n_replicas < 1:
            raise WellFormednessError("need at least one replica")
        if environment_component is None and cooperation:
            raise WellFormednessError(
                "a cooperation set needs an environment component to "
                "cooperate with; pure interleaving has an empty set"
            )
        self.env = env
        self.replica = replica
        self.n = n_replicas
        self.environment_component = environment_component
        self.cooperation = cooperation
        # local states of the replica, with canonical string names
        self.local_states: dict[str, Sequential] = {}
        for state in stable_sorted(derivative_set(replica, env), key=str):
            self.local_states[str(state)] = state

    # ------------------------------------------------------------------
    def initial_state(self) -> PopulationState:
        """All replicas in the start state, environment at its start."""
        from repro.pepa.syntax import Const

        name = str(Const(self.replica))
        if name not in self.local_states:
            raise WellFormednessError(f"replica constant {self.replica!r} not found")
        return PopulationState(((name, self.n),), self.environment_component)

    def replica_apparent_rate(self, state: PopulationState, action: str) -> Rate | None:
        """Apparent rate of the whole population: Σ n_s · rα(s)."""
        total: Rate | None = None
        for name, count in state.counts:
            single = apparent_rate(self.local_states[name], action, self.env)
            if single is None:
                continue
            scaled = _scale(single, count)
            total = scaled if total is None else rate_sum(total, scaled)
        return total

    def transitions(self, state: PopulationState) -> list[tuple[str, float, PopulationState]]:
        """All outgoing (action, rate, successor) of a population state."""
        out: list[tuple[str, float, PopulationState]] = []
        counts = dict(state.counts)
        env_state = state.environment_state

        env_transitions = [] if env_state is None else derivatives(env_state, self.env)
        # --- independent replica moves (action not in L) --------------
        for name, n in state.counts:
            for tr in derivatives(self.local_states[name], self.env):
                if tr.action in self.cooperation:
                    continue
                if tr.rate.is_passive():
                    raise WellFormednessError(
                        f"replica activity ({tr.action}) is passive outside "
                        "the cooperation set; it can never proceed"
                    )
                successor = _move(counts, name, str(tr.target))
                out.append((tr.action, n * tr.rate.value,
                            PopulationState(successor, env_state)))
        # --- independent environment moves -----------------------------
        for tr in env_transitions:
            if tr.action in self.cooperation:
                continue
            if tr.rate.is_passive():
                raise WellFormednessError(
                    f"environment activity ({tr.action}) is passive outside "
                    "the cooperation set"
                )
            out.append((tr.action, tr.rate.value,
                        PopulationState(state.counts, tr.target)))
        # --- shared activities ------------------------------------------
        for action in sorted(self.cooperation):
            pop_apparent = self.replica_apparent_rate(state, action)
            env_apparent = apparent_rate(env_state, action, self.env)
            if pop_apparent is None or env_apparent is None:
                continue
            for name, n in state.counts:
                for tr in derivatives(self.local_states[name], self.env):
                    if tr.action != action:
                        continue
                    replica_rate = _scale(tr.rate, n)
                    for etr in env_transitions:
                        if etr.action != action:
                            continue
                        joint = cooperation_rate(
                            replica_rate, etr.rate, pop_apparent, env_apparent
                        )
                        if joint.is_passive():
                            raise WellFormednessError(
                                f"shared activity ({action}) is passive on "
                                "both sides of the cooperation"
                            )
                        successor = _move(counts, name, str(tr.target))
                        out.append((action, joint.value,
                                    PopulationState(successor, etr.target)))
        return out


def _scale(rate: Rate, factor: int) -> Rate:
    from repro.pepa.rates import ActiveRate, PassiveRate

    if factor == 1:
        return rate
    if rate.is_passive():
        assert isinstance(rate, PassiveRate)
        return PassiveRate(rate.weight * factor)
    return ActiveRate(rate.value * factor)


def _move(counts: dict[str, int], source: str, target: str) -> tuple[tuple[str, int], ...]:
    nxt = dict(counts)
    nxt[source] -= 1
    nxt[target] = nxt.get(target, 0) + 1
    return tuple(sorted((k, v) for k, v in nxt.items() if v > 0))


def environment_states(
    env: Environment,
    environment_component: Expression,
    *,
    max_states: int = 10_000,
) -> list[Expression]:
    """Every state the environment component can reach, canonically ordered.

    Breadth-first over :func:`~repro.pepa.semantics.derivatives` — shared
    and independent moves alike change the environment only through its
    own one-step targets, so this is the full environment universe of
    the population construction (and the environment block of the fluid
    vector form's coordinate system).
    """
    seen: set[Expression] = {environment_component}
    frontier: list[Expression] = [environment_component]
    while frontier:
        current = frontier.pop()
        for tr in derivatives(current, env):
            if tr.target not in seen:
                if len(seen) >= max_states:
                    raise StateSpaceError(
                        f"environment component exceeds {max_states} states"
                    )
                seen.add(tr.target)
                frontier.append(tr.target)
    return stable_sorted(seen, key=str)


def population_ctmc(
    env: Environment,
    replica: str,
    n_replicas: int,
    environment_component: Expression | None,
    cooperation: frozenset[str] | set[str],
    *,
    max_states: int = 1_000_000,
) -> tuple[list[PopulationState], CTMC]:
    """Explore the population state space and build its CTMC."""
    model = PopulationModel(
        env, replica, n_replicas, environment_component, frozenset(cooperation)
    )
    initial = model.initial_state()
    index: dict[PopulationState, int] = {initial: 0}
    states: list[PopulationState] = [initial]
    records: list[tuple[int, str, float, int]] = []
    frontier = [initial]
    while frontier:
        state = frontier.pop()
        src = index[state]
        for action, rate, successor in model.transitions(state):
            tgt = index.get(successor)
            if tgt is None:
                if len(states) >= max_states:
                    raise StateSpaceError(
                        f"population space exceeds {max_states} states"
                    )
                tgt = len(states)
                index[successor] = tgt
                states.append(successor)
                frontier.append(successor)
            records.append((src, action, rate, tgt))
    labels = [str(s) for s in states]
    return states, build_ctmc(len(states), records, labels=labels)
