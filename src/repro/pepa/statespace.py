"""State-space derivation: from a PEPA expression to a labelled
multi-transition system (LTS).

The derivation graph of a PEPA model, with each distinct derivative as a
state and activities as labelled arcs, *is* the CTMC skeleton: treating
each state as a CTMC state and summing activity rates per (source,
target) pair yields the generator matrix (done in
:mod:`repro.pepa.ctmcgen`).

Exploration is a plain breadth-first search with a configurable state
bound — the paper is explicit that susceptibility to state-space
explosion is the price of exact numerical solution, so we surface the
bound as a first-class error instead of letting memory blow up.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.exceptions import StateSpaceError, WellFormednessError
from repro.obs import get_events, get_metrics, get_tracer
from repro.pepa.environment import Environment, PepaModel
from repro.pepa.semantics import Transition, derivatives
from repro.pepa.syntax import Expression

if TYPE_CHECKING:  # pragma: no cover — typing only, avoids a hard import
    from repro.resilience.budget import ExecutionBudget

__all__ = ["LabelledArc", "StateSpace", "explore", "derive"]

#: Default ceiling on explored states; generous for the paper's models
#: (hundreds of states) while catching accidental explosions quickly.
DEFAULT_MAX_STATES = 1_000_000

#: How many newly discovered states between ``explore.progress`` events
#: (both here and in :mod:`repro.pepanets.semantics`).  Small enough to
#: show life on a slow derivation, large enough to stay off the BFS hot
#: path; tests shrink it via monkeypatching.
PROGRESS_INTERVAL = 1_000


def emit_progress(events, stage: str, explored: int, frontier: int,
                  start: float) -> None:
    """One ``explore.progress`` event with the BFS vital signs."""
    elapsed = time.perf_counter() - start
    events.emit(
        "explore.progress", stage=stage, explored=explored, frontier=frontier,
        states_per_sec=round(explored / elapsed, 3) if elapsed > 0 else None,
        elapsed_s=round(elapsed, 9),
    )


@dataclass(frozen=True)
class LabelledArc:
    """One transition of the LTS, with state indices and a *numeric*
    rate (passive rates cannot appear at the top level of a complete
    model — that would mean an activity waiting forever for a partner
    that never arrives)."""

    source: int
    action: str
    rate: float
    target: int


@dataclass
class StateSpace:
    """The reachable derivation graph of a model.

    ``states[i]`` is the expression for state ``i``; ``arcs`` is the
    multiset of labelled transitions; ``initial`` is always 0.
    """

    states: list[Expression]
    arcs: list[LabelledArc]
    index: dict[Expression, int] = field(repr=False, default_factory=dict)

    @property
    def initial(self) -> int:
        return 0

    @property
    def size(self) -> int:
        return len(self.states)

    def __len__(self) -> int:
        return len(self.states)

    def actions(self) -> frozenset[str]:
        """Every action type labelling some arc."""
        return frozenset(arc.action for arc in self.arcs)

    def deadlocks(self) -> list[int]:
        """Indices of states with no outgoing arcs."""
        out = {arc.source for arc in self.arcs}
        return [i for i in range(len(self.states)) if i not in out]

    def successors(self, state: int) -> list[LabelledArc]:
        """The outgoing arcs of one state."""
        return [arc for arc in self.arcs if arc.source == state]

    def arcs_by_action(self, action: str) -> list[LabelledArc]:
        """All arcs labelled with the given action type."""
        return [arc for arc in self.arcs if arc.action == action]

    def state_label(self, i: int) -> str:
        """Human-readable rendering of state ``i`` (its PEPA derivative)."""
        return str(self.states[i])


def explore(
    initial: Expression,
    env: Environment,
    *,
    max_states: int = DEFAULT_MAX_STATES,
    exclude: frozenset[str] = frozenset(),
    budget: "ExecutionBudget | None" = None,
) -> StateSpace:
    """Breadth-first derivation of the reachable state space.

    ``exclude`` suppresses the given action types (used by the PEPA-net
    layer to keep firings out of local derivation).  ``budget`` adds a
    cooperative wall-clock/state-count guard checked once per explored
    state; when it runs out a
    :class:`~repro.exceptions.BudgetExceededError` carrying the partial
    frontier size and a resumable summary is raised instead of the
    search silently grinding on.
    """
    index: dict[Expression, int] = {initial: 0}
    states: list[Expression] = [initial]
    arcs: list[LabelledArc] = []
    queue: deque[Expression] = deque([initial])
    events = get_events()
    start = time.perf_counter() if events.enabled else 0.0

    with get_tracer().span("pepa.statespace", max_states=max_states) as sp:
        while queue:
            state = queue.popleft()
            src = index[state]
            if budget is not None:
                budget.checkpoint(
                    stage="pepa state space", explored=len(states), frontier=len(queue)
                )
            for tr in derivatives(state, env, exclude=exclude):
                _require_active(tr, state)
                tgt = index.get(tr.target)
                if tgt is None:
                    if len(states) >= max_states:
                        sp.set(states=len(states), arcs=len(arcs))
                        raise StateSpaceError(
                            f"state space exceeds the configured bound of {max_states} states; "
                            "raise max_states or aggregate the model"
                        )
                    tgt = len(states)
                    index[tr.target] = tgt
                    states.append(tr.target)
                    queue.append(tr.target)
                    if events.enabled and tgt % PROGRESS_INTERVAL == 0:
                        emit_progress(events, "pepa.statespace",
                                      len(states), len(queue), start)
                arcs.append(LabelledArc(src, tr.action, tr.rate.value, tgt))
        sp.set(states=len(states), arcs=len(arcs))
    if events.enabled:
        emit_progress(events, "pepa.statespace", len(states), 0, start)
    metrics = get_metrics()
    metrics.counter("states_explored").inc(len(states))
    metrics.counter("transitions").inc(len(arcs))
    return StateSpace(states=states, arcs=arcs, index=index)


def _require_active(tr: Transition, state: Expression) -> None:
    if tr.rate.is_passive():
        raise WellFormednessError(
            f"activity ({tr.action}, {tr.rate}) of state {state} is passive at the "
            "top level: the system equation leaves it without an active partner"
        )


def derive(
    model: PepaModel,
    *,
    max_states: int = DEFAULT_MAX_STATES,
    budget: "ExecutionBudget | None" = None,
) -> StateSpace:
    """Derive the state space of a complete model's system equation."""
    return explore(
        model.system, model.environment, max_states=max_states, budget=budget
    )
