"""State-space derivation: from a PEPA expression to a labelled
multi-transition system (LTS).

The derivation graph of a PEPA model, with each distinct derivative as a
state and activities as labelled arcs, *is* the CTMC skeleton: treating
each state as a CTMC state and summing activity rates per (source,
target) pair yields the generator matrix (done in
:mod:`repro.pepa.ctmcgen`).

Exploration runs on the shared breadth-first kernel
(:func:`repro.core.explore.explore_lts`) with a configurable state
bound — the paper is explicit that susceptibility to state-space
explosion is the price of exact numerical solution, so we surface the
bound as a first-class error instead of letting memory blow up.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.core.explore import DEFAULT_MAX_STATES, explore_lts
from repro.core.lts import LabelledArc, Lts
from repro.exceptions import WellFormednessError
from repro.pepa.environment import Environment, PepaModel
from repro.pepa.semantics import Transition, TransitionCache
from repro.pepa.syntax import Expression

if TYPE_CHECKING:  # pragma: no cover — typing only, avoids a hard import
    from repro.resilience.budget import ExecutionBudget

__all__ = ["LabelledArc", "StateSpace", "explore", "derive"]


class StateSpace(Lts):
    """The reachable derivation graph of a model.

    ``states[i]`` is the expression for state ``i``; ``arcs`` is the
    multiset of labelled transitions; ``initial`` is always 0.  All
    accessors (``successors``, ``arcs_by_action``, ``deadlocks``,
    ``actions``, ...) come from :class:`repro.core.lts.Lts`.
    """

    states: list[Expression]


def _overflow(max_states: int) -> str:
    return (
        f"state space exceeds the configured bound of {max_states} states; "
        "raise max_states or aggregate the model"
    )


def explore(
    initial: Expression,
    env: Environment,
    *,
    max_states: int = DEFAULT_MAX_STATES,
    exclude: frozenset[str] = frozenset(),
    budget: "ExecutionBudget | None" = None,
) -> StateSpace:
    """Breadth-first derivation of the reachable state space.

    ``exclude`` suppresses the given action types (used by the PEPA-net
    layer to keep firings out of local derivation).  ``budget`` adds a
    cooperative wall-clock/state-count guard checked once per explored
    state; when it runs out a
    :class:`~repro.exceptions.BudgetExceededError` carrying the partial
    frontier size and a resumable summary is raised instead of the
    search silently grinding on.

    Successors are produced level-batched through a
    :class:`~repro.pepa.semantics.TransitionCache`: the one-step
    transitions and apparent rates of every *subexpression* are memoised
    across the whole exploration, so a global state pays only for the
    component that actually moved since its parent.
    """
    cache = TransitionCache(env, exclude)

    def successors(state: Expression) -> Iterator[tuple[str, float, Expression]]:
        for tr in cache.derivatives(state):
            _require_active(tr, state)
            yield tr.action, tr.rate.value, tr.target

    def successors_batch(
        level: list[Expression],
    ) -> Iterator[list[tuple[str, float, Expression]]]:
        for state in level:
            yield [
                (tr.action, tr.rate.value, tr.target)
                for tr in cache.derivatives(state)
                if _require_active(tr, state) is None
            ]

    lts = explore_lts(
        initial,
        successors,
        stage="pepa.statespace",
        budget_stage="pepa state space",
        max_states=max_states,
        budget=budget,
        overflow=_overflow,
        successors_batch=successors_batch,
    )
    return StateSpace(states=lts.states, arcs=lts.arcs, index=lts.index)


def _require_active(tr: Transition, state: Expression) -> None:
    if tr.rate.is_passive():
        raise WellFormednessError(
            f"activity ({tr.action}, {tr.rate}) of state {state} is passive at the "
            "top level: the system equation leaves it without an active partner"
        )


#: Payload schema of cached PEPA state spaces; bump on layout changes.
CACHE_SCHEMA = "repro-statespace/1"


def derive(
    model: PepaModel,
    *,
    max_states: int = DEFAULT_MAX_STATES,
    budget: "ExecutionBudget | None" = None,
) -> StateSpace:
    """Derive the state space of a complete model's system equation.

    When an ambient :class:`~repro.batch.cache.DerivationCache` is
    installed (see :func:`repro.batch.cache.use_cache`), the derivation
    is content-addressed by the model's canonical source text: a hit
    reconstructs the state space from disk and skips exploration
    entirely (no ``pepa.statespace`` span, no explored-state counters —
    only ``cache.hit``); a miss explores as usual and publishes the
    result.  A cached space larger than ``max_states`` is rejected so
    the ceiling keeps its meaning, and exploration (which will raise
    the usual overflow error) runs instead.
    """
    from repro.batch.cache import get_cache

    cache = get_cache()
    if cache is None:
        return explore(
            model.system, model.environment, max_states=max_states, budget=budget
        )

    from repro.core.keys import DerivationKey
    from repro.pepa.export import model_source

    key = DerivationKey.of("pepa", model_source(model))
    payload = cache.fetch(key)
    if (
        payload is not None
        and payload.get("schema") == CACHE_SCHEMA
        and len(payload.get("states", ())) <= max_states
    ):
        space = StateSpace(states=payload["states"], arcs=payload["arcs"])
        space.cache_key = key
        return space
    space = explore(
        model.system, model.environment, max_states=max_states, budget=budget
    )
    cache.store(
        key, {"schema": CACHE_SCHEMA, "states": space.states, "arcs": space.arcs}
    )
    space.cache_key = key
    return space
