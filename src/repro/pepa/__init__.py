"""PEPA: Hillston's stochastic process algebra (paper substrate S1).

Public surface::

    from repro.pepa import parse_model, analyse, derive

    model = parse_model(SOURCE)
    result = analyse(model)
    result.throughput("read")
"""

from repro.pepa.environment import Environment, PepaModel
from repro.pepa.ctmcgen import ctmc_from_statespace, ctmc_of_model
from repro.pepa.measures import ModelAnalysis, analyse
from repro.pepa.parser import parse_expression, parse_model, parse_rate
from repro.pepa.rates import PASSIVE, ActiveRate, PassiveRate, Rate
from repro.pepa.population import PopulationModel, PopulationState, population_ctmc
from repro.pepa.semantics import Transition, apparent_rate, derivatives, enabled_actions
from repro.pepa.sensitivity import (
    action_generator_derivative,
    sensitivity_profile,
    throughput_sensitivity,
)
from repro.pepa.statespace import LabelledArc, StateSpace, derive, explore
from repro.pepa.syntax import (
    TAU,
    Cell,
    Choice,
    Const,
    Cooperation,
    Expression,
    Hiding,
    Prefix,
    Sequential,
)
from repro.pepa.wellformed import CheckReport, assert_well_formed, check_model

__all__ = [
    "ActiveRate",
    "PassiveRate",
    "Rate",
    "PASSIVE",
    "TAU",
    "Prefix",
    "Choice",
    "Const",
    "Cooperation",
    "Hiding",
    "Cell",
    "Expression",
    "Sequential",
    "Environment",
    "PepaModel",
    "parse_model",
    "parse_expression",
    "parse_rate",
    "Transition",
    "derivatives",
    "apparent_rate",
    "enabled_actions",
    "StateSpace",
    "LabelledArc",
    "explore",
    "derive",
    "ctmc_from_statespace",
    "ctmc_of_model",
    "ModelAnalysis",
    "analyse",
    "CheckReport",
    "check_model",
    "assert_well_formed",
    "throughput_sensitivity",
    "sensitivity_profile",
    "action_generator_derivative",
    "population_ctmc",
    "PopulationModel",
    "PopulationState",
]
