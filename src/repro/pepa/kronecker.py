"""Compositional Kronecker-descriptor construction for PEPA models.

The derivation graph of a PEPA system is a flat LTS, but the system
*equation* is a tree of cooperations over sequential components.  This
module re-derives the generator from that tree compositionally — one
small dense rate matrix per component per action, combined by Kronecker
products and apparent-rate scale factors — so the solver stack can run
matrix-free (:class:`repro.ctmc.operator.KroneckerDescriptor`) instead
of materialising the global CSR matrix.

The construction walks the system tree bottom-up, carrying one
*action block* per action type per subtree:

* **Leaf** (any non-cooperation subtree — a sequential component, a
  cell, a constant): the local derivative closure is explored
  independently, giving per-action active rate matrices ``R[a]`` and
  passive weight matrices ``W[a]`` over the local states.
* **Interleaving** (``a`` outside the cooperation set): blocks simply
  concatenate — the subtrees act on disjoint positions.
* **Synchronisation** (``a`` in the cooperation set): the blocks
  combine by the PEPA bounded-capacity law.  The two exactly
  representable cases are

  - *active × passive*: the pairwise rate is ``r·w/W(y)`` where ``W``
    is the passive side's total weight in its current state — a
    Kronecker product with one state-dependent denominator group
    (the apparent-rate ``min`` cancels against the active share);
  - *active × active with constant apparent rates*: the rate scales by
    the constant ``min(α1, α2)/(α1·α2)``.

  Anything else (state-dependent active×active apparent rates,
  passive×passive synchronisation, components mixing active and
  passive activities of one type across states) raises
  :class:`DescriptorUnsupported` and the caller falls back to the
  materialised path — the descriptor is an exact representation or no
  representation at all.

Correctness notes: each leaf's independent closure is a *superset* of
its in-context reachable states, so the product space embeds every
global state; transitions out of reachable product states land in
reachable product states, making the reachable-state projection exact.
Hiding above a cooperation folds the hidden actions' blocks into
``tau`` (hidden activities can never synchronise further out, so no
apparent-rate bookkeeping survives them).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Union

import numpy as np

from repro.core.lts import Lts
from repro.ctmc.chain import CTMC
from repro.ctmc.operator import DescriptorUnsupported, KroneckerDescriptor, KroneckerTerm
from repro.pepa.environment import Environment
from repro.pepa.semantics import derivatives
from repro.pepa.syntax import TAU, Cooperation, Expression, Hiding

__all__ = ["build_descriptor", "descriptor_chain", "DescriptorUnsupported"]

#: Per-component local state-space bound — a leaf larger than this is
#: no longer "small local matrices" and the descriptor loses its point.
MAX_LOCAL_STATES = 20_000

#: Absolute product-space bound (full-space work vectors are dense).
MAX_PRODUCT_SIZE = 1 << 26

#: Beyond this product/reachable blow-up the shuffle SpMV does more
#: arithmetic than a CSR product would; auto mode should fall back.
MAX_PRODUCT_RATIO = 1024

#: Term-count safety valve for pathological synchronisation fan-out.
MAX_TERMS = 5_000


# ---------------------------------------------------------------------------
# Component tree
# ---------------------------------------------------------------------------
@dataclass
class _LeafNode:
    pos: int
    root: Expression
    states: list[Expression] = field(default_factory=list)
    index: dict[Expression, int] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.states)


@dataclass
class _CoopNode:
    left: "_TreeNode"
    right: "_TreeNode"
    actions: frozenset[str]
    size: int = 0


@dataclass
class _HideNode:
    child: "_TreeNode"
    actions: frozenset[str]
    size: int = 0


_TreeNode = Union[_LeafNode, _CoopNode, _HideNode]


def _contains_cooperation(expr: Expression) -> bool:
    if isinstance(expr, Cooperation):
        return True
    if isinstance(expr, Hiding):
        return _contains_cooperation(expr.expr)
    return False


def _split(expr: Expression, leaves: list[_LeafNode]) -> _TreeNode:
    """Split the system expression at cooperation combinators; every
    other subtree becomes a leaf component."""
    if isinstance(expr, Cooperation):
        return _CoopNode(_split(expr.left, leaves), _split(expr.right, leaves), expr.actions)
    if isinstance(expr, Hiding) and _contains_cooperation(expr.expr):
        return _HideNode(_split(expr.expr, leaves), expr.actions)
    leaf = _LeafNode(pos=len(leaves), root=expr)
    leaves.append(leaf)
    return leaf


def _explore_leaf(leaf: _LeafNode, env: Environment, max_local_states: int) -> list[list]:
    """Independent BFS closure of one component's derivatives.  The
    closure is a superset of the states the component visits inside the
    full system, which is exactly what the product embedding needs."""
    leaf.states = [leaf.root]
    leaf.index = {leaf.root: 0}
    moves: list[list] = []
    queue: deque[Expression] = deque([leaf.root])
    while queue:
        state = queue.popleft()
        transitions = derivatives(state, env)
        moves.append(transitions)
        for t in transitions:
            if t.target not in leaf.index:
                if len(leaf.states) >= max_local_states:
                    raise DescriptorUnsupported(
                        f"component state space exceeds {max_local_states} states"
                    )
                leaf.index[t.target] = len(leaf.states)
                leaf.states.append(t.target)
                queue.append(t.target)
    return moves


# ---------------------------------------------------------------------------
# Action blocks
# ---------------------------------------------------------------------------
@dataclass
class _Term:
    coeff: float
    factors: dict[int, np.ndarray]
    scales: tuple = ()


@dataclass
class _Block:
    """All ways a subtree performs one action type: a sum of Kronecker
    terms, the activity kind, and — when still representable — the
    apparent rate in positional sum form ``sum_k parts[k].vec[u_k]``."""

    terms: list[_Term]
    kind: str  # "active" | "passive" | "mixed"
    parts: tuple[tuple[int, np.ndarray], ...] | None


def _leaf_blocks(leaf: _LeafNode, moves: list[list]) -> dict[str, _Block]:
    d = leaf.size
    rate_mats: dict[str, np.ndarray] = {}
    weight_mats: dict[str, np.ndarray] = {}
    for i, transitions in enumerate(moves):
        for t in transitions:
            j = leaf.index[t.target]
            if t.rate.is_passive():
                mat = weight_mats.setdefault(t.action, np.zeros((d, d)))
                mat[i, j] += t.rate.weight
            else:
                mat = rate_mats.setdefault(t.action, np.zeros((d, d)))
                mat[i, j] += t.rate.value
    blocks: dict[str, _Block] = {}
    for action in sorted(set(rate_mats) | set(weight_mats)):
        active = rate_mats.get(action)
        passive = weight_mats.get(action)
        if active is not None and passive is not None:
            # Active in some states, passive in others: legal PEPA, but
            # the uniform pairwise rate formula no longer applies.
            blocks[action] = _Block([], "mixed", None)
        elif active is not None:
            blocks[action] = _Block(
                [_Term(1.0, {leaf.pos: active})],
                "active",
                ((leaf.pos, active.sum(axis=1)),),
            )
        else:
            blocks[action] = _Block(
                [_Term(1.0, {leaf.pos: passive})],
                "passive",
                ((leaf.pos, passive.sum(axis=1)),),
            )
    return blocks


def _merge_interleaved(left: _Block | None, right: _Block | None) -> _Block:
    if left is None:
        return right  # type: ignore[return-value]
    if right is None:
        return left
    kind = left.kind if left.kind == right.kind else "mixed"
    if kind == "mixed":
        return _Block([], "mixed", None)
    parts = None
    if left.parts is not None and right.parts is not None:
        parts = left.parts + right.parts
    return _Block(left.terms + right.terms, kind, parts)


def _constant_apparent(block: _Block) -> float | None:
    """The constant total apparent rate of an active block, or None
    when it is state-dependent (or opaque after a nested sync)."""
    if block.parts is None:
        return None
    if len(block.parts) == 1:
        # A single component: zeros mark states that cannot perform the
        # action (no pair fires from them), the nonzero support must be
        # uniform for the pairwise formula to hold globally.
        vec = block.parts[0][1]
        support = vec[vec > 0.0]
        if support.size == 0 or np.ptp(support) > 1e-12 * support.max():
            return None
        return float(support[0])
    # Interleaved components: the apparent rate sums one entry per
    # position, so it is constant only when every part is constant.
    total = 0.0
    for _, vec in block.parts:
        if vec.size == 0 or np.ptp(vec) > 1e-12 * max(abs(vec.max()), 1.0):
            return None
        total += float(vec[0])
    return total if total > 0.0 else None


def _synchronise(action: str, left: _Block, right: _Block) -> _Block:
    if left.kind == "mixed" or right.kind == "mixed":
        raise DescriptorUnsupported(
            f"action {action!r}: a component mixes active and passive "
            "activities across states; not descriptor-representable"
        )
    if left.kind != right.kind:
        active, passive = (left, right) if left.kind == "active" else (right, left)
        if passive.parts is None:
            raise DescriptorUnsupported(
                f"action {action!r}: passive side apparent rate is opaque"
            )
        # r * w / W(y): the min(ra, W*T) = ra floor cancels the active
        # side's apparent-rate share exactly, whatever its structure.
        group = tuple(passive.parts)
        terms = [
            _Term(
                at.coeff * pt.coeff,
                {**at.factors, **pt.factors},
                at.scales + pt.scales + (group,),
            )
            for at in active.terms
            for pt in passive.terms
        ]
        return _Block(terms, "active", None)
    if left.kind == "active":
        alpha_left = _constant_apparent(left)
        alpha_right = _constant_apparent(right)
        if alpha_left is None or alpha_right is None:
            raise DescriptorUnsupported(
                f"action {action!r}: active-active synchronisation needs "
                "constant apparent rates on both sides"
            )
        scale = min(alpha_left, alpha_right) / (alpha_left * alpha_right)
        terms = [
            _Term(
                lt.coeff * rt.coeff * scale,
                {**lt.factors, **rt.factors},
                lt.scales + rt.scales,
            )
            for lt in left.terms
            for rt in right.terms
        ]
        return _Block(terms, "active", None)
    raise DescriptorUnsupported(
        f"action {action!r}: passive-passive synchronisation is not "
        "descriptor-representable"
    )


def _tree_blocks(
    node: _TreeNode, leaf_blocks: dict[int, dict[str, _Block]]
) -> dict[str, _Block]:
    if isinstance(node, _LeafNode):
        return dict(leaf_blocks[node.pos])
    if isinstance(node, _HideNode):
        child = _tree_blocks(node.child, leaf_blocks)
        out = {a: b for a, b in child.items() if a not in node.actions}
        hidden = [child[a] for a in sorted(child) if a in node.actions]
        if hidden:
            tau = out.get(TAU)
            for block in hidden:
                # tau never synchronises, so the apparent rate is moot;
                # only the terms and the kind survive the renaming.
                folded = _Block(block.terms, block.kind, None)
                tau = folded if tau is None else _merge_interleaved(
                    _Block(tau.terms, tau.kind, None), folded
                )
            out[TAU] = tau
        return out
    left = _tree_blocks(node.left, leaf_blocks)
    right = _tree_blocks(node.right, leaf_blocks)
    out = {}
    for action in sorted(set(left) | set(right)):
        if action in node.actions:
            if action in left and action in right:
                out[action] = _synchronise(action, left[action], right[action])
            # A shared action only one side can ever perform is blocked
            # for good: no block, no transitions.
        else:
            out[action] = _merge_interleaved(left.get(action), right.get(action))
    return out


# ---------------------------------------------------------------------------
# Projection + entry points
# ---------------------------------------------------------------------------
def _annotate_sizes(node: _TreeNode) -> int:
    if isinstance(node, _LeafNode):
        return node.size
    if isinstance(node, _HideNode):
        node.size = _annotate_sizes(node.child)
        return node.size
    node.size = _annotate_sizes(node.left) * _annotate_sizes(node.right)
    return node.size


def _project(state: Expression, node: _TreeNode) -> int:
    """Map a global derivative onto its product-space index by walking
    the component tree in step with the state's syntactic shape."""
    if isinstance(node, _CoopNode):
        if not isinstance(state, Cooperation) or state.actions != node.actions:
            raise DescriptorUnsupported(
                "reachable state no longer matches the system equation shape"
            )
        return (
            _project(state.left, node.left) * node.right.size
            + _project(state.right, node.right)
        )
    if isinstance(node, _HideNode):
        if not isinstance(state, Hiding) or state.actions != node.actions:
            raise DescriptorUnsupported(
                "reachable state no longer matches the system equation shape"
            )
        return _project(state.expr, node.child)
    try:
        return node.index[state]
    except KeyError:
        raise DescriptorUnsupported(
            "reachable state outside the component's local closure"
        ) from None


def build_descriptor(
    space: Lts,
    environment: Environment,
    *,
    max_local_states: int = MAX_LOCAL_STATES,
    max_product_size: int = MAX_PRODUCT_SIZE,
    max_product_ratio: int = MAX_PRODUCT_RATIO,
) -> KroneckerDescriptor:
    """Build the Kronecker descriptor of an explored PEPA state space.

    ``space`` is the derivation LTS (state 0 is the system expression);
    ``environment`` resolves the model's constants.  Raises
    :class:`DescriptorUnsupported` whenever the model falls outside the
    exactly-representable fragment or the product space blows up past
    the point where the descriptor could win.
    """
    if space.size == 0:
        raise DescriptorUnsupported("empty state space")
    system = space.states[0]
    if not isinstance(system, Expression):
        raise DescriptorUnsupported("not a PEPA derivation state space")

    leaves: list[_LeafNode] = []
    root = _split(system, leaves)

    leaf_moves = {
        leaf.pos: _explore_leaf(leaf, environment, max_local_states) for leaf in leaves
    }
    dims = tuple(leaf.size for leaf in leaves)
    product_size = 1
    for d in dims:
        product_size *= d
        if product_size > max_product_size:
            raise DescriptorUnsupported(
                f"product space exceeds {max_product_size} states"
            )
    if product_size > 4096 and product_size > max_product_ratio * space.size:
        raise DescriptorUnsupported(
            f"product space ({product_size}) dwarfs the reachable space "
            f"({space.size}); shuffle SpMV would lose to CSR"
        )

    blocks = _tree_blocks(root, {pos: _leaf_blocks(leaves[pos], moves)
                                 for pos, moves in leaf_moves.items()})

    terms: list[KroneckerTerm] = []
    for action in sorted(blocks):
        block = blocks[action]
        if not block.terms and block.kind == "mixed":
            raise DescriptorUnsupported(
                f"action {action!r} mixes active and passive activities at "
                "the system level"
            )
        if block.kind != "active":
            raise DescriptorUnsupported(
                f"action {action!r} stays {block.kind} at the system level"
            )
        for term in block.terms:
            terms.append(KroneckerTerm(action, term.coeff, term.factors, term.scales))
    if len(terms) > MAX_TERMS:
        raise DescriptorUnsupported(f"descriptor needs {len(terms)} terms (> {MAX_TERMS})")

    _annotate_sizes(root)
    projection = np.empty(space.size, dtype=np.int64)
    for i, state in enumerate(space.states):
        projection[i] = _project(state, root)

    try:
        return KroneckerDescriptor(dims, terms, projection)
    except ValueError as exc:  # e.g. colliding projections
        raise DescriptorUnsupported(str(exc)) from exc


def descriptor_chain(space: Lts, environment: Environment) -> CTMC:
    """A matrix-free CTMC over the descriptor generator, mirroring what
    ``build_ctmc`` produces from the arc list (labels, action-rate
    vectors, initial state) without materialising the matrix."""
    descriptor = build_descriptor(space, environment)
    labels = [space.state_label(i) for i in range(space.size)]
    return CTMC(
        labels=labels,
        action_rates=dict(descriptor.action_rates),
        initial=space.initial,
        operator=descriptor,
    )
