"""Structured operational semantics of PEPA.

This module derives the one-step transitions of a PEPA expression —
the labelled multi-transition system from which the CTMC is built —
implementing Hillston's rules:

* **Prefix**       ``(a, r).P --(a, r)--> P``
* **Choice**       transitions of either branch;
* **Constant**     transitions of the defining body;
* **Hiding**       transitions of the body, with hidden types renamed
  to the silent ``tau``;
* **Cooperation**  for ``a ∉ L`` the partners interleave; for ``a ∈ L``
  every pair of ``a``-transitions synchronises at the rate

  ``(r1/rα(P)) · (r2/rα(Q)) · min(rα(P), rα(Q))``

  where ``rα`` is the *apparent rate* — exactly the bounded-capacity
  law the paper's Definition 6 invokes ("the rate of the enabled firing
  is determined using apparent rates … as usual for PEPA").
* **Cell**         a full cell behaves as its content (the derivative
  stays inside the cell); a vacant cell is inert.  Net-level firing
  types can be excluded via ``exclude`` so that PEPA-net places only
  perform *local* transitions here (firings are handled by
  :mod:`repro.pepanets.firing`).

Transitions are a *multiset*: two syntactically identical activities
contribute twice (PEPA's multi-transition-system semantics), which the
CTMC construction then sums.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import WellFormednessError
from repro.pepa.environment import Environment
from repro.pepa.rates import Rate, cooperation_rate, rate_min, rate_sum
from repro.pepa.syntax import (
    TAU,
    Cell,
    Choice,
    Const,
    Cooperation,
    Expression,
    Hiding,
    Prefix,
)

__all__ = [
    "Transition",
    "TransitionCache",
    "derivatives",
    "apparent_rate",
    "enabled_actions",
]


@dataclass(frozen=True)
class Transition:
    """A single derivation ``source --(action, rate)--> target``.

    ``source`` is implicit (the expression the transition was derived
    from); only the label and target are stored.
    """

    action: str
    rate: Rate
    target: Expression

    def __str__(self) -> str:
        return f"--({self.action}, {self.rate})--> {self.target}"


# Kept comfortably below CPython's default recursion limit so our
# diagnostic fires before a raw RecursionError does (each depth level
# costs a handful of interpreter frames through the memo wrappers).
_MAX_CONST_DEPTH = 180


def derivatives(
    expr: Expression,
    env: Environment,
    *,
    exclude: frozenset[str] = frozenset(),
) -> list[Transition]:
    """All one-step transitions of ``expr`` (a multiset, order
    deterministic).  Action types in ``exclude`` are suppressed
    everywhere — used by PEPA nets to hold back firing types from the
    local (place-level) semantics."""
    return _derive(expr, env, exclude, 0, None)


class TransitionCache:
    """Cross-state memoisation of the SOS derivation.

    A breadth-first derivation calls :func:`derivatives` on thousands of
    global states that share almost all of their subterms — every global
    state ``P1 <L> P2`` re-derives ``P1`` and ``P2`` from scratch even
    though only one of them changed since the parent state.  Expressions
    are immutable (frozen dataclasses), so one-step transition lists and
    apparent rates can be memoised per subexpression for the lifetime of
    an exploration; every recursion node of :func:`derivatives` then
    computes at most once per *distinct* subterm instead of once per
    global state that contains it.

    Callers must treat the returned lists as immutable — cache hits
    alias the stored list.  One cache per (environment, exclude set);
    the exploration kernel's batch successor path owns one per run.
    """

    __slots__ = ("env", "exclude", "transitions", "apparent")

    def __init__(self, env: Environment, exclude: frozenset[str] = frozenset()):
        self.env = env
        self.exclude = exclude
        self.transitions: dict[Expression, list[Transition]] = {}
        self.apparent: dict[tuple[Expression, str], Rate | None] = {}

    def derivatives(self, expr: Expression) -> list[Transition]:
        """Memoised :func:`derivatives` (do not mutate the result)."""
        return _derive(expr, self.env, self.exclude, 0, self)

    def apparent_rate(self, expr: Expression, action: str) -> Rate | None:
        """Memoised :func:`apparent_rate`."""
        return apparent_rate(expr, action, self.env, cache=self)


#: Sentinel distinguishing "memoised as None" from "not memoised".
_MISSING = object()


def _derive(
    expr: Expression, env: Environment, exclude: frozenset[str], depth: int,
    cache: TransitionCache | None,
) -> list[Transition]:
    if cache is not None:
        hit = cache.transitions.get(expr)
        if hit is not None:
            return hit
    result = _derive_uncached(expr, env, exclude, depth, cache)
    if cache is not None:
        cache.transitions[expr] = result
    return result


def _derive_uncached(
    expr: Expression, env: Environment, exclude: frozenset[str], depth: int,
    cache: TransitionCache | None,
) -> list[Transition]:
    if depth > _MAX_CONST_DEPTH:
        raise WellFormednessError(
            "constant resolution exceeded depth bound; the model contains "
            "unguarded recursion (e.g. X = X)"
        )
    if isinstance(expr, Prefix):
        if expr.action in exclude:
            return []
        return [Transition(expr.action, expr.rate, expr.continuation)]
    if isinstance(expr, Choice):
        return (
            _derive(expr.left, env, exclude, depth, cache)
            + _derive(expr.right, env, exclude, depth, cache)
        )
    if isinstance(expr, Const):
        return _derive(env.resolve(expr.name), env, exclude, depth + 1, cache)
    if isinstance(expr, Hiding):
        out: list[Transition] = []
        for t in _derive(expr.expr, env, exclude, depth, cache):
            action = TAU if t.action in expr.actions else t.action
            if action in exclude:
                continue
            out.append(Transition(action, t.rate, Hiding(t.target, expr.actions)))
        return out
    if isinstance(expr, Cell):
        if expr.content is None:
            return []
        out = []
        for t in _derive(expr.content, env, exclude, depth, cache):
            target = t.target
            if not target.is_sequential():  # pragma: no cover - grammar prevents
                raise WellFormednessError("cell content evolved to a non-sequential term")
            out.append(Transition(t.action, t.rate, Cell(expr.family, target)))  # type: ignore[arg-type]
        return out
    if isinstance(expr, Cooperation):
        out = []
        left_ts = _derive(expr.left, env, exclude, depth, cache)
        right_ts = _derive(expr.right, env, exclude, depth, cache)
        # Independent (interleaved) activities.
        for t in left_ts:
            if t.action not in expr.actions:
                out.append(Transition(t.action, t.rate, Cooperation(t.target, expr.right, expr.actions)))
        for t in right_ts:
            if t.action not in expr.actions:
                out.append(Transition(t.action, t.rate, Cooperation(expr.left, t.target, expr.actions)))
        # Shared activities: every pair synchronises, rate by the
        # apparent-rate law.
        shared = {t.action for t in left_ts if t.action in expr.actions} & {
            t.action for t in right_ts if t.action in expr.actions
        }
        for action in sorted(shared):
            if cache is not None:
                ra_left = cache.apparent_rate(expr.left, action)
                ra_right = cache.apparent_rate(expr.right, action)
            else:
                ra_left = apparent_rate(expr.left, action, env)
                ra_right = apparent_rate(expr.right, action, env)
            assert ra_left is not None and ra_right is not None
            if ra_left.is_passive() and ra_right.is_passive():
                # Both sides passive: the combined activity stays passive
                # and can only proceed if an enclosing cooperation
                # provides an active partner; cooperation_rate handles it.
                pass
            for tl in left_ts:
                if tl.action != action:
                    continue
                for tr in right_ts:
                    if tr.action != action:
                        continue
                    rate = cooperation_rate(tl.rate, tr.rate, ra_left, ra_right)
                    out.append(
                        Transition(action, rate, Cooperation(tl.target, tr.target, expr.actions))
                    )
        return out
    raise TypeError(f"not a PEPA expression: {expr!r}")


def apparent_rate(
    expr: Expression, action: str, env: Environment, _depth: int = 0,
    *, cache: TransitionCache | None = None,
) -> Rate | None:
    """The apparent rate ``rα(expr)`` of ``action`` in ``expr``.

    Returns ``None`` when the expression cannot perform the action at
    all (apparent rate zero).  Raises :class:`WellFormednessError` if a
    component enables both active and passive activities of the same
    type (illegal in PEPA).  ``cache`` memoises per (subexpression,
    action) across calls; a cached entry is only stored once its
    computation completed, so the unguarded-recursion depth guard still
    fires on cyclic constants.
    """
    if cache is not None:
        key = (expr, action)
        hit = cache.apparent.get(key, _MISSING)
        if hit is not _MISSING:
            return hit  # type: ignore[return-value]
    rate = _apparent_uncached(expr, action, env, _depth, cache)
    if cache is not None:
        cache.apparent[(expr, action)] = rate
    return rate


def _apparent_uncached(
    expr: Expression, action: str, env: Environment, _depth: int,
    cache: TransitionCache | None,
) -> Rate | None:
    if _depth > _MAX_CONST_DEPTH:
        raise WellFormednessError("unguarded recursion while computing an apparent rate")
    if isinstance(expr, Prefix):
        return expr.rate if expr.action == action else None
    if isinstance(expr, Choice):
        left = apparent_rate(expr.left, action, env, _depth, cache=cache)
        right = apparent_rate(expr.right, action, env, _depth, cache=cache)
        if left is None:
            return right
        if right is None:
            return left
        return rate_sum(left, right)
    if isinstance(expr, Const):
        return apparent_rate(env.resolve(expr.name), action, env, _depth + 1, cache=cache)
    if isinstance(expr, Hiding):
        if action in expr.actions or action == TAU:
            # Hidden activities lose their type; tau has no apparent rate
            # because cooperation on tau is forbidden.
            return None
        return apparent_rate(expr.expr, action, env, _depth, cache=cache)
    if isinstance(expr, Cell):
        if expr.content is None:
            return None
        return apparent_rate(expr.content, action, env, _depth, cache=cache)
    if isinstance(expr, Cooperation):
        left = apparent_rate(expr.left, action, env, _depth, cache=cache)
        right = apparent_rate(expr.right, action, env, _depth, cache=cache)
        if action in expr.actions:
            if left is None or right is None:
                return None
            return rate_min(left, right)
        if left is None:
            return right
        if right is None:
            return left
        return rate_sum(left, right)
    raise TypeError(f"not a PEPA expression: {expr!r}")


def enabled_actions(expr: Expression, env: Environment) -> frozenset[str]:
    """The action types ``expr`` can currently perform."""
    return frozenset(t.action for t in derivatives(expr, env))


def derivative_set(family: str, env: Environment, *, max_size: int = 100_000):
    """The derivative set ``ds(family)``: every sequential state
    reachable from the constant, over all activities.

    This is the *type* of a PEPA-net cell (Definition 4's
    type-preservation side: a token may only enter a cell whose family's
    derivative set contains the token's next state), and the local-state
    universe of the population construction.
    """
    from repro.pepa.syntax import Const, Sequential

    start: Sequential = Const(family)
    seen: set[Sequential] = {start}
    frontier: list[Sequential] = [start]
    while frontier:
        current = frontier.pop()
        for tr in derivatives(current, env):
            target = tr.target
            if not isinstance(target, Sequential):
                raise WellFormednessError(
                    f"token family {family!r} evolves to a non-sequential term"
                )
            if target not in seen:
                if len(seen) >= max_size:
                    raise WellFormednessError(
                        f"derivative set of {family!r} exceeds {max_size} members"
                    )
                seen.add(target)
                frontier.append(target)
    return frozenset(seen)
