"""Tokenizer shared by the PEPA and PEPA-net parsers.

A small regex-driven lexer that tracks line/column positions for error
reporting.  Comments run from ``//`` or ``%`` to end of line; ``/* */``
block comments are also accepted.  The one subtlety is that ``/`` is
both the hiding operator and the start of a comment, so comment detection
must look ahead one character.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from repro.exceptions import PepaSyntaxError

__all__ = ["Token", "tokenize", "TokenStream"]

_TOKEN_SPEC: list[tuple[str, str]] = [
    ("NUMBER", r"\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?"),
    ("ARROW", r"->"),
    ("DEF", r"="),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("LBRACK", r"\["),
    ("RBRACK", r"\]"),
    ("LBRACE", r"\{"),
    ("RBRACE", r"\}"),
    ("LANGLE", r"<"),
    ("RANGLE", r">"),
    ("PAR", r"\|\|"),
    ("PLUS", r"\+"),
    ("STAR", r"\*"),
    ("SLASH", r"/"),
    ("DOT", r"\."),
    ("COMMA", r","),
    ("SEMI", r";"),
    ("COLON", r":"),
    ("UNDERSCORE", r"_(?![A-Za-z0-9_])"),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_']*"),
    ("MINUS", r"-"),
]

_MASTER = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))
_WS = re.compile(r"[ \t\r]+")


@dataclass(frozen=True)
class Token:
    """A lexical token with its source position (1-based)."""

    kind: str
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})"


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``, raising :class:`PepaSyntaxError` on garbage."""
    return list(_iter_tokens(source))


def _iter_tokens(source: str) -> Iterator[Token]:
    line = 1
    line_start = 0
    pos = 0
    n = len(source)
    while pos < n:
        ch = source[pos]
        if ch == "\n":
            line += 1
            pos += 1
            line_start = pos
            continue
        ws = _WS.match(source, pos)
        if ws:
            pos = ws.end()
            continue
        # Comments: //, %, /* ... */
        if source.startswith("//", pos) or ch == "%":
            nl = source.find("\n", pos)
            pos = n if nl < 0 else nl
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end < 0:
                raise PepaSyntaxError("unterminated block comment", line, pos - line_start + 1)
            # keep line counting accurate across the comment body
            line += source.count("\n", pos, end)
            if "\n" in source[pos:end]:
                line_start = source.rfind("\n", pos, end) + 1
            pos = end + 2
            continue
        m = _MASTER.match(source, pos)
        if not m:
            raise PepaSyntaxError(f"unexpected character {ch!r}", line, pos - line_start + 1)
        kind = m.lastgroup
        assert kind is not None
        yield Token(kind, m.group(), line, pos - line_start + 1)
        pos = m.end()
    yield Token("EOF", "", line, pos - line_start + 1)


class TokenStream:
    """A cursor over a token list with save/restore for backtracking.

    Backtracking is needed in exactly one spot: after ``(`` the parser
    cannot tell a parenthesised expression from a prefix ``(a, r).P``
    without parsing ahead.
    """

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._index = 0

    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def save(self) -> int:
        """Remember the cursor position for a later restore."""
        return self._index

    def restore(self, mark: int) -> None:
        """Rewind the cursor to a previously saved position."""
        self._index = mark

    def at(self, *kinds: str) -> bool:
        """True when the current token is one of the given kinds."""
        return self.current.kind in kinds

    def peek(self, offset: int = 1) -> Token:
        """Look ahead without consuming (clamped at EOF)."""
        idx = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[idx]

    def advance(self) -> Token:
        """Consume and return the current token (EOF is sticky)."""
        tok = self.current
        if tok.kind != "EOF":
            self._index += 1
        return tok

    def expect(self, kind: str, what: str | None = None) -> Token:
        """Consume a token of the given kind or raise a positioned syntax error."""
        tok = self.current
        if tok.kind != kind:
            expected = what or kind
            raise PepaSyntaxError(
                f"expected {expected} but found {tok.text!r}", tok.line, tok.column
            )
        return self.advance()

    def error(self, message: str) -> PepaSyntaxError:
        """Build a syntax error at the current token's position."""
        tok = self.current
        return PepaSyntaxError(message, tok.line, tok.column)
