"""The PEPA rate algebra.

PEPA activities carry either an *active* rate — a positive real, the
parameter of an exponential distribution — or a *passive* rate, written
``T`` (for the unbounded rate symbol, typeset as a top ``⊤`` in the
literature), optionally weighted as in ``2*T``.  Passive activities can
only proceed in cooperation with an active partner; weights resolve the
relative probability when several passive activities of the same type
compete for one active partner.

The arithmetic required by Hillston's apparent-rate definition is:

* ``r1 + r2``           for two actives — ordinary addition;
* ``w1*T + w2*T = (w1+w2)*T``  for two passives;
* active + passive      is *illegal* inside a single apparent rate
  (a component may not enable both an active and a passive activity of
  the same type — this is the standard PEPA restriction) and raises
  :class:`~repro.exceptions.RateError`;
* ``min(r, w*T) = r``   — a passive rate dominates every active rate;
* ``min(w1*T, w2*T) = min(w1,w2)*T``;
* division ``r1 / r2`` of like kinds yields a plain float ratio
  (``w1*T / w2*T = w1/w2``), used for the probabilistic split in the
  cooperation rule.

Instances are immutable and hashable so they can live inside frozen AST
nodes and transition labels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import RateError

__all__ = ["Rate", "ActiveRate", "PassiveRate", "rate_sum", "rate_min", "as_rate", "PASSIVE"]


@dataclass(frozen=True)
class Rate:
    """Abstract base for PEPA rates.  Use :class:`ActiveRate` or
    :class:`PassiveRate`; this class only hosts shared helpers."""

    def is_passive(self) -> bool:
        """True for passive (unbounded) rates, False for actives."""
        raise NotImplementedError

    @property
    def value(self) -> float:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True)
class ActiveRate(Rate):
    """An exponential rate: a strictly positive real number."""

    rate: float

    def __post_init__(self) -> None:
        if not (self.rate > 0.0) or math.isinf(self.rate) or math.isnan(self.rate):
            raise RateError(f"active rate must be a positive finite real, got {self.rate!r}")

    def is_passive(self) -> bool:
        return False

    @property
    def value(self) -> float:
        return self.rate

    def __str__(self) -> str:
        return f"{self.rate:g}"


@dataclass(frozen=True)
class PassiveRate(Rate):
    """The unbounded rate ``w*T``; ``weight`` defaults to 1."""

    weight: float = 1.0

    def __post_init__(self) -> None:
        if not (self.weight > 0.0) or math.isinf(self.weight) or math.isnan(self.weight):
            raise RateError(f"passive weight must be a positive finite real, got {self.weight!r}")

    def is_passive(self) -> bool:
        return True

    @property
    def value(self) -> float:
        raise RateError("a passive rate has no numeric value; it must cooperate with an active partner")

    def __str__(self) -> str:
        return "T" if self.weight == 1.0 else f"{self.weight:g}*T"


#: The canonical unweighted passive rate.
PASSIVE = PassiveRate(1.0)


def as_rate(value: float | Rate) -> Rate:
    """Coerce a plain number to an :class:`ActiveRate`; pass rates through."""
    if isinstance(value, Rate):
        return value
    return ActiveRate(float(value))


def rate_sum(a: Rate, b: Rate) -> Rate:
    """PEPA rate addition, used to total apparent rates.

    Raises :class:`RateError` when mixing active and passive, which PEPA
    forbids within one action type of one component.
    """
    if a.is_passive() != b.is_passive():
        raise RateError(
            "cannot sum active and passive rates: a component may not enable "
            "both an active and a passive activity of the same action type"
        )
    if a.is_passive():
        assert isinstance(a, PassiveRate) and isinstance(b, PassiveRate)
        return PassiveRate(a.weight + b.weight)
    return ActiveRate(a.value + b.value)


def rate_min(a: Rate, b: Rate) -> Rate:
    """PEPA rate minimum, used by the cooperation rule.

    A passive rate behaves as +infinity, so ``min(r, w*T) = r``.
    """
    if a.is_passive() and b.is_passive():
        assert isinstance(a, PassiveRate) and isinstance(b, PassiveRate)
        return PassiveRate(min(a.weight, b.weight))
    if a.is_passive():
        return b
    if b.is_passive():
        return a
    return a if a.value <= b.value else b


def rate_ratio(part: Rate, whole: Rate) -> float:
    """The probabilistic share ``part/whole`` of like-kind rates.

    For actives this is the ordinary ratio; for passives it is the
    weight ratio.  Mixing kinds is a programming error here because the
    apparent rate of a component is always of the same kind as each of
    its contributing activities.
    """
    if part.is_passive() != whole.is_passive():
        raise RateError("rate ratio requires rates of the same kind")
    if part.is_passive():
        assert isinstance(part, PassiveRate) and isinstance(whole, PassiveRate)
        return part.weight / whole.weight
    return part.value / whole.value


def cooperation_rate(r1: Rate, r2: Rate, apparent1: Rate, apparent2: Rate) -> Rate:
    """The rate of a shared activity under the PEPA cooperation rule.

    Given the two partners' individual activity rates ``r1``/``r2`` and
    their apparent rates for the action type, the joint rate is::

        (r1/ra1) * (r2/ra2) * min(ra1, ra2)

    When both sides are passive the result stays passive (the weight is
    combined multiplicatively over shares and by min over totals),
    allowing nested cooperations to resolve once an active partner
    appears further out.
    """
    share = rate_ratio(r1, apparent1) * rate_ratio(r2, apparent2)
    floor = rate_min(apparent1, apparent2)
    if floor.is_passive():
        assert isinstance(floor, PassiveRate)
        return PassiveRate(share * floor.weight)
    return ActiveRate(share * floor.value)
