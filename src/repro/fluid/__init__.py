"""Fluid (mean-field) analysis of replicated PEPA populations.

Compiles the counting semantics of :mod:`repro.pepa.population` into a
numerical vector form (activity matrices + mean-field vector field, per
Ding & Hillston arXiv:1012.3040) and solves its ODEs — throughput,
utilisation and local-state occupancy for arbitrary replica counts in
time independent of N.  Cross-validated three ways against the exact
CTMC and the SSA engine by :mod:`repro.fluid.crossval`.
"""

from repro.fluid.crossval import (
    FAMILIES,
    CheckResult,
    CrossValidationReport,
    Family,
    run_crossval,
)
from repro.fluid.nvf import NumericalVectorForm, compile_nvf, nvf_of_model
from repro.fluid.ode import FLUID_METHODS, FluidAnalysis, analyse_fluid, steady_fluid, trajectory
from repro.fluid.shape import FluidUnsupported, PopulationShape, population_shape

__all__ = [
    "FluidUnsupported",
    "PopulationShape",
    "population_shape",
    "NumericalVectorForm",
    "compile_nvf",
    "nvf_of_model",
    "FluidAnalysis",
    "FLUID_METHODS",
    "analyse_fluid",
    "steady_fluid",
    "trajectory",
    "Family",
    "FAMILIES",
    "CheckResult",
    "CrossValidationReport",
    "run_crossval",
]
