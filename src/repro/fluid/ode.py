"""Fluid (mean-field) analysis: ODE integration and steady states.

The NVF's vector field is a small autonomous ODE system — dimension =
local states, not global states — so both transient trajectories and
steady states are millisecond work at any replica count.  Steady states
are found through an ordered fallback chain in the style of
:func:`repro.resilience.fallback.solve_with_fallback`:

* ``newton`` — damped Newton iteration on ``F(x) = 0`` with a
  finite-difference Jacobian and one conservation row substituted per
  invariant class (replica mass = N, environment mass = 1), warm-started
  by a short integration burst;
* ``ode`` — integrate to stationarity over doubling horizons with
  ``scipy.integrate.solve_ivp`` (LSODA, which switches between stiff
  and non-stiff steppers itself; Radau then RK45 as back-ends of last
  resort);
* ``damped`` — a conservative explicit Euler fixed-point iteration,
  the always-converging-slowly safety net.

Every attempt is recorded in a
:class:`~repro.resilience.fallback.SolveDiagnostics`, and a candidate
is only accepted if ``‖F(x)‖∞`` passes a scale-aware residual bound —
the same trust-but-verify discipline as the CTMC chain.  Progress is
observable as ``fluid.step`` events (sampled per RHS evaluation batch)
under a ``fluid.solve`` span, and :func:`analyse_fluid` caches the
solved vector under the model's :class:`~repro.core.keys.DerivationKey`
with variant ``fluid`` so batch reruns skip the solve entirely.
"""

from __future__ import annotations

import time

import numpy as np

from repro.exceptions import SolverError
from repro.fluid.nvf import NumericalVectorForm, nvf_of_model
from repro.obs import get_events, get_tracer
from repro.pepa.environment import PepaModel
from repro.resilience.fallback import SolveDiagnostics

__all__ = ["FluidAnalysis", "FLUID_METHODS", "steady_fluid", "analyse_fluid"]

#: The default steady-state fallback chain, tried left to right.
FLUID_METHODS = ("newton", "ode", "damped")

#: Emit one ``fluid.step`` event per this many RHS evaluations.
_STEP_EVERY = 200

#: Payload schema of cached fluid solutions; bump on layout changes.
CACHE_SCHEMA = "repro-fluid/1"


class FluidAnalysis:
    """A solved fluid model with measure accessors.

    The occupancy vector ``x`` assigns each replica local state its
    expected count (summing to ``replicas``) and each environment state
    its probability.  Accessors mirror
    :class:`~repro.pepa.measures.ModelAnalysis` where the quantities
    coincide in the fluid limit: ``throughput`` is the steady action
    flow, ``occupancy`` the expected count, ``probability_of_local_state``
    the occupancy *fraction* (count / N for replica states, the raw
    probability for environment states).
    """

    def __init__(self, names: list[str], n_replica_states: int, replicas: int,
                 x: np.ndarray, throughputs: dict[str, float], method: str,
                 diagnostics: SolveDiagnostics | None = None,
                 nvf: NumericalVectorForm | None = None):
        self.names = names
        self.n_replica_states = n_replica_states
        self.replicas = replicas
        self.x = np.asarray(x, dtype=float)
        self._throughputs = dict(throughputs)
        self.solver = method
        self.diagnostics = diagnostics
        self.nvf = nvf
        #: Set when the solution was fetched from / published to the
        #: ambient derivation cache.
        self.cache_key = None

    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        """Coordinates of the vector form (independent of ``replicas``)."""
        return len(self.names)

    def throughput(self, action: str) -> float:
        """Completions of ``action`` per time unit in the fluid limit."""
        return self._throughputs.get(action, 0.0)

    def all_throughputs(self) -> dict[str, float]:
        """Steady flow of every action type, keyed by name."""
        return dict(self._throughputs)

    def _coord(self, name: str) -> int:
        try:
            return self.names.index(name)
        except ValueError:
            raise SolverError(
                f"no fluid coordinate named {name!r}; "
                f"coordinates are {self.names}"
            ) from None

    def occupancy(self, name: str) -> float:
        """Expected replica count in local state ``name`` (or the
        probability of an environment state)."""
        return float(self.x[self._coord(name)])

    def occupancies(self) -> dict[str, float]:
        """Every coordinate's steady occupancy, keyed by name."""
        return {name: float(v) for name, v in zip(self.names, self.x)}

    def probability_of_local_state(self, name: str) -> float:
        """Occupancy fraction: count / N for a replica state, the state
        probability itself for an environment state."""
        i = self._coord(name)
        if i < self.n_replica_states:
            return float(self.x[i]) / self.replicas
        return float(self.x[i])


def _residual_bound(nvf: NumericalVectorForm, n: int, tol: float) -> float:
    """Scale-aware acceptance bound on ``‖F(x)‖∞``: flows scale with
    both the rate constants and the replica mass."""
    return tol * max(1.0, nvf.rate_scale) * max(1.0, float(n))


def _make_rhs(nvf: NumericalVectorForm, counter: dict):
    """The vector field wrapped with sampled ``fluid.step`` events."""
    events = get_events()

    def rhs(t: float, x: np.ndarray) -> np.ndarray:
        counter["nfev"] += 1
        dx = nvf.vector_field(x)
        if events.enabled and counter["nfev"] % _STEP_EVERY == 0:
            events.emit(
                "fluid.step", t=float(t), nfev=counter["nfev"],
                dx_inf=float(np.abs(dx).max()),
            )
        return dx

    return rhs


def _project(nvf: NumericalVectorForm, x: np.ndarray, n: int) -> np.ndarray:
    """Clip tiny negatives and restore the per-class mass invariants."""
    x = np.clip(x, 0.0, None)
    for idx, target in nvf.conservation_classes():
        total = float(n) if target is None else target
        mass = float(x[idx].sum())
        if mass > 0.0:
            x[idx] *= total / mass
    return x


# ----------------------------------------------------------------------
# The three steady-state methods
# ----------------------------------------------------------------------
def _steady_ode(nvf: NumericalVectorForm, x0: np.ndarray, n: int,
                bound: float, counter: dict) -> np.ndarray:
    """Integrate to stationarity over doubling horizons.

    LSODA switches between Adams and BDF steppers by itself, so the one
    call is stiffness-aware; Radau and RK45 only run if LSODA's wrapper
    errors outright (e.g. a missing LAPACK path).
    """
    from scipy.integrate import solve_ivp

    rhs = _make_rhs(nvf, counter)
    x = x0.copy()
    horizon = 1.0 / max(1.0, nvf.rate_scale)
    last_error: Exception | None = None
    for _ in range(40):  # horizons up to ~2^40 / rate_scale
        for method in ("LSODA", "Radau", "RK45"):
            try:
                sol = solve_ivp(rhs, (0.0, horizon), x, method=method,
                                rtol=1e-10, atol=1e-12 * max(1.0, float(n)))
                break
            except Exception as exc:  # noqa: BLE001 — try the next stepper
                last_error = exc
        else:
            raise SolverError(
                f"every ODE stepper failed: {last_error}"
            ).with_context(stage="fluid.solve")
        if not sol.success:
            raise SolverError(
                f"ODE integration failed at horizon {horizon:g}: {sol.message}"
            ).with_context(stage="fluid.solve")
        x = _project(nvf, sol.y[:, -1], n)
        if float(np.abs(nvf.vector_field(x)).max()) <= bound:
            return x
        horizon *= 2.0
    raise SolverError(
        "ODE integration did not reach stationarity; the fluid model may "
        "oscillate (limit cycle) rather than settle"
    ).with_context(stage="fluid.solve")


def _steady_newton(nvf: NumericalVectorForm, x0: np.ndarray, n: int,
                   bound: float, counter: dict) -> np.ndarray:
    """Damped Newton on ``F(x) = 0`` with conservation rows substituted.

    ``F`` is singular along the invariant directions, so per class one
    equation (the row of the currently best-occupied coordinate) is
    replaced by the mass constraint.  Steps backtrack until the residual
    improves and iterates are projected back onto the feasible set.
    """
    from scipy.integrate import solve_ivp

    rhs = _make_rhs(nvf, counter)
    # Warm start: a short integration burst moves the iterate into the
    # attractor's basin, where Newton is quadratic.
    sol = solve_ivp(rhs, (0.0, 20.0 / max(1.0, nvf.rate_scale)), x0,
                    method="LSODA", rtol=1e-8, atol=1e-10 * max(1.0, float(n)))
    x = _project(nvf, sol.y[:, -1] if sol.success else x0.copy(), n)
    classes = nvf.conservation_classes()
    d = nvf.dimension
    events = get_events()
    for iteration in range(60):
        f = nvf.vector_field(x)
        resid = float(np.abs(f).max())
        if events.enabled:
            events.emit("fluid.step", method="newton", iteration=iteration,
                        residual=resid)
        if resid <= bound:
            return x
        jac = np.empty((d, d))
        for j in range(d):
            h = 1e-7 * max(1.0, abs(float(x[j])))
            xp = x.copy()
            xp[j] += h
            jac[:, j] = (nvf.vector_field(xp) - f) / h
            counter["nfev"] += 1
        rhs_vec = -f
        for idx, target in classes:
            total = float(n) if target is None else target
            row = int(idx[np.argmax(x[idx])])
            jac[row, :] = 0.0
            jac[row, idx] = 1.0
            rhs_vec[row] = total - float(x[idx].sum())
        try:
            delta = np.linalg.solve(jac, rhs_vec)
        except np.linalg.LinAlgError:
            delta = np.linalg.lstsq(jac, rhs_vec, rcond=None)[0]
        step = 1.0
        for _ in range(25):
            candidate = _project(nvf, x + step * delta, n)
            if float(np.abs(nvf.vector_field(candidate)).max()) < resid:
                x = candidate
                break
            step *= 0.5
        else:
            raise SolverError(
                f"Newton stalled at residual {resid:.3e} (bound {bound:.3e})"
            ).with_context(stage="fluid.solve")
    raise SolverError(
        "Newton iteration exhausted its budget without converging"
    ).with_context(stage="fluid.solve")


def _steady_damped(nvf: NumericalVectorForm, x0: np.ndarray, n: int,
                   bound: float, counter: dict) -> np.ndarray:
    """Explicit Euler fixed-point iteration with adaptive damping."""
    x = x0.copy()
    eta = 0.2 / max(1.0, nvf.rate_scale)
    resid = float(np.abs(nvf.vector_field(x)).max())
    events = get_events()
    for iteration in range(200_000):
        f = nvf.vector_field(x)
        counter["nfev"] += 1
        resid = float(np.abs(f).max())
        if resid <= bound:
            return x
        candidate = _project(nvf, x + eta * f, n)
        new_resid = float(np.abs(nvf.vector_field(candidate)).max())
        if new_resid > resid:
            eta *= 0.5
            if eta < 1e-12:
                break
            continue
        x = candidate
        if events.enabled and iteration % _STEP_EVERY == 0:
            events.emit("fluid.step", method="damped", iteration=iteration,
                        residual=resid)
    raise SolverError(
        f"damped iteration stalled at residual {resid:.3e} (bound {bound:.3e})"
    ).with_context(stage="fluid.solve")


_METHOD_FNS = {"ode": _steady_ode, "newton": _steady_newton, "damped": _steady_damped}


def steady_fluid(
    nvf: NumericalVectorForm,
    n_replicas: int,
    *,
    methods: tuple[str, ...] | str = FLUID_METHODS,
    residual_tol: float = 1e-10,
) -> tuple[np.ndarray, SolveDiagnostics]:
    """Solve the fluid steady state through the fallback chain.

    Returns ``(x, diagnostics)``; raises :class:`SolverError` (with the
    diagnostics attached) only when every method failed.
    """
    if isinstance(methods, str):
        methods = tuple(m.strip() for m in methods.split(",") if m.strip())
    unknown = [m for m in methods if m not in _METHOD_FNS]
    if unknown or not methods:
        raise SolverError(
            f"unknown fluid method(s) {unknown} in {methods!r}; "
            f"choose from {sorted(_METHOD_FNS)}"
        )
    bound = _residual_bound(nvf, n_replicas, residual_tol)
    x0 = nvf.initial_vector(n_replicas)
    diag = SolveDiagnostics(n_states=nvf.dimension)
    counter = {"nfev": 0}
    start = time.monotonic()
    tracer = get_tracer()
    with tracer.span("fluid.solve", dimension=nvf.dimension,
                     replicas=n_replicas, methods=",".join(methods)) as span:
        for method in methods:
            t0 = time.monotonic()
            try:
                x = _METHOD_FNS[method](nvf, x0, n_replicas, bound, counter)
            except SolverError as exc:
                diag.record(method, 1, "failed", time.monotonic() - t0,
                            detail=str(exc))
                continue
            except Exception as exc:  # noqa: BLE001 — any back-end blow-up
                diag.record(method, 1, "error", time.monotonic() - t0,
                            detail=f"{type(exc).__name__}: {exc}")
                continue
            residual = float(np.abs(nvf.vector_field(x)).max())
            if not np.isfinite(residual) or residual > bound:
                diag.record(
                    method, 1, "bad-residual", time.monotonic() - t0,
                    residual=residual,
                    detail=f"‖F(x)‖∞ = {residual:.3e} above bound {bound:.3e}",
                )
                continue
            diag.record(method, 1, "converged", time.monotonic() - t0,
                        residual=residual)
            diag.method = method
            diag.elapsed = time.monotonic() - start
            span.set(solved_by=method, residual=residual, nfev=counter["nfev"])
            return x, diag
        diag.elapsed = time.monotonic() - start
        span.set(solved_by="none", nfev=counter["nfev"])
        failures = "; ".join(
            f"{a.method}: {a.outcome}" + (f" ({a.detail})" if a.detail else "")
            for a in diag.attempts
        )
        exc = SolverError(
            f"all {len(methods)} fluid method(s) failed: {failures}"
        ).with_context(stage="fluid.solve")
        exc.diagnostics = diag
        raise exc


def trajectory(
    nvf: NumericalVectorForm,
    n_replicas: int,
    t_end: float,
    *,
    n_points: int = 200,
) -> tuple[np.ndarray, np.ndarray]:
    """The transient fluid trajectory over ``[0, t_end]``.

    Returns ``(times, X)`` with ``X[i]`` the occupancy vector at
    ``times[i]``; LSODA handles stiff and non-stiff regimes alike.
    """
    from scipy.integrate import solve_ivp

    counter = {"nfev": 0}
    times = np.linspace(0.0, t_end, n_points)
    sol = solve_ivp(_make_rhs(nvf, counter), (0.0, t_end),
                    nvf.initial_vector(n_replicas), method="LSODA",
                    t_eval=times, rtol=1e-8,
                    atol=1e-10 * max(1.0, float(n_replicas)))
    if not sol.success:
        raise SolverError(
            f"transient fluid integration failed: {sol.message}"
        ).with_context(stage="fluid.solve")
    return sol.t, sol.y.T


def analyse_fluid(
    model: PepaModel,
    *,
    replicas: int | None = None,
    methods: tuple[str, ...] | str = FLUID_METHODS,
    residual_tol: float = 1e-10,
) -> FluidAnalysis:
    """Compile the model's NVF and solve its fluid steady state.

    ``replicas`` overrides the replica count spelled out in the system
    equation — the whole point of the fluid route: the model file stays
    small while ``N`` scales freely.  With an ambient derivation cache
    installed the solved vector is content-addressed under the model
    source + replica count (variant ``fluid``), so reruns skip both
    compilation and solving.
    """
    from repro.batch.cache import get_cache

    cache = get_cache()
    key = None
    if cache is not None:
        from repro.core.keys import DerivationKey
        from repro.pepa.export import model_source

        n_for_key = replicas  # may be None: resolved by the model text
        key = DerivationKey.of(
            "pepa", model_source(model),
            {"replicas": n_for_key} if n_for_key is not None else None,
        ).child("fluid")
        payload = cache.fetch(key)
        if payload is not None and payload.get("schema") == CACHE_SCHEMA:
            analysis = FluidAnalysis(
                payload["names"], payload["n_replica_states"],
                payload["replicas"], np.asarray(payload["x"]),
                payload["throughputs"], payload["method"],
            )
            analysis.cache_key = key
            return analysis

    nvf, _shape, n = nvf_of_model(model, replicas)
    x, diag = steady_fluid(nvf, n, methods=methods, residual_tol=residual_tol)
    throughputs = nvf.action_flows(x)
    analysis = FluidAnalysis(
        nvf.names, nvf.n_replica_states, n, x, throughputs,
        diag.method or "fluid", diagnostics=diag, nvf=nvf,
    )
    if cache is not None and key is not None:
        cache.store(key, {
            "schema": CACHE_SCHEMA,
            "names": analysis.names,
            "n_replica_states": analysis.n_replica_states,
            "replicas": n,
            "x": [float(v) for v in x],
            "throughputs": {k: float(v) for k, v in throughputs.items()},
            "method": analysis.solver,
        })
        analysis.cache_key = key
    return analysis
