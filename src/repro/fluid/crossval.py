"""Three-way cross-validation of the fluid analyzer.

The fluid route is only trustworthy if it agrees with the two routes we
already trust, where their domains overlap:

1. **Exact at small N** — for model families whose vector field is
   linear in the occupancy vector (pure interleaving; shared actions
   against a single-state passive environment) the mean-field equations
   are the *exact* equations of the expected counts, so fluid occupancy
   and throughput must match the exact population CTMC to solver
   precision at any replica count.
2. **Convergence as N grows** — for genuinely nonlinear families
   (an active multi-state environment, e.g. a shared server) the fluid
   limit is asymptotic: the scaled exact occupancies must approach the
   scaled fluid ones as N doubles.
3. **SSA at large N** — at replica counts far beyond exact reach, an
   unbiased Gillespie estimate over the *population* chain (same CTMC
   by exact lumping, so N = 1000 simulates in counting space) must
   produce confidence intervals containing the fluid point estimate.

:func:`run_crossval` runs the battery over a seeded family registry and
returns a :class:`CrossValidationReport` whose summary line is stable
and greppable — it is both the test-suite oracle and the CI gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ctmc.steady import steady_state
from repro.exceptions import ReproError
from repro.fluid.ode import analyse_fluid
from repro.fluid.shape import population_shape
from repro.pepa.environment import Environment, PepaModel
from repro.pepa.population import PopulationModel, PopulationState, population_ctmc
from repro.pepa.rates import ActiveRate, PassiveRate
from repro.pepa.syntax import Const, Cooperation, Expression, Prefix
from repro.sim.estimators import estimate_throughput, replicate
from repro.utils.formatting import format_table

__all__ = [
    "Family",
    "FAMILIES",
    "CheckResult",
    "CrossValidationReport",
    "run_crossval",
]


@dataclass(frozen=True)
class Family:
    """One workload family of the battery.

    ``exact`` marks families whose fluid equations are exact at every N
    (linear vector field) — these get the 1e-6 element-level check;
    nonlinear families get the convergence check instead.  ``action``
    is the throughput compared against SSA intervals.
    """

    name: str
    builder: object  # (n_replicas) -> PepaModel
    exact: bool
    action: str


def _interleave(name: str, n: int) -> Expression:
    expr: Expression = Const(name)
    for _ in range(n - 1):
        expr = Cooperation(expr, Const(name), frozenset())
    return expr


def roaming_sessions_model(n: int) -> PepaModel:
    """Pure interleaving: n sessions cycling download → handover.

    No cooperation at all, so every flow is linear and the fluid
    equations are exact (the PEPA-net roaming fleet's local dynamics).
    """
    env = Environment()
    env.define("Session", Prefix("download", ActiveRate(1.0), Const("Roaming")))
    env.define("Roaming", Prefix("handover", ActiveRate(0.5), Const("Session")))
    return PepaModel(env, _interleave("Session", n))


def file_sink_model(n: int) -> PepaModel:
    """n reader/writer cycles feeding a single passive sink.

    The environment has exactly one state and is passive on the shared
    action, so the shared flow reduces to ``Σ xₛ·r`` — linear, hence
    the fluid equations are exact at every N.
    """
    env = Environment()
    env.define("Reader", Prefix("read", ActiveRate(1.5), Const("Writer")))
    env.define("Writer", Prefix("write", ActiveRate(2.0), Const("Reader")))
    env.define("Sink", Prefix("write", PassiveRate(), Const("Sink")))
    system = Cooperation(_interleave("Reader", n), Const("Sink"),
                         frozenset({"write"}))
    return PepaModel(env, system)


def message_bus_model(n: int) -> PepaModel:
    """n three-phase messaging clients sharing a passive one-state bus.

    Same linearity argument as :func:`file_sink_model`, with a longer
    replica cycle so occupancy spreads over three local states.
    """
    env = Environment()
    env.define("Compose", Prefix("compose", ActiveRate(1.2), Const("Send")))
    env.define("Send", Prefix("send", ActiveRate(3.0), Const("Rest")))
    env.define("Rest", Prefix("rest", ActiveRate(0.8), Const("Compose")))
    env.define("Bus", Prefix("send", PassiveRate(), Const("Bus")))
    system = Cooperation(_interleave("Compose", n), Const("Bus"),
                         frozenset({"send"}))
    return PepaModel(env, system)


def client_server_family(n: int) -> PepaModel:
    """n clients against one two-state server, sharing ``request`` only.

    Both sides of the shared action carry *active* rates, so its flow
    follows the ``min`` apparent-rate law — genuinely nonlinear, and
    exact only in the limit (the convergence check's subject).  At
    small N the client side binds (``2·n_Ready < 10``); at large N the
    server saturates and runs as an autonomous alternating-renewal
    process, so the fluid throughput ``1/(1/10 + 1/5) = 10/3`` is also
    the true large-N value the SSA containment check sees.  Only one
    action is shared on purpose: pairing a second shared action through
    the same single server would force the strict request/response
    alternation ``n_Wait ∈ {0, 1}``, a correlation with the fixed-size
    environment that no mean-field (product-form) limit can represent.
    """
    env = Environment()
    env.define("Think", Prefix("think", ActiveRate(1.0), Const("Ready")))
    env.define("Ready", Prefix("request", ActiveRate(2.0), Const("Wait")))
    env.define("Wait", Prefix("respond", ActiveRate(4.0), Const("Think")))
    env.define("Idle", Prefix("request", ActiveRate(10.0), Const("Serve")))
    env.define("Serve", Prefix("reset", ActiveRate(5.0), Const("Idle")))
    system = Cooperation(_interleave("Think", n), Const("Idle"),
                         frozenset({"request"}))
    return PepaModel(env, system)


#: The battery, in check order.  Three exact (linear) families satisfy
#: the small-N agreement gate; the client/server family exercises the
#: nonlinear regime via convergence and SSA containment.
FAMILIES: dict[str, Family] = {
    "roaming_sessions": Family("roaming_sessions", roaming_sessions_model,
                               exact=True, action="download"),
    "file_sink": Family("file_sink", file_sink_model,
                        exact=True, action="write"),
    "message_bus": Family("message_bus", message_bus_model,
                          exact=True, action="send"),
    "client_server": Family("client_server", client_server_family,
                            exact=False, action="request"),
}


@dataclass
class CheckResult:
    """One agreement check: what was compared and how it came out."""

    family: str
    check: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        status = "ok" if self.passed else "FAILED"
        return f"{self.family}/{self.check}: {status} — {self.detail}"


@dataclass
class CrossValidationReport:
    """The battery's outcome: every check, plus render helpers."""

    results: list[CheckResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.passed for r in self.results)

    def record(self, family: str, check: str, passed: bool, detail: str) -> None:
        """Append one check outcome to the battery."""
        self.results.append(CheckResult(family, check, passed, detail))

    def summary(self) -> str:
        """One stable, greppable line — the CI gate greps for
        ``all checks passed``."""
        n_ok = sum(1 for r in self.results if r.passed)
        line = f"fluid crossval: {n_ok}/{len(self.results)} checks passed"
        if self.ok:
            return f"{line} — all checks passed"
        failing = ", ".join(
            f"{r.family}/{r.check}" for r in self.results if not r.passed
        )
        return f"{line} — FAILED: {failing}"

    def as_table(self) -> str:
        """Every check as an aligned family/check/status/detail table."""
        rows = [
            [r.family, r.check, "ok" if r.passed else "FAILED", r.detail]
            for r in self.results
        ]
        return format_table(["family", "check", "status", "detail"], rows)

    def markdown(self) -> str:
        """The comparison report uploaded as a CI artifact on failure."""
        lines = ["# Fluid cross-validation report", "", self.summary(), "",
                 "| family | check | status | detail |",
                 "| --- | --- | --- | --- |"]
        for r in self.results:
            status = "ok" if r.passed else "**FAILED**"
            lines.append(f"| {r.family} | {r.check} | {status} | {r.detail} |")
        lines.append("")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The three check kinds
# ----------------------------------------------------------------------
def _exact_measures(
    model: PepaModel, n: int
) -> tuple[dict[str, float], dict[str, float], list[PopulationState], np.ndarray]:
    """Exact expected occupancies and throughputs via the population CTMC."""
    shape = population_shape(model)
    pop = PopulationModel(model.environment, shape.replica, n,
                          shape.environment, shape.cooperation)
    states, chain = population_ctmc(
        model.environment, shape.replica, n, shape.environment, shape.cooperation
    )
    pi = steady_state(chain)
    occupancy: dict[str, float] = {name: 0.0 for name in pop.local_states}
    for state, p in zip(states, pi):
        for name, count in state.counts:
            occupancy[name] += float(p) * count
        if state.environment_state is not None:
            env_name = str(state.environment_state)
            occupancy[env_name] = occupancy.get(env_name, 0.0) + float(p)
    throughputs: dict[str, float] = {}
    for state, p in zip(states, pi):
        for action, rate, _ in pop.transitions(state):
            throughputs[action] = throughputs.get(action, 0.0) + float(p) * rate
    return occupancy, throughputs, states, pi


def _check_exact(report: CrossValidationReport, family: Family, n: int,
                 tol: float) -> None:
    model = family.builder(n)
    fluid = analyse_fluid(model)
    occupancy, throughputs, _, _ = _exact_measures(model, n)
    worst_name, worst = "", 0.0
    for name in fluid.names:
        err = abs(fluid.occupancy(name) - occupancy.get(name, 0.0))
        if err > worst:
            worst_name, worst = name, err
    passed = worst <= tol
    report.record(
        family.name, f"exact-occupancy-N{n}", passed,
        f"max |fluid − exact| = {worst:.2e} at {worst_name or '-'} (tol {tol:g})",
    )
    t_worst_name, t_worst = "", 0.0
    for action, exact_tp in throughputs.items():
        err = abs(fluid.throughput(action) - exact_tp)
        scaled = err / max(1.0, abs(exact_tp))
        if scaled > t_worst:
            t_worst_name, t_worst = action, scaled
    report.record(
        family.name, f"exact-throughput-N{n}", t_worst <= tol,
        f"max rel err = {t_worst:.2e} at {t_worst_name or '-'} (tol {tol:g})",
    )


def _check_convergence(report: CrossValidationReport, family: Family,
                       ns: tuple[int, ...]) -> None:
    """Scaled exact occupancy must approach the fluid limit as N grows."""
    errors: list[float] = []
    for n in ns:
        model = family.builder(n)
        fluid = analyse_fluid(model)
        occupancy, _, _, _ = _exact_measures(model, n)
        err = max(
            abs(fluid.occupancy(name) - occupancy.get(name, 0.0)) / n
            for name in fluid.names[: fluid.n_replica_states]
        )
        errors.append(err)
    shrinking = all(b <= a * 1.05 for a, b in zip(errors, errors[1:]))
    halved = errors[-1] <= errors[0] / 2.0 or errors[-1] < 1e-9
    rendered = ", ".join(f"N={n}: {e:.2e}" for n, e in zip(ns, errors))
    report.record(
        family.name, "convergence", shrinking and halved,
        f"scaled occupancy error {rendered}",
    )


def _check_ssa(report: CrossValidationReport, family: Family, n: int, *,
               t_end: float, warmup: float, replications: int,
               confidence: float, base_seed: int) -> None:
    """Fluid point estimate must fall inside the SSA confidence interval.

    The trajectory runs over the population (counting) chain — the same
    CTMC as the unfolded model by exact lumping — so ``n = 1000`` costs
    a transition list over local-state counts, not a 1000-way product.
    """
    model = family.builder(1)
    shape = population_shape(model)
    pop = PopulationModel(model.environment, shape.replica, n,
                          shape.environment, shape.cooperation)
    fluid = analyse_fluid(model, replicas=n)
    results = replicate(
        pop.transitions, pop.initial_state(), t_end,
        n_replications=replications, warmup=warmup, base_seed=base_seed,
    )
    estimate = estimate_throughput(results, family.action, confidence=confidence)
    value = fluid.throughput(family.action)
    low, high = estimate.interval
    report.record(
        family.name, f"ssa-ci-N{n}", estimate.covers(value),
        f"fluid {family.action} = {value:.6g} vs SSA {confidence:.0%} CI "
        f"[{low:.6g}, {high:.6g}] ({replications} reps, t={t_end:g})",
    )


def run_crossval(
    families: list[str] | None = None,
    *,
    small_ns: tuple[int, ...] = (5, 12),
    convergence_ns: tuple[int, ...] = (4, 16, 64),
    tol_exact: float = 1e-6,
    ssa_replicas: int = 1000,
    ssa_t_end: float = 20.0,
    ssa_warmup: float = 4.0,
    ssa_replications: int = 6,
    confidence: float = 0.99,
    base_seed: int = 2026,
    include_ssa: bool = True,
) -> CrossValidationReport:
    """Run the three-way battery and return its report.

    ``families`` restricts the battery to a subset of :data:`FAMILIES`
    (the CI job runs two; the full suite runs all four).  Exact
    families get the element-level check at each ``small_ns``; the
    nonlinear ones get the convergence ladder; every selected family
    gets the SSA containment check at ``ssa_replicas`` unless
    ``include_ssa`` is off.
    """
    selected = list(FAMILIES) if families is None else families
    unknown = [f for f in selected if f not in FAMILIES]
    if unknown:
        raise ReproError(
            f"unknown crossval families {unknown}; choose from {sorted(FAMILIES)}"
        )
    report = CrossValidationReport()
    for name in selected:
        family = FAMILIES[name]
        if family.exact:
            for n in small_ns:
                _check_exact(report, family, n, tol_exact)
        else:
            _check_convergence(report, family, convergence_ns)
        if include_ssa:
            _check_ssa(
                report, family, ssa_replicas,
                t_end=ssa_t_end, warmup=ssa_warmup,
                replications=ssa_replications, confidence=confidence,
                base_seed=base_seed,
            )
    return report
