"""Recognising the replicated-population shape of a system equation.

The fluid analyzer (like the exact population construction in
:mod:`repro.pepa.population`) applies to systems of the form

    (P || P || ... || P)  <L>  Q

— ``n`` textually identical replicas of one sequential constant ``P``
in pure interleaving, cooperating over ``L`` with an arbitrary (small)
environment component ``Q``; the environment (and the cooperation) may
be absent, and the replica block may sit on either side.  This module
extracts that shape from a parsed :class:`~repro.pepa.environment.PepaModel`
so the CLI's ``--fluid`` flag works on ordinary model files: the model
is written with a handful of replicas, and ``--replicas N`` rescales
the population without ever rebuilding an ``N``-wide expression.

Models outside the shape raise :class:`FluidUnsupported` with a
diagnostic naming the offending subterm — mirroring
:class:`~repro.ctmc.operator.DescriptorUnsupported`, these are
capability boundaries for the caller to fall back on, not bugs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ReproError
from repro.pepa.environment import PepaModel
from repro.pepa.syntax import Const, Cooperation, Expression

__all__ = ["FluidUnsupported", "PopulationShape", "population_shape"]


class FluidUnsupported(ReproError):
    """The model cannot be analysed by the fluid/mean-field route.

    Raised by the shape recogniser and the NVF compiler when a system
    equation falls outside the ``(P || ... || P) <L> Q`` population
    shape (or violates its rate discipline).  Callers fall back to the
    exact CTMC path — the exception is a capability boundary, so the
    message always names what was unsupported and why.
    """


@dataclass(frozen=True)
class PopulationShape:
    """The decomposed population form of a system equation.

    ``replica`` is the constant name of the replicated component,
    ``n_replicas`` how many copies the equation spells out,
    ``environment`` the (possibly absent) cooperating component and
    ``cooperation`` the shared action set (empty iff no environment or
    a pure ``||`` composition).
    """

    replica: str
    n_replicas: int
    environment: Expression | None
    cooperation: frozenset[str]

    def describe(self) -> str:
        """The shape in one line, e.g. ``Client^100 <use> Server``."""
        env = f" <{', '.join(sorted(self.cooperation))}> {self.environment}" \
            if self.environment is not None else ""
        return f"{self.replica}^{self.n_replicas}{env}"


def _interleaved_constants(expr: Expression) -> list[str] | None:
    """Flatten a pure-interleaving tree of constants, or ``None``.

    Accepts ``Const`` leaves joined by cooperations with *empty* action
    sets only; anything else (prefixes, hiding, cells, a non-empty
    cooperation) disqualifies the subtree as a replica block.
    """
    if isinstance(expr, Const):
        return [expr.name]
    if isinstance(expr, Cooperation) and not expr.actions:
        left = _interleaved_constants(expr.left)
        if left is None:
            return None
        right = _interleaved_constants(expr.right)
        if right is None:
            return None
        return left + right
    return None


def _as_replica_block(expr: Expression) -> tuple[str, int] | None:
    """``(constant, count)`` when ``expr`` is ``P || ... || P``."""
    names = _interleaved_constants(expr)
    if not names:
        return None
    if len(set(names)) != 1:
        return None
    return names[0], len(names)


def population_shape(model: PepaModel) -> PopulationShape:
    """Decompose ``model``'s system equation into its population shape.

    Raises :class:`FluidUnsupported` when the equation is not a pure
    interleaving of one constant, optionally cooperating with a single
    environment component.  When both sides of the top cooperation are
    replica blocks the larger one is taken as the population (ties go
    left) and the other becomes the environment.
    """
    system = model.system
    whole = _as_replica_block(system)
    if whole is not None:
        name, count = whole
        return PopulationShape(name, count, None, frozenset())
    if not isinstance(system, Cooperation):
        raise FluidUnsupported(
            f"system equation {system} is not a replicated population: "
            "expected (P || ... || P) <L> Q with a single repeated constant"
        )
    left = _as_replica_block(system.left)
    right = _as_replica_block(system.right)
    if left is None and right is None:
        raise FluidUnsupported(
            f"neither side of the top-level cooperation {system} is a pure "
            "interleaving of one constant; the fluid analyzer needs the "
            "(P || ... || P) <L> Q population shape"
        )
    if left is not None and right is not None:
        if right[1] > left[1]:
            left = None
        else:
            right = None
    if left is not None:
        name, count = left
        return PopulationShape(name, count, system.right, system.actions)
    assert right is not None
    name, count = right
    return PopulationShape(name, count, system.left, system.actions)
