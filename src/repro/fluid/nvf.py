"""The numerical vector form (NVF) of a replicated PEPA model.

Following Ding & Hillston (*Numerically Representing a Stochastic
Process Algebra*, arXiv:1012.3040), a population model is compiled out
of the SOS semantics into plain numerical data: a coordinate per
replica local state (occupancy counts) and per environment state
(occupancy probability of the single environment entity), plus
**activity matrices** — one sparse (source, target, rate) matrix per
action type — from which the mean-field vector field is evaluated with
a handful of numpy gathers.  The dimension is the number of *local*
states, never the replica count, so evaluating the field (and solving
the fluid ODE in :mod:`repro.fluid.ode`) costs the same at ``N = 10``
and ``N = 10^6``.

The flow of a shared action ``α`` uses the population apparent-rate
law, continuised: with replica-side mass function ``A_α(x) = Σ_s x_s ·
rα(s)`` and environment mass ``E_α(x)`` the total α-flow is
``min(A_α, E_α)`` (a passive side behaves as ``+∞``), split over
individual transitions by their share of their side's mass — exactly
the limit of :meth:`repro.pepa.population.PopulationModel.transitions`
as counts are relaxed to reals.  The approximation is *exact* (not just
asymptotic) whenever every flow is linear in ``x``: pure interleaving,
and shared actions whose environment side is a single-state passive
sink.  The cross-validation battery (:mod:`repro.fluid.crossval`)
exercises both regimes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import WellFormednessError
from repro.fluid.shape import FluidUnsupported, PopulationShape, population_shape
from repro.obs import get_tracer
from repro.pepa.environment import Environment, PepaModel
from repro.pepa.population import PopulationModel, environment_states
from repro.pepa.semantics import derivatives
from repro.pepa.syntax import Const, Expression

__all__ = ["SharedAction", "NumericalVectorForm", "compile_nvf", "nvf_of_model"]


@dataclass
class _Side:
    """One side of a shared action: its transitions as flat arrays.

    ``src``/``tgt`` index the NVF coordinate vector; ``val`` is the
    active rate or the passive weight of each transition, per ``passive``.
    """

    src: np.ndarray
    tgt: np.ndarray
    val: np.ndarray
    passive: bool

    def mass(self, x: np.ndarray) -> np.ndarray:
        """Per-transition mass ``x[src] · val`` (sums to the side's
        apparent rate — or total passive weight — under ``x``)."""
        return x[self.src] * self.val


@dataclass
class SharedAction:
    """The compiled activity data of one cooperation action type."""

    action: str
    replica: _Side
    environment: _Side

    def total_flow(self, a_repl: float, a_env: float) -> float:
        """``min`` of the two apparent rates, passive = unbounded."""
        if self.replica.passive:
            return a_env
        if self.environment.passive:
            return a_repl
        return min(a_repl, a_env)


class NumericalVectorForm:
    """Activity matrices + mean-field vector field of a population model.

    Coordinates ``0 .. n_replica_states-1`` are replica local-state
    occupancies (summing to the replica count ``N``); the remaining
    ``n_env_states`` coordinates are the environment entity's state
    probabilities (summing to 1, absent for environment-free systems).
    ``names[i]`` is the canonical label of coordinate ``i``.
    """

    def __init__(self, model: PopulationModel):
        self.replica = model.replica
        self.cooperation = model.cooperation
        self.names: list[str] = list(model.local_states)
        self.n_replica_states = len(self.names)
        index: dict[str, int] = {name: i for i, name in enumerate(self.names)}

        self.env_states: list[Expression] = []
        if model.environment_component is not None:
            self.env_states = environment_states(
                model.env, model.environment_component
            )
        env_index: dict[Expression, int] = {}
        for state in self.env_states:
            env_index[state] = len(self.names)
            self.names.append(str(state))
        self.n_env_states = len(self.env_states)
        self.dimension = len(self.names)
        self._initial_replica = str(Const(model.replica))
        self._initial_env = (
            env_index[model.environment_component]
            if model.environment_component is not None
            else None
        )

        # --- independent (linear) flows: replica and environment moves
        # whose action lies outside the cooperation set ----------------
        lin_src: list[int] = []
        lin_tgt: list[int] = []
        lin_rate: list[float] = []
        lin_action: list[str] = []
        for name, state in model.local_states.items():
            for tr in derivatives(state, model.env):
                if tr.action in model.cooperation:
                    continue
                if tr.rate.is_passive():
                    raise WellFormednessError(
                        f"replica activity ({tr.action}) is passive outside "
                        "the cooperation set; it can never proceed"
                    )
                lin_src.append(index[name])
                lin_tgt.append(index[str(tr.target)])
                lin_rate.append(tr.rate.value)
                lin_action.append(tr.action)
        for state in self.env_states:
            for tr in derivatives(state, model.env):
                if tr.action in model.cooperation:
                    continue
                if tr.rate.is_passive():
                    raise WellFormednessError(
                        f"environment activity ({tr.action}) is passive "
                        "outside the cooperation set"
                    )
                lin_src.append(env_index[state])
                lin_tgt.append(env_index[tr.target])
                lin_rate.append(tr.rate.value)
                lin_action.append(tr.action)
        self._lin_src = np.asarray(lin_src, dtype=np.intp)
        self._lin_tgt = np.asarray(lin_tgt, dtype=np.intp)
        self._lin_rate = np.asarray(lin_rate, dtype=float)
        self._lin_action = lin_action

        # --- shared activity matrices, one per cooperation action -----
        self.shared: list[SharedAction] = []
        for action in sorted(model.cooperation):
            repl = self._side(
                action,
                ((index[name], index, state)
                 for name, state in model.local_states.items()),
                model.env, side="replica",
            )
            envs = self._side(
                action,
                ((env_index[state], env_index, state)
                 for state in self.env_states),
                model.env, side="environment", env_targets=True,
            )
            if repl is None or envs is None:
                # One side can never perform the action: it never fires
                # (exactly as the exact population construction skips it).
                continue
            if repl.passive and envs.passive:
                raise WellFormednessError(
                    f"shared activity ({action}) is passive on both sides "
                    "of the cooperation"
                )
            # A passive side contributes no rate bound: the fluid flow
            # equals the active side's apparent rate *only* while the
            # passive side is enabled, and that indicator is identically
            # 1 just when the passive side has a single local state.
            # With several local states the mean-field closure of
            # E[rate · 1{enabled}] is no longer exact (nor even bounded
            # by the available mass), so we refuse rather than integrate
            # a wrong ODE.
            if repl.passive and self.n_replica_states > 1:
                raise FluidUnsupported(
                    f"shared action ({action}) is passive on the replica "
                    f"side, whose component has {self.n_replica_states} "
                    "local states; passive cooperation is only fluid-sound "
                    "for single-state sides — give the activity a finite "
                    "rate instead of T"
                )
            if envs.passive and self.n_env_states > 1:
                raise FluidUnsupported(
                    f"shared action ({action}) is passive on the "
                    f"environment side, which has {self.n_env_states} "
                    "states; passive cooperation is only fluid-sound for "
                    "single-state sides — give the activity a finite rate "
                    "instead of T"
                )
            self.shared.append(SharedAction(action, repl, envs))

        rates = [float(r) for r in self._lin_rate]
        for sa in self.shared:
            rates.extend(float(v) for v in sa.replica.val if not sa.replica.passive)
            rates.extend(
                float(v) for v in sa.environment.val if not sa.environment.passive
            )
        #: Largest rate constant appearing in any flow — the scale
        #: against which residuals are judged in the ODE analyzer.
        self.rate_scale = max(rates, default=1.0)
        self.n_flows = len(self._lin_rate) + sum(
            len(sa.replica.val) + len(sa.environment.val) for sa in self.shared
        )

    @staticmethod
    def _side(action, rows, env: Environment, *, side: str,
              env_targets: bool = False) -> _Side | None:
        src: list[int] = []
        tgt: list[int] = []
        val: list[float] = []
        kinds: set[bool] = set()
        for coord, target_index, state in rows:
            for tr in derivatives(state, env):
                if tr.action != action:
                    continue
                kinds.add(tr.rate.is_passive())
                src.append(coord)
                key = tr.target if env_targets else str(tr.target)
                tgt.append(target_index[key])
                val.append(
                    tr.rate.weight if tr.rate.is_passive() else tr.rate.value  # type: ignore[union-attr]
                )
        if not src:
            return None
        if len(kinds) > 1:
            raise FluidUnsupported(
                f"the {side} side enables shared action ({action}) with a "
                "mix of active and passive rates across its local states; "
                "the fluid apparent rate is undefined for mixed kinds"
            )
        return _Side(
            np.asarray(src, dtype=np.intp),
            np.asarray(tgt, dtype=np.intp),
            np.asarray(val, dtype=float),
            kinds.pop(),
        )

    # ------------------------------------------------------------------
    def initial_vector(self, n_replicas: int) -> np.ndarray:
        """All ``n_replicas`` mass on the replica constant, environment
        at its start state with probability 1."""
        x = np.zeros(self.dimension)
        x[self.names.index(self._initial_replica)] = float(n_replicas)
        if self._initial_env is not None:
            x[self._initial_env] = 1.0
        return x

    def vector_field(self, x: np.ndarray) -> np.ndarray:
        """``dx/dt`` of the mean-field ODE at occupancy vector ``x``."""
        dx = np.zeros(self.dimension)
        if len(self._lin_rate):
            flow = self._lin_rate * x[self._lin_src]
            np.add.at(dx, self._lin_tgt, flow)
            np.add.at(dx, self._lin_src, -flow)
        for sa in self.shared:
            p = sa.replica.mass(x)
            q = sa.environment.mass(x)
            a_repl = float(p.sum())
            a_env = float(q.sum())
            if a_repl <= 0.0 or a_env <= 0.0:
                continue
            total = sa.total_flow(a_repl, a_env)
            fr = p * (total / a_repl)
            np.add.at(dx, sa.replica.tgt, fr)
            np.add.at(dx, sa.replica.src, -fr)
            fe = q * (total / a_env)
            np.add.at(dx, sa.environment.tgt, fe)
            np.add.at(dx, sa.environment.src, -fe)
        return dx

    def action_flows(self, x: np.ndarray) -> dict[str, float]:
        """Steady flow (throughput) of every action type under ``x``."""
        flows: dict[str, float] = {}
        if len(self._lin_rate):
            per = self._lin_rate * x[self._lin_src]
            for action, f in zip(self._lin_action, per):
                flows[action] = flows.get(action, 0.0) + float(f)
        for sa in self.shared:
            a_repl = float(sa.replica.mass(x).sum())
            a_env = float(sa.environment.mass(x).sum())
            if a_repl <= 0.0 or a_env <= 0.0:
                flows.setdefault(sa.action, 0.0)
                continue
            flows[sa.action] = flows.get(sa.action, 0.0) + sa.total_flow(a_repl, a_env)
        return flows

    def activity_matrices(self) -> dict[str, list[tuple[str, str, float]]]:
        """The per-action activity matrices as (source, target, value)
        triples over coordinate names — the NVF rendered for humans
        (passive entries carry the weight)."""
        out: dict[str, list[tuple[str, str, float]]] = {}
        for action, s, t, r in zip(
            self._lin_action, self._lin_src, self._lin_tgt, self._lin_rate
        ):
            out.setdefault(action, []).append(
                (self.names[s], self.names[t], float(r))
            )
        for sa in self.shared:
            rows = out.setdefault(sa.action, [])
            for side in (sa.replica, sa.environment):
                for s, t, v in zip(side.src, side.tgt, side.val):
                    rows.append((self.names[s], self.names[t], float(v)))
        return out

    def conservation_classes(self) -> list[tuple[np.ndarray, float | None]]:
        """Index blocks whose coordinate sums are invariants: the replica
        block (sums to ``N``) and the environment block (sums to 1).
        The invariant value for the replica block is ``None`` — it
        depends on the replica count the caller analyses."""
        classes: list[tuple[np.ndarray, float | None]] = [
            (np.arange(self.n_replica_states, dtype=np.intp), None)
        ]
        if self.n_env_states:
            classes.append(
                (np.arange(self.n_replica_states, self.dimension, dtype=np.intp), 1.0)
            )
        return classes


def compile_nvf(
    env: Environment,
    replica: str,
    environment_component: Expression | None,
    cooperation: frozenset[str] | set[str],
) -> NumericalVectorForm:
    """Compile the NVF of ``replica^N <L> environment`` (any ``N``)."""
    with get_tracer().span("fluid.compile", replica=replica) as span:
        model = PopulationModel(
            env, replica, 1, environment_component, frozenset(cooperation)
        )
        nvf = NumericalVectorForm(model)
        span.set(dimension=nvf.dimension, flows=nvf.n_flows)
    return nvf


def nvf_of_model(
    model: PepaModel, replicas: int | None = None
) -> tuple[NumericalVectorForm, PopulationShape, int]:
    """Recognise ``model``'s population shape and compile its NVF.

    Returns ``(nvf, shape, n)`` where ``n`` is ``replicas`` when given
    (overriding the replica count spelled out in the system equation),
    else the count the equation spells out.  Raises
    :class:`~repro.fluid.shape.FluidUnsupported` outside the population
    shape.
    """
    shape = population_shape(model)
    n = shape.n_replicas if replicas is None else int(replicas)
    if n < 1:
        raise WellFormednessError("need at least one replica")
    nvf = compile_nvf(
        model.environment, shape.replica, shape.environment, shape.cooperation
    )
    return nvf, shape, n
