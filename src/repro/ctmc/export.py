"""CTMC interchange formats.

The paper's conclusion lists tighter integration with PRISM, ipc and
Möbius as the natural next step for Choreographer; the integration
surface for all of them is an explicit-state CTMC dump.  We provide:

* **PRISM explicit format** — ``.tra`` (transitions), ``.sta`` (states)
  and ``.lab`` (labels) files as consumed by ``prism -importtrans``;
* **MatrixMarket** — the generator as a standard sparse-matrix file;
* **Graphviz dot** — for small chains, a rendering of the derivation
  graph with action/rate arc labels.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np
import scipy.io

from repro.ctmc.chain import CTMC

__all__ = ["to_prism", "to_matrix_market", "to_dot", "write_prism_files"]


def to_prism(chain: CTMC) -> tuple[str, str, str]:
    """Render the chain as PRISM explicit-format text: returns the
    contents of the ``.tra``, ``.sta`` and ``.lab`` files."""
    rows, cols, vals = chain.to_coo_triplets()
    order = np.lexsort((cols, rows))
    tra = io.StringIO()
    tra.write(f"{chain.n_states} {len(vals)}\n")
    for k in order:
        tra.write(f"{rows[k]} {cols[k]} {vals[k]:.12g}\n")

    sta = io.StringIO()
    sta.write("(s)\n")
    for i in range(chain.n_states):
        sta.write(f"{i}:({i})\n")

    lab = io.StringIO()
    lab.write('0="init" 1="deadlock"\n')
    lab.write(f"{chain.initial}: 0\n")
    for i in chain.absorbing_states():
        lab.write(f"{int(i)}: 1\n")
    return tra.getvalue(), sta.getvalue(), lab.getvalue()


def write_prism_files(chain: CTMC, stem: str | Path) -> tuple[Path, Path, Path]:
    """Write ``<stem>.tra``, ``<stem>.sta``, ``<stem>.lab``."""
    stem = Path(stem)
    tra, sta, lab = to_prism(chain)
    paths = (stem.with_suffix(".tra"), stem.with_suffix(".sta"), stem.with_suffix(".lab"))
    for path, text in zip(paths, (tra, sta, lab)):
        path.write_text(text)
    return paths


def to_matrix_market(chain: CTMC, path: str | Path) -> Path:
    """Write the generator matrix in MatrixMarket coordinate format."""
    path = Path(path)
    scipy.io.mmwrite(str(path), chain.Q.tocoo(), comment="CTMC generator (repro)")
    # mmwrite appends .mtx when absent
    if not path.exists() and path.with_suffix(path.suffix + ".mtx").exists():
        path = path.with_suffix(path.suffix + ".mtx")
    return path


def to_dot(chain: CTMC, *, max_states: int = 200, action_arcs: bool = False) -> str:
    """A Graphviz rendering of the chain.

    With ``action_arcs`` the per-action rate vectors cannot reconstruct
    individual arcs, so the generator arcs are labelled by rate only;
    PEPA/PEPA-net state spaces keep their own action-labelled dot
    exporters at the formalism layer.
    """
    if chain.n_states > max_states:
        raise ValueError(
            f"refusing to render {chain.n_states} states as dot (limit {max_states})"
        )
    lines = ["digraph ctmc {", "  rankdir=LR;", "  node [shape=circle, fontsize=10];"]
    for i in range(chain.n_states):
        label = chain.labels[i] if chain.labels else str(i)
        label = label.replace('"', "'")
        shape = ' shape=doublecircle' if i == chain.initial else ""
        lines.append(f'  s{i} [label="{label}"{shape}];')
    rows, cols, vals = chain.to_coo_triplets()
    for r, c, v in zip(rows, cols, vals):
        lines.append(f'  s{r} -> s{c} [label="{v:g}"];')
    lines.append("}")
    return "\n".join(lines)
