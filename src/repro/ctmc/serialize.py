"""Exact round-trip serialisation of CTMCs to plain arrays.

The derivation cache (:mod:`repro.batch.cache`) persists generators on
disk and the batch engine ships chains between worker processes; both
need a representation that is (a) exact — the cached steady-state solve
must be bit-identical to the fresh one — and (b) independent of scipy's
internal sparse classes, so a cache written by one scipy version loads
under another.

Two schemas coexist:

* ``repro-ctmc/1`` — the materialised path.  The CSR triple (``data``,
  ``indices``, ``indptr``) plus the shape *is* the generator, exactly.
* ``repro-ctmc/2`` — matrix-free Kronecker descriptors: component
  dimensions, the per-term local factor matrices / scale groups, and
  the reachable-state projection.  Loading rebuilds the
  :class:`~repro.ctmc.operator.KroneckerDescriptor` (its derived
  row-total/action-rate vectors are recomputed deterministically), so a
  cached descriptor chain stays matrix-free.

:func:`ctmc_from_payload` reads both; :func:`ctmc_to_payload` writes
whichever schema matches the chain's backend, so old readers keep
working on every matrix-backed cache entry.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import scipy.sparse as sp

from repro.ctmc.chain import CTMC
from repro.ctmc.operator import KroneckerDescriptor, KroneckerTerm

__all__ = [
    "CTMC_PAYLOAD_SCHEMA",
    "CTMC_DESCRIPTOR_SCHEMA",
    "ctmc_to_payload",
    "ctmc_from_payload",
]

#: Schema tag of materialised-generator payloads; bump on incompatible
#: changes.
CTMC_PAYLOAD_SCHEMA = "repro-ctmc/1"

#: Schema tag of Kronecker-descriptor payloads.
CTMC_DESCRIPTOR_SCHEMA = "repro-ctmc/2"


def ctmc_to_payload(chain: CTMC) -> dict[str, Any]:
    """A plain-dict rendering of ``chain``.

    Descriptor-backed chains serialise symbolically (``repro-ctmc/2``)
    so the round trip never materialises; everything else serialises as
    CSR arrays (``repro-ctmc/1``).
    """
    if not chain.materialized and isinstance(chain.generator, KroneckerDescriptor):
        return _descriptor_payload(chain)
    Q = chain.Q.tocsr()
    return {
        "schema": CTMC_PAYLOAD_SCHEMA,
        "shape": [int(Q.shape[0]), int(Q.shape[1])],
        "data": np.asarray(Q.data, dtype=np.float64),
        "indices": np.asarray(Q.indices, dtype=np.int64),
        "indptr": np.asarray(Q.indptr, dtype=np.int64),
        "labels": list(chain.labels),
        "action_rates": {
            action: np.asarray(vec, dtype=np.float64)
            for action, vec in chain.action_rates.items()
        },
        "initial": int(chain.initial),
    }


def _descriptor_payload(chain: CTMC) -> dict[str, Any]:
    descriptor = chain.generator
    assert isinstance(descriptor, KroneckerDescriptor)
    return {
        "schema": CTMC_DESCRIPTOR_SCHEMA,
        "dims": [int(d) for d in descriptor.dims],
        "projection": np.asarray(descriptor.projection, dtype=np.int64),
        "terms": [
            {
                "action": term.action,
                "coeff": float(term.coeff),
                "factors": [
                    [int(pos), np.asarray(mat, dtype=np.float64)]
                    for pos, mat in sorted(term.factors.items())
                ],
                "scales": [
                    [[int(pos), np.asarray(vec, dtype=np.float64)] for pos, vec in group]
                    for group in term.scales
                ],
            }
            for term in descriptor.terms
        ],
        "labels": list(chain.labels),
        "initial": int(chain.initial),
    }


def ctmc_from_payload(payload: dict[str, Any]) -> CTMC:
    """Rebuild the exact CTMC serialised by :func:`ctmc_to_payload`
    (either schema)."""
    schema = payload.get("schema")
    if schema == CTMC_DESCRIPTOR_SCHEMA:
        terms = [
            KroneckerTerm(
                entry["action"],
                entry["coeff"],
                {pos: mat for pos, mat in entry["factors"]},
                tuple(tuple((pos, vec) for pos, vec in group) for group in entry["scales"]),
            )
            for entry in payload["terms"]
        ]
        descriptor = KroneckerDescriptor(payload["dims"], terms, payload["projection"])
        return CTMC(
            labels=list(payload["labels"]),
            action_rates=dict(descriptor.action_rates),
            initial=int(payload.get("initial", 0)),
            operator=descriptor,
        )
    if schema != CTMC_PAYLOAD_SCHEMA:
        raise ValueError(
            f"not a {CTMC_PAYLOAD_SCHEMA}/{CTMC_DESCRIPTOR_SCHEMA} payload: "
            f"schema={schema!r}"
        )
    shape = tuple(payload["shape"])
    Q = sp.csr_matrix(
        (payload["data"], payload["indices"], payload["indptr"]), shape=shape
    )
    return CTMC(
        Q,
        labels=list(payload["labels"]),
        action_rates={a: np.asarray(v) for a, v in payload["action_rates"].items()},
        initial=int(payload.get("initial", 0)),
    )
