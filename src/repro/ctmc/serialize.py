"""Exact round-trip serialisation of CTMCs to plain arrays.

The derivation cache (:mod:`repro.batch.cache`) persists generator
matrices on disk and the batch engine ships chains between worker
processes; both need a representation that is (a) exact — the cached
steady-state solve must be bit-identical to the fresh one — and (b)
independent of scipy's internal sparse classes, so a cache written by
one scipy version loads under another.

The CSR triple (``data``, ``indices``, ``indptr``) plus the shape *is*
the generator, exactly; labels and per-action rate vectors ride along
unchanged.  :func:`ctmc_to_payload` / :func:`ctmc_from_payload` are
inverse up to ``==`` on every field.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import scipy.sparse as sp

from repro.ctmc.chain import CTMC

__all__ = ["CTMC_PAYLOAD_SCHEMA", "ctmc_to_payload", "ctmc_from_payload"]

#: Schema tag embedded in every payload; bump on incompatible changes.
CTMC_PAYLOAD_SCHEMA = "repro-ctmc/1"


def ctmc_to_payload(chain: CTMC) -> dict[str, Any]:
    """A plain-dict rendering of ``chain``: CSR arrays, labels, rates."""
    Q = chain.Q.tocsr()
    return {
        "schema": CTMC_PAYLOAD_SCHEMA,
        "shape": [int(Q.shape[0]), int(Q.shape[1])],
        "data": np.asarray(Q.data, dtype=np.float64),
        "indices": np.asarray(Q.indices, dtype=np.int64),
        "indptr": np.asarray(Q.indptr, dtype=np.int64),
        "labels": list(chain.labels),
        "action_rates": {
            action: np.asarray(vec, dtype=np.float64)
            for action, vec in chain.action_rates.items()
        },
        "initial": int(chain.initial),
    }


def ctmc_from_payload(payload: dict[str, Any]) -> CTMC:
    """Rebuild the exact CTMC serialised by :func:`ctmc_to_payload`."""
    schema = payload.get("schema")
    if schema != CTMC_PAYLOAD_SCHEMA:
        raise ValueError(f"not a {CTMC_PAYLOAD_SCHEMA} payload: schema={schema!r}")
    shape = tuple(payload["shape"])
    Q = sp.csr_matrix(
        (payload["data"], payload["indices"], payload["indptr"]), shape=shape
    )
    return CTMC(
        Q,
        labels=list(payload["labels"]),
        action_rates={a: np.asarray(v) for a, v in payload["action_rates"].items()},
        initial=int(payload.get("initial", 0)),
    )
