"""Transient analysis by uniformization (Jensen's method).

``π(t) = Σ_k  Poisson(Λt; k) · π(0) Pᵏ`` with ``P = I + Q/Λ``.

Poisson weights are generated iteratively in log space to avoid
overflow, and the series is truncated once the accumulated weight
reaches ``1 - ε``.  For stiff chains an ``expm_multiply`` fallback is
provided; the benchmark suite compares both.
"""

from __future__ import annotations

import math
import time

import numpy as np
from scipy.sparse.linalg import expm_multiply

from repro.ctmc.chain import CTMC
from repro.exceptions import SolverError
from repro.obs import get_events

__all__ = ["transient_distribution", "transient_curve", "expected_rewards_at"]


def _poisson_weights(mean: float, epsilon: float) -> tuple[int, np.ndarray]:
    """Left truncation point and weights ``k = 0..R`` covering mass
    ``>= 1 - epsilon`` of Poisson(mean)."""
    if mean < 0:
        raise SolverError("uniformization requires t >= 0")
    if mean == 0:
        return 0, np.ones(1)
    # iterate until cumulative mass reaches the target
    log_p = -mean  # log P(k=0)
    weights = [math.exp(log_p)]
    cumulative = weights[0]
    k = 0
    limit = int(mean + 20 * math.sqrt(mean) + 50)
    while cumulative < 1.0 - epsilon and k < limit:
        k += 1
        log_p += math.log(mean / k)
        w = math.exp(log_p)
        weights.append(w)
        cumulative += w
    return k, np.asarray(weights)


def transient_distribution(
    chain: CTMC,
    t: float,
    initial: np.ndarray | int | None = None,
    *,
    epsilon: float = 1e-12,
    method: str = "uniformization",
) -> np.ndarray:
    """The state distribution at time ``t`` from ``initial`` (a state
    index, a distribution vector, or ``None`` for the chain's initial
    state)."""
    pi0 = _initial_vector(chain, initial)
    if t == 0.0:
        return pi0
    if t < 0:
        raise SolverError("time must be non-negative")
    if method == "expm":
        out = expm_multiply((chain.Q.transpose() * t).tocsc(), pi0)
        out = np.clip(np.asarray(out).ravel(), 0.0, None)
        return out / out.sum()
    if method != "uniformization":
        raise SolverError(f"unknown transient method {method!r}")

    P, lam = chain.uniformized()
    PT = P.transpose().tocsr()
    truncation, weights = _poisson_weights(lam * t, epsilon)
    events = get_events()
    start = time.perf_counter() if events.enabled else 0.0
    accumulated_mass = float(weights[0])
    acc = weights[0] * pi0
    vec = pi0
    for k in range(1, truncation + 1):
        vec = PT @ vec
        acc = acc + weights[k] * vec
        if events.enabled:
            accumulated_mass += float(weights[k])
            events.emit(
                "uniformization.step", step=k, of=truncation,
                weight=float(weights[k]), accumulated_mass=accumulated_mass,
                elapsed_s=round(time.perf_counter() - start, 9),
            )
    # renormalise the truncated series
    total = acc.sum()
    if total <= 0:
        raise SolverError("uniformization produced a zero vector")
    return acc / total


def transient_curve(
    chain: CTMC,
    times: np.ndarray,
    initial: np.ndarray | int | None = None,
    *,
    epsilon: float = 1e-12,
) -> np.ndarray:
    """Distributions at each time point, shape ``(len(times), n)``.

    Sorted, non-negative ``times`` are advanced incrementally so the
    work is one uniformization pass over ``max(times)``.
    """
    times = np.asarray(times, dtype=float)
    if np.any(times < 0):
        raise SolverError("times must be non-negative")
    if np.any(np.diff(times) < 0):
        raise SolverError("times must be sorted ascending")
    out = np.empty((len(times), chain.n_states))
    current = _initial_vector(chain, initial)
    prev_t = 0.0
    for i, t in enumerate(times):
        current = transient_distribution(chain, t - prev_t, current, epsilon=epsilon)
        out[i] = current
        prev_t = t
    return out


def expected_rewards_at(
    chain: CTMC,
    t: float,
    rewards: np.ndarray,
    initial: np.ndarray | int | None = None,
) -> float:
    """``E[r(X_t)]`` for a state-reward vector ``rewards``."""
    pi = transient_distribution(chain, t, initial)
    return float(pi @ np.asarray(rewards, dtype=float))


def _initial_vector(chain: CTMC, initial: np.ndarray | int | None) -> np.ndarray:
    n = chain.n_states
    if initial is None:
        initial = chain.initial
    if isinstance(initial, (int, np.integer)):
        if not (0 <= int(initial) < n):
            raise SolverError(f"initial state {initial} out of range 0..{n - 1}")
        vec = np.zeros(n)
        vec[int(initial)] = 1.0
        return vec
    vec = np.asarray(initial, dtype=float)
    if vec.shape != (n,):
        raise SolverError(f"initial distribution must have shape ({n},), got {vec.shape}")
    if vec.min() < 0 or not math.isclose(vec.sum(), 1.0, rel_tol=1e-9, abs_tol=1e-9):
        raise SolverError("initial distribution must be a probability vector")
    return vec
