"""Passage-time densities and quantiles.

The paper cites the Imperial PEPA Compiler (ipc) for "derivation of
passage-time densities in PEPA models"; this module provides the same
measures natively:

* the passage-time **density** through the absorbing-chain construction
  — ``f(t) = π_N(t) · Q_NT · 1``, the probability flux from the
  not-yet-arrived states into the target set;
* **quantiles** ("the 95th percentile of response time") by bisection
  on the CDF;
* **moments** via the recursive linear systems
  ``Q_NN m_k = -k · m_{k-1}`` (mean, variance, ...).

These are the quantitative service-level questions a design
environment gets asked about a mobile application.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse.linalg as spla

from repro.ctmc.chain import CTMC
from repro.ctmc.passage import _target_mask, passage_time_cdf
from repro.exceptions import SolverError

__all__ = ["passage_time_density", "passage_time_quantile", "passage_time_moments"]


def passage_time_density(
    chain: CTMC, source: int, targets: list[int] | np.ndarray, times: np.ndarray
) -> np.ndarray:
    """``f(t)`` of the first-passage time at each requested time.

    Computed as the entry flux into the (absorbing) target set:
    ``f(t) = Σ_{i∉T, j∈T} p_i(t) q_ij`` with ``p(t)`` the transient
    distribution of the chain with targets absorbed.
    """
    from repro.ctmc.transient import transient_distribution

    mask = _target_mask(chain, targets)
    times = np.asarray(times, dtype=float)
    if np.any(times < 0):
        raise SolverError("times must be non-negative")
    if mask[source]:
        return np.zeros_like(times)
    # absorb targets
    Q = chain.Q.tolil(copy=True)
    for t in np.flatnonzero(mask):
        Q.rows[t] = []
        Q.data[t] = []
    absorbed = CTMC(Q.tocsr(), initial=source)
    # flux vector: for each non-target state, its total rate into T
    coo = chain.Q.tocoo()
    flux = np.zeros(chain.n_states)
    for i, j, v in zip(coo.row, coo.col, coo.data):
        if i != j and v > 0 and not mask[i] and mask[j]:
            flux[i] += v
    out = np.empty(len(times))
    for k, t in enumerate(times):
        dist = transient_distribution(absorbed, float(t), source)
        out[k] = float(dist @ flux)
    return out


def passage_time_quantile(
    chain: CTMC,
    source: int,
    targets: list[int] | np.ndarray,
    probability: float,
    *,
    tolerance: float = 1e-6,
    max_iterations: int = 200,
) -> float:
    """The time ``t`` with ``P[T_hit ≤ t] = probability``, by bisection.

    Raises if the passage is not almost-surely finite enough to reach
    the requested probability within a generous horizon.
    """
    if not (0.0 < probability < 1.0):
        raise SolverError("probability must be strictly between 0 and 1")
    mask = _target_mask(chain, targets)
    if mask[source]:
        return 0.0

    def cdf(t: float) -> float:
        return float(passage_time_cdf(chain, source, np.flatnonzero(mask), np.array([t]))[0])

    # bracket the quantile
    hi = 1.0
    for _ in range(60):
        if cdf(hi) >= probability:
            break
        hi *= 2.0
    else:
        raise SolverError(
            f"P[T <= t] never reaches {probability}; are the targets reachable?"
        )
    lo = 0.0
    for _ in range(max_iterations):
        mid = 0.5 * (lo + hi)
        if hi - lo < tolerance * max(1.0, hi):
            return mid
        if cdf(mid) < probability:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def passage_time_moments(
    chain: CTMC, source: int, targets: list[int] | np.ndarray, n_moments: int = 2
) -> list[float]:
    """Raw moments ``E[Tᵏ]`` for ``k = 1..n_moments`` via the recursion
    ``Q_NN m_k = -k m_{k-1}`` (with ``m_0 = 1``)."""
    if n_moments < 1:
        raise SolverError("need at least one moment")
    mask = _target_mask(chain, targets)
    if mask[source]:
        return [0.0] * n_moments
    non_target = np.flatnonzero(~mask)
    pos = {int(s): k for k, s in enumerate(non_target)}
    Q_nn = chain.Q[non_target][:, non_target].tocsc()
    lu = spla.splu(Q_nn)
    previous = np.ones(len(non_target))
    moments: list[float] = []
    for k in range(1, n_moments + 1):
        m_k = lu.solve(-k * previous)
        if not np.all(np.isfinite(m_k)):
            raise SolverError("moment system produced non-finite values")
        moments.append(float(m_k[pos[source]]))
        previous = m_k
    return moments
