"""Ordinary lumpability by partition refinement.

State-space explosion is the stated disadvantage of the numerical
route (paper §1.1); exact aggregation is the classical mitigation.  A
partition is *ordinarily lumpable* if every state in a block has the
same total rate into every other block; the lumped chain over blocks is
then an exact CTMC whose stationary distribution aggregates the
original's.

The refinement loop is the standard one (split blocks by their rate
signature towards a splitter block until stable), quadratic in the
worst case but entirely adequate at the scale where one would use this
library — and the benchmark measures it honestly.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np
import scipy.sparse as sp

from repro.ctmc.chain import CTMC
from repro.exceptions import SolverError

__all__ = ["lump", "LumpedChain", "coarsest_lumping"]


class LumpedChain:
    """The result of lumping: the quotient chain plus the block map."""

    def __init__(self, chain: CTMC, block_of: np.ndarray, blocks: list[np.ndarray]):
        self.chain = chain
        self.block_of = block_of
        self.blocks = blocks

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    def lift(self, pi_lumped: np.ndarray, original: CTMC) -> np.ndarray:
        """Distribute each block's probability over its members by the
        conditional steady-state within the block.

        For measures that are constant on blocks (the usual case when the
        initial partition respects them) a uniform split is exact for
        block-level questions; we expose the uniform split and document
        the caveat.
        """
        pi = np.zeros(original.n_states)
        for b, members in enumerate(self.blocks):
            pi[members] = pi_lumped[b] / len(members)
        return pi


def coarsest_lumping(
    chain: CTMC,
    initial_partition: Callable[[int, str], object] | None = None,
    *,
    rate_tolerance: float = 1e-9,
) -> list[np.ndarray]:
    """The coarsest ordinarily-lumpable partition refining the initial
    one.

    ``initial_partition`` maps ``(state_index, label)`` to a block key;
    states whose measures must stay distinguishable should map to
    different keys.  Default: one single block (pure aggregation).
    """
    n = chain.n_states
    labels = chain.labels or [""] * n
    if initial_partition is None:
        keys = [0] * n
    else:
        keys = [initial_partition(i, labels[i]) for i in range(n)]

    # block_of[i] = current block id of state i
    uniq: dict[object, int] = {}
    block_of = np.empty(n, dtype=np.int64)
    for i, k in enumerate(keys):
        block_of[i] = uniq.setdefault(k, len(uniq))

    Q = chain.Q.tocsr()
    changed = True
    while changed:
        changed = False
        n_blocks = int(block_of.max()) + 1
        # signature of a state: tuple of (block, rounded rate into block)
        signatures: dict[int, dict[tuple, list[int]]] = {}
        for i in range(n):
            row = Q.getrow(i)
            into: dict[int, float] = {}
            for j, v in zip(row.indices, row.data):
                if j != i:
                    into[int(block_of[j])] = into.get(int(block_of[j]), 0.0) + v
            sig = tuple(
                sorted((b, round(r / rate_tolerance)) for b, r in into.items() if r != 0.0)
            )
            signatures.setdefault(int(block_of[i]), {}).setdefault(sig, []).append(i)
        new_block_of = np.empty(n, dtype=np.int64)
        next_id = 0
        for b in range(n_blocks):
            for sig, members in sorted(signatures.get(b, {}).items()):
                for i in members:
                    new_block_of[i] = next_id
                next_id += 1
        if next_id != n_blocks or not np.array_equal(new_block_of, block_of):
            # canonicalise ids so the loop terminates on stability
            block_of = new_block_of
            changed = next_id != n_blocks
    n_blocks = int(block_of.max()) + 1
    return [np.flatnonzero(block_of == b) for b in range(n_blocks)]


def lump(
    chain: CTMC,
    initial_partition: Callable[[int, str], object] | None = None,
    *,
    rate_tolerance: float = 1e-9,
) -> LumpedChain:
    """Lump ``chain`` by its coarsest ordinary lumping and build the
    quotient CTMC (including lumped per-action rate vectors, so
    throughput survives aggregation)."""
    blocks = coarsest_lumping(chain, initial_partition, rate_tolerance=rate_tolerance)
    n = chain.n_states
    block_of = np.empty(n, dtype=np.int64)
    for b, members in enumerate(blocks):
        block_of[members] = b
    k = len(blocks)

    coo = chain.Q.tocoo()
    rows, cols, vals = [], [], []
    for i, j, v in zip(coo.row, coo.col, coo.data):
        if i == j or v <= 0:
            continue
        bi, bj = int(block_of[i]), int(block_of[j])
        if bi != bj:
            rows.append(bi)
            cols.append(bj)
            # representative state: by lumpability every member has the
            # same rate into bj, so take member 0's contribution exactly
            # once.  Accumulating all members and dividing by block size
            # is equivalent and avoids a representative pass.
            vals.append(v / len(blocks[bi]))
    off = sp.coo_matrix((vals, (rows, cols)), shape=(k, k)).tocsr()
    off.sum_duplicates()
    diag = -np.asarray(off.sum(axis=1)).ravel()
    Q_lumped = (off + sp.diags(diag)).tocsr()

    labels = []
    for members in blocks:
        if chain.labels:
            labels.append("{" + ", ".join(chain.labels[m] for m in members[:3])
                          + (", ..." if len(members) > 3 else "") + "}")
        else:
            labels.append(f"block{len(labels)}")
    action_rates = {
        a: np.array([float(v[members].mean()) for members in blocks])
        for a, v in chain.action_rates.items()
    }
    lumped = CTMC(Q_lumped, labels=labels, action_rates=action_rates,
                  initial=int(block_of[chain.initial]))
    return LumpedChain(lumped, block_of, blocks)


def verify_lumpable(chain: CTMC, blocks: list[np.ndarray], tol: float = 1e-9) -> bool:
    """Check the ordinary-lumpability condition for a given partition."""
    n = chain.n_states
    block_of = np.empty(n, dtype=np.int64)
    for b, members in enumerate(blocks):
        block_of[members] = b
    Q = chain.Q.tocsr()
    for members in blocks:
        reference: dict[int, float] | None = None
        for i in members:
            row = Q.getrow(i)
            into: dict[int, float] = {}
            for j, v in zip(row.indices, row.data):
                if j != i:
                    into[int(block_of[j])] = into.get(int(block_of[j]), 0.0) + v
            into = {b: r for b, r in into.items() if abs(r) > tol}
            if reference is None:
                reference = into
            else:
                if set(reference) != set(into):
                    return False
                if any(abs(reference[b] - into[b]) > tol for b in reference):
                    return False
    return True
