"""Sensitivity of steady-state measures to model rates.

A design environment should tell the modeller not only *what* the
throughput is but *which rate to tune*: the derivative of a measure
with respect to each rate parameter.  For a CTMC with generator
``Q(θ)``, the stationary-distribution derivative solves the augmented
system::

    (∂π/∂θ) Q = -π (∂Q/∂θ),   Σ ∂π/∂θ = 0

which is one extra sparse solve per parameter, with the same
factorisation-friendly structure as the steady-state system.  The
derivative of a linear measure ``m = π·r(θ)`` follows by the product
rule.

For the PEPA layer we expose :func:`throughput_sensitivity`, which
perturbs a named action's rates; a finite-difference cross-check is
part of the test suite.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.ctmc.chain import CTMC
from repro.ctmc.steady import steady_state
from repro.exceptions import SolverError

__all__ = ["stationary_derivative", "measure_sensitivity"]


def stationary_derivative(chain: CTMC, dQ: sp.spmatrix, pi: np.ndarray | None = None) -> np.ndarray:
    """``∂π/∂θ`` for a generator perturbation direction ``dQ``.

    ``dQ`` must have zero row sums (a valid generator derivative).
    """
    if pi is None:
        pi = steady_state(chain)
    dQ = sp.csr_matrix(dQ)
    if dQ.shape != chain.Q.shape:
        raise SolverError(f"dQ shape {dQ.shape} does not match the generator")
    row_sums = np.asarray(dQ.sum(axis=1)).ravel()
    if not np.allclose(row_sums, 0.0, atol=1e-9):
        raise SolverError("dQ must have zero row sums (generator derivative)")
    n = chain.n_states
    # Solve x Q = -pi dQ with the normalisation Σx = 0, via the same
    # replaced-column trick as the steady-state solver (transposed).
    A = chain.Q.transpose().tocsr(copy=True).tolil()
    A[n - 1, :] = np.ones(n)
    b = -(pi @ dQ)
    b = np.asarray(b).ravel()
    b[n - 1] = 0.0  # Σ dπ = 0
    x = spla.spsolve(A.tocsc(), b)
    return np.asarray(x).ravel()


def measure_sensitivity(
    chain: CTMC,
    dQ: sp.spmatrix,
    rewards: np.ndarray,
    d_rewards: np.ndarray | None = None,
    pi: np.ndarray | None = None,
) -> float:
    """``d(π·r)/dθ = (∂π/∂θ)·r + π·(∂r/∂θ)``."""
    if pi is None:
        pi = steady_state(chain)
    rewards = np.asarray(rewards, dtype=float)
    dpi = stationary_derivative(chain, dQ, pi)
    value = float(dpi @ rewards)
    if d_rewards is not None:
        value += float(pi @ np.asarray(d_rewards, dtype=float))
    return value


