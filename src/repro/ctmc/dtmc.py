"""Embedded DTMC of a CTMC, and basic DTMC analysis.

The embedded (jump) chain ``P_ij = q_ij / q_i`` observes the CTMC at
transition instants.  Its stationary vector relates to the CTMC's by
the sojourn-time reweighting ``π_i ∝ ν_i / q_i``; both directions are
provided and tested against each other — a useful cross-check for the
solver suite.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.ctmc.chain import CTMC
from repro.exceptions import SolverError

__all__ = ["embedded_dtmc", "dtmc_stationary", "ctmc_pi_from_embedded"]


def embedded_dtmc(chain: CTMC) -> sp.csr_matrix:
    """The jump-chain transition matrix.  Absorbing CTMC states get a
    self-loop (probability 1), the usual convention."""
    Q = chain.Q.tocsr()
    exit_rates = chain.exit_rates()
    n = chain.n_states
    rows, cols, vals = [], [], []
    coo = Q.tocoo()
    for i, j, v in zip(coo.row, coo.col, coo.data):
        if i != j and v > 0:
            rows.append(i)
            cols.append(j)
            vals.append(v / exit_rates[i])
    for i in np.flatnonzero(exit_rates == 0.0):
        rows.append(int(i))
        cols.append(int(i))
        vals.append(1.0)
    P = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    P.sum_duplicates()
    return P


def dtmc_stationary(P: sp.csr_matrix, *, tol: float = 1e-13, max_iterations: int = 500_000) -> np.ndarray:
    """Stationary vector of an irreducible DTMC by damped power
    iteration (damping makes periodic chains converge in Cesàro mean)."""
    n = P.shape[0]
    if P.shape[0] != P.shape[1]:
        raise SolverError("transition matrix must be square")
    PT = P.transpose().tocsr()
    nu = np.full(n, 1.0 / n)
    # Small damping handles periodicity without changing the fixed point.
    alpha = 0.9
    for _ in range(max_iterations):
        nxt = alpha * (PT @ nu) + (1 - alpha) * nu
        total = nxt.sum()
        if total <= 0:
            raise SolverError("power iteration collapsed to zero")
        nxt /= total
        if np.abs(nxt - nu).max() < tol:
            return nxt
        nu = nxt
    raise SolverError(f"DTMC power iteration did not converge in {max_iterations} steps")


def ctmc_pi_from_embedded(chain: CTMC, nu: np.ndarray | None = None) -> np.ndarray:
    """Recover the CTMC stationary vector from the embedded chain's:
    ``π_i ∝ ν_i / q_i``."""
    if nu is None:
        nu = dtmc_stationary(embedded_dtmc(chain))
    exit_rates = chain.exit_rates()
    if np.any(exit_rates == 0.0):
        raise SolverError("the CTMC has absorbing states; no stationary distribution")
    pi = nu / exit_rates
    return pi / pi.sum()
