"""Continuous-Time Markov Chains over sparse generator matrices.

The chain is stored as a CSR generator ``Q`` (off-diagonal entries are
transition rates, the diagonal makes rows sum to zero), following the
HPC guidance of assembling in COO triplets and converting once.  Besides
``Q`` the chain optionally carries:

* ``labels`` — a human-readable name per state (the PEPA derivative);
* ``action_rates`` — for each action type, the vector of total outgoing
  rates of that type per state.  This is exactly what is needed to turn
  a steady-state distribution into *activity throughput*, the measure
  the paper reflects back onto activity diagrams.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components

from repro.exceptions import SolverError

__all__ = ["CTMC", "build_ctmc"]


@dataclass
class CTMC:
    """A finite CTMC with optional state labels and action-rate vectors."""

    Q: sp.csr_matrix
    labels: list[str] = field(default_factory=list)
    action_rates: dict[str, np.ndarray] = field(default_factory=dict)
    initial: int = 0

    def __post_init__(self) -> None:
        n, m = self.Q.shape
        if n != m:
            raise SolverError(f"generator must be square, got {self.Q.shape}")
        if self.labels and len(self.labels) != n:
            raise SolverError("label count does not match state count")

    @property
    def n_states(self) -> int:
        return self.Q.shape[0]

    def __len__(self) -> int:
        return self.n_states

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def exit_rates(self) -> np.ndarray:
        """Total outgoing rate per state (``-diag(Q)``)."""
        return -self.Q.diagonal()

    def max_exit_rate(self) -> float:
        """The largest exit rate (the uniformization constant's floor)."""
        rates = self.exit_rates()
        return float(rates.max()) if rates.size else 0.0

    def absorbing_states(self) -> np.ndarray:
        """Indices of states with no outgoing transitions."""
        return np.flatnonzero(self.exit_rates() == 0.0)

    def is_irreducible(self) -> bool:
        """True when the chain is one strongly connected component."""
        n_comp, _ = connected_components(self.Q, directed=True, connection="strong")
        return bool(n_comp == 1)

    def strongly_connected_components(self) -> list[np.ndarray]:
        """SCCs as arrays of state indices, in component-label order."""
        n_comp, labels = connected_components(self.Q, directed=True, connection="strong")
        return [np.flatnonzero(labels == c) for c in range(n_comp)]

    def bottom_sccs(self) -> list[np.ndarray]:
        """Bottom strongly connected components (closed recurrent classes)."""
        n_comp, labels = connected_components(self.Q, directed=True, connection="strong")
        coo = self.Q.tocoo()
        leaves = set(range(n_comp))
        for i, j, v in zip(coo.row, coo.col, coo.data):
            if v > 0 and labels[i] != labels[j]:
                leaves.discard(int(labels[i]))
        return [np.flatnonzero(labels == c) for c in sorted(leaves)]

    def restricted_to(self, states: np.ndarray) -> "CTMC":
        """The sub-chain on ``states`` (rates leaving the set are dropped
        and the diagonal is rebuilt so rows sum to zero)."""
        states = np.asarray(states, dtype=np.int64)
        sub = self.Q[states][:, states].tolil()
        sub.setdiag(0.0)
        sub = sub.tocsr()
        sub.eliminate_zeros()
        diag = -np.asarray(sub.sum(axis=1)).ravel()
        gen = (sub + sp.diags(diag)).tocsr()
        labels = [self.labels[i] for i in states] if self.labels else []
        actions = {a: v[states] for a, v in self.action_rates.items()}
        return CTMC(gen, labels=labels, action_rates=actions)

    # ------------------------------------------------------------------
    # Derived chains
    # ------------------------------------------------------------------
    def uniformized(self, rate: float | None = None) -> tuple[sp.csr_matrix, float]:
        """The uniformized DTMC ``P = I + Q/Λ`` and the rate ``Λ`` used.

        ``Λ`` defaults to 1.02× the maximum exit rate (strictly above it
        so the chain is aperiodic, which the power method requires).
        """
        lam = rate if rate is not None else max(self.max_exit_rate() * 1.02, 1e-12)
        if lam < self.max_exit_rate():
            raise SolverError(
                f"uniformization rate {lam} is below the maximum exit rate "
                f"{self.max_exit_rate()}"
            )
        n = self.n_states
        P = (sp.identity(n, format="csr") + self.Q.multiply(1.0 / lam)).tocsr()
        return P, lam

    def to_coo_triplets(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Off-diagonal (row, col, rate) triplets of the generator."""
        coo = self.Q.tocoo()
        mask = coo.row != coo.col
        return coo.row[mask], coo.col[mask], coo.data[mask]


def build_ctmc(
    n_states: int,
    transitions: list[tuple[int, str, float, int]],
    labels: list[str] | None = None,
    initial: int = 0,
) -> CTMC:
    """Assemble a CTMC from (source, action, rate, target) records.

    Parallel transitions (same endpoints, possibly different actions)
    sum, per the race condition of the multi-transition-system
    semantics.  Self-loops contribute to action throughput but cancel in
    the generator (a CTMC cannot observe them), so they are recorded in
    ``action_rates`` and omitted from ``Q``.
    """
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    action_rates: dict[str, np.ndarray] = {}
    for source, action, rate, target in transitions:
        if rate <= 0:
            raise SolverError(f"transition rate must be positive, got {rate}")
        vec = action_rates.get(action)
        if vec is None:
            vec = np.zeros(n_states)
            action_rates[action] = vec
        vec[source] += rate
        if source != target:
            rows.append(source)
            cols.append(target)
            vals.append(rate)
    off = sp.coo_matrix((vals, (rows, cols)), shape=(n_states, n_states)).tocsr()
    off.sum_duplicates()
    diag = -np.asarray(off.sum(axis=1)).ravel()
    Q = (off + sp.diags(diag)).tocsr()
    return CTMC(Q, labels=list(labels or []), action_rates=action_rates, initial=initial)
