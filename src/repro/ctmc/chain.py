"""Continuous-Time Markov Chains over abstract generator operators.

A chain carries its generator behind the :class:`GeneratorOperator`
interface (:mod:`repro.ctmc.operator`): either a materialised CSR
matrix (off-diagonal entries are transition rates, the diagonal makes
rows sum to zero — the classic assemble-in-COO, convert-once layout) or
a matrix-free Kronecker descriptor built compositionally from the
model.  Consumers that only need SpMV products use :attr:`generator`
and stay representation-agnostic; consumers that genuinely need the
matrix (direct solves, ILU, graph analyses) read :attr:`Q`, which
materialises a descriptor on first access and announces it with a
``solver.materialize`` event so the fallback is observable rather than
silent.

Besides the generator the chain optionally carries:

* ``labels`` — a human-readable name per state (the PEPA derivative);
* ``action_rates`` — for each action type, the vector of total outgoing
  rates of that type per state.  This is exactly what is needed to turn
  a steady-state distribution into *activity throughput*, the measure
  the paper reflects back onto activity diagrams.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components

from repro.ctmc.operator import CsrGenerator, GeneratorOperator
from repro.exceptions import SolverError

__all__ = ["CTMC", "build_ctmc"]


class CTMC:
    """A finite CTMC with optional state labels and action-rate vectors.

    Construct either from a materialised generator (``CTMC(Q, ...)``,
    unchanged from the historical dataclass) or from a matrix-free
    operator (``CTMC(operator=descriptor, ...)``).
    """

    def __init__(
        self,
        Q: sp.spmatrix | None = None,
        labels: list[str] | None = None,
        action_rates: dict[str, np.ndarray] | None = None,
        initial: int = 0,
        *,
        operator: GeneratorOperator | None = None,
    ):
        if Q is None and operator is None:
            raise SolverError("a CTMC needs a generator matrix or operator")
        self._Q: sp.csr_matrix | None = None if Q is None else sp.csr_matrix(Q)
        self._operator: GeneratorOperator | None = operator
        self.labels = list(labels or [])
        self.action_rates = dict(action_rates or {})
        self.initial = initial

        n, m = self.generator.shape if self._Q is None else self._Q.shape
        if n != m:
            raise SolverError(f"generator must be square, got {(n, m)}")
        if self.labels and len(self.labels) != n:
            raise SolverError("label count does not match state count")
        self._n = n

    # ------------------------------------------------------------------
    # Generator access
    # ------------------------------------------------------------------
    @property
    def materialized(self) -> bool:
        """True when the CSR generator matrix already exists."""
        return self._Q is not None

    @property
    def generator(self) -> GeneratorOperator:
        """The representation-agnostic generator operator."""
        if self._operator is None:
            self._operator = CsrGenerator(self._Q)
        return self._operator

    @property
    def Q(self) -> sp.csr_matrix:
        """The materialised generator.  For descriptor-backed chains
        the first access builds the matrix and emits a
        ``solver.materialize`` event (plus a ``generator.materialize``
        counter) — the observable escape hatch for consumers that
        cannot work matrix-free."""
        if self._Q is None:
            from repro.obs import get_events, get_metrics

            op = self._operator
            self._Q = op.to_csr()
            get_events().emit(
                "solver.materialize",
                states=self._Q.shape[0],
                nnz=int(self._Q.nnz),
                generator=op.description,
            )
            get_metrics().counter("generator.materialize").inc()
        return self._Q

    @property
    def n_states(self) -> int:
        return self._n

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:
        backend = "csr" if self.materialized else self.generator.description
        return f"CTMC(n_states={self._n}, generator={backend})"

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def exit_rates(self) -> np.ndarray:
        """Total outgoing rate per state (``-diag(Q)``)."""
        if self._Q is not None:
            return -self._Q.diagonal()
        return self.generator.exit_rates()

    def max_exit_rate(self) -> float:
        """The largest exit rate (the uniformization constant's floor)."""
        rates = self.exit_rates()
        return float(rates.max()) if rates.size else 0.0

    def absorbing_states(self) -> np.ndarray:
        """Indices of states with no outgoing transitions."""
        return np.flatnonzero(self.exit_rates() == 0.0)

    def is_irreducible(self) -> bool:
        """True when the chain is one strongly connected component.

        Matrix-free chains answer via support propagation (forward and
        backward reachability closure from state 0 through repeated
        SpMV), so irreducibility checks never force materialisation.
        """
        if self.materialized:
            n_comp, _ = connected_components(self._Q, directed=True, connection="strong")
            return bool(n_comp == 1)
        return bool(
            self._support_closure(forward=True).all()
            and self._support_closure(forward=False).all()
        )

    def _support_closure(self, *, forward: bool) -> np.ndarray:
        """Boolean reachability closure from state 0 along (or against)
        the transition relation, using only generator products."""
        op = self.generator
        exits = self.exit_rates()
        # Qx + exit*x reconstructs the rate-matrix product; tiny
        # cancellation noise is filtered against the rate scale.
        eps = 1e-9 * max(1.0, float(exits.max()) if exits.size else 1.0)
        reached = np.zeros(self._n, dtype=bool)
        reached[0] = True
        frontier = True
        while frontier:
            x = reached.astype(float)
            y = (op.rmatvec(x) if forward else op.matvec(x)) + exits * x
            new = (y > eps) & ~reached
            frontier = bool(new.any())
            reached |= new
        return reached

    def strongly_connected_components(self) -> list[np.ndarray]:
        """SCCs as arrays of state indices, in component-label order."""
        n_comp, labels = connected_components(self.Q, directed=True, connection="strong")
        return [np.flatnonzero(labels == c) for c in range(n_comp)]

    def bottom_sccs(self) -> list[np.ndarray]:
        """Bottom strongly connected components (closed recurrent classes)."""
        n_comp, labels = connected_components(self.Q, directed=True, connection="strong")
        coo = self.Q.tocoo()
        leaves = set(range(n_comp))
        for i, j, v in zip(coo.row, coo.col, coo.data):
            if v > 0 and labels[i] != labels[j]:
                leaves.discard(int(labels[i]))
        return [np.flatnonzero(labels == c) for c in sorted(leaves)]

    def restricted_to(self, states: np.ndarray) -> "CTMC":
        """The sub-chain on ``states`` (rates leaving the set are dropped
        and the diagonal is rebuilt so rows sum to zero)."""
        states = np.asarray(states, dtype=np.int64)
        sub = self.Q[states][:, states].tolil()
        sub.setdiag(0.0)
        sub = sub.tocsr()
        sub.eliminate_zeros()
        diag = -np.asarray(sub.sum(axis=1)).ravel()
        gen = (sub + sp.diags(diag)).tocsr()
        labels = [self.labels[i] for i in states] if self.labels else []
        actions = {a: v[states] for a, v in self.action_rates.items()}
        return CTMC(gen, labels=labels, action_rates=actions)

    # ------------------------------------------------------------------
    # Derived chains
    # ------------------------------------------------------------------
    def uniformized(self, rate: float | None = None) -> tuple[sp.csr_matrix, float]:
        """The uniformized DTMC ``P = I + Q/Λ`` and the rate ``Λ`` used.

        ``Λ`` defaults to 1.02× the maximum exit rate (strictly above it
        so the chain is aperiodic, which the power method requires).
        """
        lam = rate if rate is not None else max(self.max_exit_rate() * 1.02, 1e-12)
        if lam < self.max_exit_rate():
            raise SolverError(
                f"uniformization rate {lam} is below the maximum exit rate "
                f"{self.max_exit_rate()}"
            )
        n = self.n_states
        P = (sp.identity(n, format="csr") + self.Q.multiply(1.0 / lam)).tocsr()
        return P, lam

    def to_coo_triplets(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Off-diagonal (row, col, rate) triplets of the generator."""
        coo = self.Q.tocoo()
        mask = coo.row != coo.col
        return coo.row[mask], coo.col[mask], coo.data[mask]


def build_ctmc(
    n_states: int,
    transitions: list[tuple[int, str, float, int]],
    labels: list[str] | None = None,
    initial: int = 0,
) -> CTMC:
    """Assemble a CTMC from (source, action, rate, target) records.

    Parallel transitions (same endpoints, possibly different actions)
    sum, per the race condition of the multi-transition-system
    semantics.  Self-loops contribute to action throughput but cancel in
    the generator (a CTMC cannot observe them), so they are recorded in
    ``action_rates`` and omitted from ``Q``.

    The assembly is numpy-batched: one pass converts the record list to
    flat arrays, per-action totals accumulate with ``np.add.at`` and the
    off-diagonal COO matrix is built from the masked arrays directly —
    no per-transition Python arithmetic.
    """
    n_trans = len(transitions)
    src = np.empty(n_trans, dtype=np.int64)
    tgt = np.empty(n_trans, dtype=np.int64)
    rates = np.empty(n_trans, dtype=float)
    actions: list[str] = [""] * n_trans
    for k, (source, action, rate, target) in enumerate(transitions):
        src[k] = source
        actions[k] = action
        rates[k] = rate
        tgt[k] = target
    if n_trans and rates.min() <= 0:
        bad = transitions[int(np.flatnonzero(rates <= 0)[0])][2]
        raise SolverError(f"transition rate must be positive, got {bad}")

    action_rates: dict[str, np.ndarray] = {}
    order = {}
    codes = np.empty(n_trans, dtype=np.int64)
    for k, action in enumerate(actions):
        code = order.get(action)
        if code is None:
            code = order[action] = len(order)
        codes[k] = code
    for action, code in order.items():
        vec = np.zeros(n_states)
        mask = codes == code
        np.add.at(vec, src[mask], rates[mask])
        action_rates[action] = vec

    off_mask = src != tgt
    off = sp.coo_matrix(
        (rates[off_mask], (src[off_mask], tgt[off_mask])), shape=(n_states, n_states)
    ).tocsr()
    off.sum_duplicates()
    diag = -np.asarray(off.sum(axis=1)).ravel()
    Q = (off + sp.diags(diag)).tocsr()
    return CTMC(Q, labels=list(labels or []), action_rates=action_rates, initial=initial)
