"""Representation-agnostic CTMC generator operators.

The solver stack historically consumed one concrete object: a global
``scipy.sparse`` CSR generator matrix.  That materialisation is the
scaling wall after exploration — assembly time and memory grow with
the transition count even though every iterative solver only ever
needs the two products ``Q @ x`` and ``Q.T @ x``.

This module abstracts the generator behind :class:`GeneratorOperator`:

* :class:`CsrGenerator` wraps the existing materialised CSR matrix —
  behaviour-preserving, used whenever a matrix already exists.
* :class:`KroneckerDescriptor` keeps the generator *symbolic* as a sum
  of Kronecker-product terms over the model's sequential components
  (the SAN/PEPS representation of Sbeity & Brenner, arXiv:1202.0414,
  and the activity-matrix form of Ding & Hillston, arXiv:1012.3040).
  SpMV runs term by term with the shuffle algorithm and never builds
  the global matrix.

Both expose ``matvec``/``rmatvec``/``exit_rates`` plus
``to_linear_operator()`` so every consumer — Krylov solvers, power
iteration, residual checks — is representation-agnostic.

Descriptor anatomy
------------------

A descriptor is a list of :class:`KroneckerTerm`\\ s over a fixed tuple
of component dimensions ``dims``.  Term ``t`` denotes the full
product-space rate matrix

.. math::

    R_t = c_t \\cdot D_t \\cdot (M_1 \\otimes M_2 \\otimes \\dots)

where each factor ``M_k`` acts on one component position (identity for
absent positions), ``c_t`` is a scalar, and ``D_t`` is a diagonal
*state-dependent* scaling encoding PEPA apparent-rate denominators:
``D_t[u, u] = 1 / prod_g(sum_{(k, v) in g} v[u_k])`` over the term's
scale groups ``g`` (1 when there are none).  The reachable-state
generator is the projection of ``sum_t R_t`` minus its row sums on the
diagonal; transitions out of reachable states land in reachable states
by construction, so the projection is exact, not an approximation.
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable

import numpy as np
import scipy.sparse as sparse
import scipy.sparse.linalg as spla

__all__ = [
    "GeneratorOperator",
    "CsrGenerator",
    "KroneckerTerm",
    "KroneckerDescriptor",
    "DescriptorUnsupported",
]


class DescriptorUnsupported(ValueError):
    """The model (or a cached payload) cannot be represented as a
    Kronecker descriptor — callers fall back to the CSR path."""


@runtime_checkable
class GeneratorOperator(Protocol):
    """What every generator representation must provide.

    ``shape`` is ``(n, n)`` over *reachable* states; ``matvec`` is
    ``Q @ x`` and ``rmatvec`` is ``Q.T @ x`` (the product iterative
    steady-state solvers actually need); ``exit_rates`` is the vector
    of total outgoing rates (``-diag(Q)``).
    """

    @property
    def shape(self) -> tuple[int, int]: ...

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``Q @ x`` over reachable states, exact to round-off."""
        ...

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """``Q.T @ x`` — the product the steady-state solvers need."""
        ...

    def exit_rates(self) -> np.ndarray:
        """Total outgoing rate of each state (``-diag(Q)``)."""
        ...

    def to_linear_operator(self, *, transpose: bool = False) -> spla.LinearOperator:
        """A scipy ``LinearOperator`` view of ``Q`` (or ``Q.T``)."""
        ...

    def to_csr(self) -> sparse.csr_matrix:
        """The materialised CSR generator (may be expensive to build)."""
        ...

    @property
    def stored_bytes(self) -> int: ...

    @property
    def description(self) -> str: ...


def _as_vector(x: np.ndarray, n: int) -> np.ndarray:
    vec = np.asarray(x, dtype=float)
    if vec.ndim == 2 and 1 in vec.shape:
        vec = vec.ravel()
    if vec.shape != (n,):
        raise ValueError(f"expected a vector of length {n}, got shape {vec.shape}")
    return vec


class CsrGenerator:
    """The materialised-matrix backend: a thin, behaviour-preserving
    wrapper around the global CSR generator."""

    def __init__(self, Q: sparse.spmatrix):
        Q = sparse.csr_matrix(Q)
        if Q.shape[0] != Q.shape[1]:
            raise ValueError(f"generator must be square, got {Q.shape}")
        self._Q = Q
        self._QT: sparse.csr_matrix | None = None
        #: SpMV products computed through this operator (tests pin that
        #: the descriptor path stays matrix-free by comparing these).
        self.spmv_count = 0

    @property
    def shape(self) -> tuple[int, int]:
        return self._Q.shape

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``Q @ x`` (one CSR SpMV)."""
        self.spmv_count += 1
        return self._Q @ _as_vector(x, self._Q.shape[0])

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """``Q.T @ x``; the transpose is built lazily, once, and reused."""
        if self._QT is None:
            self._QT = self._Q.transpose().tocsr()
        self.spmv_count += 1
        return self._QT @ _as_vector(x, self._Q.shape[0])

    def exit_rates(self) -> np.ndarray:
        """``-diag(Q)`` read straight off the stored matrix."""
        return -np.asarray(self._Q.diagonal(), dtype=float)

    def to_linear_operator(self, *, transpose: bool = False) -> spla.LinearOperator:
        """A ``LinearOperator`` over :meth:`matvec`/:meth:`rmatvec`."""
        mv = self.rmatvec if transpose else self.matvec
        rmv = self.matvec if transpose else self.rmatvec
        return spla.LinearOperator(self._Q.shape, matvec=mv, rmatvec=rmv, dtype=float)

    def to_csr(self) -> sparse.csr_matrix:
        """The wrapped matrix itself — already materialised, zero cost."""
        return self._Q

    @property
    def nnz(self) -> int:
        return int(self._Q.nnz)

    @property
    def stored_bytes(self) -> int:
        return int(self._Q.data.nbytes + self._Q.indices.nbytes + self._Q.indptr.nbytes)

    @property
    def description(self) -> str:
        return f"csr(n={self._Q.shape[0]}, nnz={self._Q.nnz})"


class KroneckerTerm:
    """One Kronecker-product term of a descriptor.

    ``factors`` maps component position -> dense local matrix (absent
    positions act as identity); ``coeff`` is a scalar multiplier;
    ``scales`` is a tuple of scale groups, each a tuple of
    ``(position, per-local-state vector)`` parts whose *sum* forms one
    apparent-rate denominator factor.
    """

    __slots__ = ("action", "coeff", "factors", "scales")

    def __init__(
        self,
        action: str,
        coeff: float,
        factors: dict[int, np.ndarray],
        scales: tuple[tuple[tuple[int, np.ndarray], ...], ...] = (),
    ):
        if not factors:
            raise ValueError("a Kronecker term needs at least one factor")
        self.action = action
        self.coeff = float(coeff)
        self.factors = {
            int(pos): np.ascontiguousarray(mat, dtype=float)
            for pos, mat in sorted(factors.items())
        }
        self.scales = tuple(
            tuple((int(pos), np.ascontiguousarray(vec, dtype=float)) for pos, vec in group)
            for group in scales
        )

    def __repr__(self) -> str:
        return (
            f"KroneckerTerm(action={self.action!r}, coeff={self.coeff!r}, "
            f"positions={sorted(self.factors)}, scale_groups={len(self.scales)})"
        )


class KroneckerDescriptor:
    """Sum-of-Kronecker-terms generator over reachable states.

    ``dims`` are the per-component local state-space sizes, in the
    fixed left-to-right order of the component tree; ``projection``
    maps each reachable flat state index to its product-space index
    (row-major mixed radix over ``dims``).
    """

    def __init__(
        self,
        dims: Iterable[int],
        terms: Iterable[KroneckerTerm],
        projection: np.ndarray,
        *,
        validate: bool = True,
    ):
        self.dims = tuple(int(d) for d in dims)
        if not self.dims or any(d <= 0 for d in self.dims):
            raise ValueError(f"component dimensions must be positive, got {self.dims}")
        self.terms = tuple(terms)
        self.projection = np.ascontiguousarray(projection, dtype=np.int64)
        self.product_size = int(np.prod([float(d) for d in self.dims]))
        self.n_states = int(self.projection.shape[0])
        #: SpMV products computed through this operator.
        self.spmv_count = 0

        if validate:
            self._validate()

        # Pre-compute per-position strides for the shuffle: position k
        # sees the flat product space as (left, dims[k], right) blocks.
        self._left = []
        self._right = []
        left = 1
        for k, d in enumerate(self.dims):
            right = self.product_size // (left * d)
            self._left.append(left)
            self._right.append(right)
            left *= d

        # Apparent-rate denominators are shared across terms (every
        # term of one synchronised action uses the same denominator),
        # so cache the expanded 1/denominator vectors by structural key.
        inv_cache: dict[tuple, np.ndarray | None] = {}
        self._inv: list[np.ndarray | None] = []
        for term in self.terms:
            key = tuple(
                tuple((pos, id(vec)) for pos, vec in group) for group in term.scales
            )
            if key not in inv_cache:
                inv_cache[key] = self._inverse_denominator(term.scales)
            self._inv.append(inv_cache[key])

        # One pass over the full product space fixes the row totals
        # (for the -diag part of Q), the self-loop rates and the
        # per-action throughput weights on reachable states.  These are
        # O(product_size) vectors transiently, O(n_states) retained.
        ones = np.ones(self.product_size)
        row_total = np.zeros(self.product_size)
        self_rates = np.zeros(self.product_size)
        action_rows: dict[str, np.ndarray] = {}
        for term, inv in zip(self.terms, self._inv):
            rows = self._apply_term(term, inv, ones, transpose=False)
            row_total += rows
            acc = action_rows.get(term.action)
            if acc is None:
                acc = action_rows[term.action] = np.zeros(self.product_size)
            acc += rows
            self_rates += self._term_diagonal(term, inv)

        #: Total outgoing rate of each reachable state including
        #: self-loops (the row sum of the rate part of the generator).
        self.row_totals = row_total[self.projection]
        self._self_rates = self_rates[self.projection]
        #: Per-action total rates on reachable states — the same
        #: vectors ``build_ctmc`` collects, without materialising Q.
        self.action_rates = {
            action: rows[self.projection] for action, rows in sorted(action_rows.items())
        }

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if self.n_states == 0:
            raise ValueError("descriptor needs at least one reachable state")
        if self.projection.min(initial=0) < 0 or (
            self.n_states and int(self.projection.max()) >= self.product_size
        ):
            raise ValueError("projection indices out of product-space range")
        if len(np.unique(self.projection)) != self.n_states:
            raise ValueError("projection indices must be distinct")
        n_components = len(self.dims)
        for term in self.terms:
            for pos, mat in term.factors.items():
                if not 0 <= pos < n_components:
                    raise ValueError(f"factor position {pos} out of range")
                if mat.shape != (self.dims[pos], self.dims[pos]):
                    raise ValueError(
                        f"factor at position {pos} has shape {mat.shape}, "
                        f"expected {(self.dims[pos], self.dims[pos])}"
                    )
            for group in term.scales:
                for pos, vec in group:
                    if not 0 <= pos < n_components:
                        raise ValueError(f"scale position {pos} out of range")
                    if vec.shape != (self.dims[pos],):
                        raise ValueError(
                            f"scale vector at position {pos} has shape {vec.shape}, "
                            f"expected {(self.dims[pos],)}"
                        )

    def _expand(self, pos: int, vec: np.ndarray) -> np.ndarray:
        """Broadcast a per-local-state vector over the product space."""
        return np.tile(np.repeat(vec, self._right[pos]), self._left[pos])

    def _inverse_denominator(self, scales) -> np.ndarray | None:
        if not scales:
            return None
        denom = np.ones(self.product_size)
        for group in scales:
            acc = np.zeros(self.product_size)
            for pos, vec in group:
                acc += self._expand(pos, vec)
            denom *= acc
        # Where a denominator vanishes the numerator provably vanishes
        # too (no partner enables the action), so 0 is the exact value.
        with np.errstate(divide="ignore"):
            inv = np.where(denom > 0.0, 1.0 / denom, 0.0)
        return inv

    # ------------------------------------------------------------------
    # Shuffle-algorithm term application
    # ------------------------------------------------------------------
    def _apply_factors(
        self, factors: dict[int, np.ndarray], z: np.ndarray, *, transpose: bool
    ) -> np.ndarray:
        out = z
        for pos, mat in factors.items():
            if transpose:
                mat = mat.T
            block = out.reshape(self._left[pos], self.dims[pos], self._right[pos])
            # (nk, nk) x (left, nk, right) contracted on the middle
            # axis — the classic perfect-shuffle step.
            mixed = np.tensordot(mat, block, axes=([1], [1]))
            out = np.ascontiguousarray(mixed.transpose(1, 0, 2)).reshape(-1)
        return out

    def _apply_term(
        self,
        term: KroneckerTerm,
        inv: np.ndarray | None,
        z: np.ndarray,
        *,
        transpose: bool,
    ) -> np.ndarray:
        if transpose:
            # (D K)^T x = K^T (D x): scale by rows *before* the factors.
            zz = z * term.coeff if inv is None else z * (term.coeff * inv)
            return self._apply_factors(term.factors, zz, transpose=True)
        out = self._apply_factors(term.factors, z, transpose=False)
        out *= term.coeff
        if inv is not None:
            out *= inv
        return out

    def _term_diagonal(self, term: KroneckerTerm, inv: np.ndarray | None) -> np.ndarray:
        diag = np.ones(1)
        for pos, d in enumerate(self.dims):
            mat = term.factors.get(pos)
            local = np.ones(d) if mat is None else np.diagonal(mat).copy()
            diag = np.multiply.outer(diag, local).reshape(-1)
        diag *= term.coeff
        if inv is not None:
            diag *= inv
        return diag

    # ------------------------------------------------------------------
    # GeneratorOperator interface
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_states, self.n_states)

    def exit_rates(self) -> np.ndarray:
        """``-diag(Q)`` from the precomputed row totals.

        Self-loop rates cancel inside Q (they appear in the row total
        and on the diagonal), so the exit rate excludes them.
        """
        return self.row_totals - self._self_rates

    def _rate_product(self, x: np.ndarray, *, transpose: bool) -> np.ndarray:
        full = np.zeros(self.product_size)
        full[self.projection] = x
        acc = np.zeros(self.product_size)
        for term, inv in zip(self.terms, self._inv):
            acc += self._apply_term(term, inv, full, transpose=transpose)
        return acc[self.projection]

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``Q @ x`` with ``Q = R - diag(rowsum(R))`` — the self-loop
        entries of ``R`` cancel exactly, so no off-diagonal filtering
        is needed."""
        x = _as_vector(x, self.n_states)
        self.spmv_count += 1
        return self._rate_product(x, transpose=False) - self.row_totals * x

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """``Q.T @ x`` via the transposed shuffle (``(D K)^T = K^T D``)."""
        x = _as_vector(x, self.n_states)
        self.spmv_count += 1
        return self._rate_product(x, transpose=True) - self.row_totals * x

    def to_linear_operator(self, *, transpose: bool = False) -> spla.LinearOperator:
        """A ``LinearOperator`` over the shuffle SpMV — still matrix-free."""
        mv = self.rmatvec if transpose else self.matvec
        rmv = self.matvec if transpose else self.rmatvec
        return spla.LinearOperator(self.shape, matvec=mv, rmatvec=rmv, dtype=float)

    def to_csr(self) -> sparse.csr_matrix:
        """Materialise the reachable-state generator (verification and
        direct-solver fallback only — never on the iterative path)."""
        total = None
        for term, inv in zip(self.terms, self._inv):
            mat: sparse.spmatrix | None = None
            for pos, d in enumerate(self.dims):
                factor = term.factors.get(pos)
                local = (
                    sparse.identity(d, format="csr")
                    if factor is None
                    else sparse.csr_matrix(factor)
                )
                mat = local if mat is None else sparse.kron(mat, local, format="csr")
            mat = mat * term.coeff
            if inv is not None:
                mat = sparse.diags(inv) @ mat
            total = mat if total is None else total + mat
        rates = sparse.csr_matrix(total)[self.projection, :][:, self.projection].tocsr()
        rates.eliminate_zeros()
        Q = rates - sparse.diags(self.row_totals)
        Q = sparse.csr_matrix(Q)
        Q.eliminate_zeros()
        return Q

    @property
    def stored_bytes(self) -> int:
        total = self.projection.nbytes
        seen: set[int] = set()
        for term in self.terms:
            for mat in term.factors.values():
                if id(mat) not in seen:
                    seen.add(id(mat))
                    total += mat.nbytes
            for group in term.scales:
                for _, vec in group:
                    if id(vec) not in seen:
                        seen.add(id(vec))
                        total += vec.nbytes
        return int(total)

    @property
    def stored_nnz(self) -> int:
        """Total non-zeros across the stored local factor matrices —
        the descriptor-side analogue of the CSR ``nnz`` metric."""
        seen: set[int] = set()
        total = 0
        for term in self.terms:
            for mat in term.factors.values():
                if id(mat) not in seen:
                    seen.add(id(mat))
                    total += int(np.count_nonzero(mat))
        return total

    @property
    def description(self) -> str:
        return (
            f"kronecker(components={len(self.dims)}, terms={len(self.terms)}, "
            f"product={self.product_size}, reachable={self.n_states})"
        )

    def __repr__(self) -> str:
        return f"KroneckerDescriptor({self.description})"
