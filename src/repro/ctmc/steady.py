"""Steady-state solvers.

We solve the global balance equations ``πQ = 0`` with ``Σπ = 1`` by
several methods, mirroring the solver menu of the PEPA Workbench the
paper builds on, and following the HPC guide's advice to prefer
``scipy.sparse`` solvers and to pick the method by problem size:

* ``direct``        sparse LU on the normal system (exact, the default
  for small/medium chains — "exact solution is an advantage");
* ``gmres`` / ``bicgstab`` / ``lgmres``  preconditioned Krylov
  iterations for large chains;
* ``power``         power iteration on the uniformized DTMC (lowest
  memory footprint, tolerant of very large state spaces);
* ``gauss_seidel`` / ``jacobi``  classical stationary iterations, kept
  both as a baseline for the solver benchmark and because Gauss–Seidel
  is what the original Workbench shipped.

Every iterative method consumes the chain through its
:class:`~repro.ctmc.operator.GeneratorOperator`, so a matrix-free
Kronecker-descriptor chain solves without ever materialising the
global generator.  Only the direct solver, Gauss–Seidel (which needs
random row access) and the ILU preconditioner require the matrix:
``direct``/``gauss_seidel`` materialise transparently (announced by the
chain's ``solver.materialize`` event), while the Krylov methods on a
descriptor simply skip ILU and solve unpreconditioned — the
preconditioner path actually taken is reported through the
``options["info"]`` dict (and surfaces in the fallback layer's
:class:`~repro.resilience.fallback.SolveDiagnostics`).

All methods require an irreducible chain; hand a reducible one to
:func:`steady_state` and you get a :class:`SolverError` naming the
offending structure (use :meth:`CTMC.bottom_sccs` to analyse further).

Every solver callable takes ``(chain, tol, max_iterations)`` plus an
optional fourth ``options`` mapping carrying per-attempt hints
(``x0``, ``ilu_drop_tol``, ``ilu_fill_factor``) — the retry layer of
:mod:`repro.resilience.fallback` uses these to perturb the starting
vector and relax the preconditioner between attempts.  The pseudo
method ``"fallback"`` routes through that fallback chain.
"""

from __future__ import annotations

import inspect
from collections.abc import Callable, Mapping

import numpy as np
import scipy.sparse.linalg as spla

import time

from repro.ctmc.chain import CTMC
from repro.exceptions import SolverError
from repro.obs import get_events, get_metrics, get_tracer

__all__ = ["steady_state", "SOLVERS"]

_DEFAULT_TOL = 1e-12
_DEFAULT_MAXITER = 200_000


def steady_state(
    chain: CTMC,
    method: str = "direct",
    *,
    tol: float = _DEFAULT_TOL,
    max_iterations: int = _DEFAULT_MAXITER,
    check_irreducible: bool = True,
    reducible: str = "error",
    policy=None,
    solver_options: Mapping | None = None,
) -> np.ndarray:
    """The stationary distribution π of a CTMC.

    Returns a dense probability vector of length ``chain.n_states``.

    ``reducible`` selects the policy for chains that are not
    irreducible: ``"error"`` (the default) raises; ``"bscc"`` solves on
    the chain's unique bottom strongly connected component and assigns
    probability zero to the transient states — the correct long-run
    distribution for models with a start-up phase, such as the paper's
    one-shot instant-message transmission.  A chain with *several*
    bottom components has no initial-state-independent steady state and
    always raises.

    ``method="fallback"`` (or any non-``None`` ``policy``) solves
    through the resilient fallback chain of
    :func:`repro.resilience.fallback.solve_with_fallback`: an ordered
    list of methods tried in turn with bounded retries; ``policy`` may
    be a :class:`~repro.resilience.fallback.FallbackPolicy` or a
    comma-separated method list such as ``"direct,gmres,power"``.
    Use :func:`~repro.resilience.fallback.solve_with_fallback` directly
    when you also want the per-attempt diagnostics record.

    ``solver_options`` forwards per-attempt hints (``x0``,
    ``ilu_drop_tol``, ``ilu_fill_factor``) to solvers that accept them.
    """
    if reducible not in ("error", "bscc"):
        raise SolverError(f"unknown reducible policy {reducible!r}")
    if method == "fallback" or policy is not None:
        from repro.resilience.fallback import FallbackPolicy, solve_with_fallback

        if policy is None:
            policy = FallbackPolicy(tol=tol, max_iterations=max_iterations)
        elif isinstance(policy, str):
            policy = FallbackPolicy.parse(
                policy, tol=tol, max_iterations=max_iterations
            )
        pi, _ = solve_with_fallback(
            chain, policy,
            check_irreducible=check_irreducible, reducible=reducible,
        )
        return pi
    # Validate the method name first: a typo must fail in O(1), not
    # after a full SCC analysis of a large chain.
    try:
        solver = SOLVERS[method]
    except KeyError:
        raise SolverError(
            f"unknown steady-state method {method!r}; choose from {sorted(SOLVERS)}"
        ) from None
    if chain.n_states == 0:
        raise SolverError("cannot solve an empty chain")
    if chain.n_states == 1:
        return np.ones(1)
    if check_irreducible and not chain.is_irreducible():
        if reducible == "bscc":
            bsccs = chain.bottom_sccs()
            if len(bsccs) != 1:
                raise SolverError(
                    f"the chain has {len(bsccs)} bottom strongly connected "
                    "components; the steady state depends on the initial state"
                )
            members = bsccs[0]
            sub = chain.restricted_to(members)
            pi_sub = steady_state(
                sub, method, tol=tol, max_iterations=max_iterations,
                check_irreducible=False, solver_options=solver_options,
            )
            pi = np.zeros(chain.n_states)
            pi[members] = pi_sub
            return pi
        raise _irreducibility_failure(chain)
    tracer = get_tracer()
    with tracer.span("ctmc.solve", method=method, states=chain.n_states) as sp:
        pi = _call_solver(solver, chain, tol, max_iterations, solver_options)
        pi = _normalise(pi, method, tol)
        if tracer.enabled:
            residual = float(np.abs(chain.generator.rmatvec(pi)).max())
            sp.set(residual=residual)
            get_metrics().gauge("residual").set(residual)
    return pi


def _irreducibility_failure(chain: CTMC) -> SolverError:
    """Build the reducible-chain error, naming absorbing states if any."""
    absorbing = chain.absorbing_states()
    detail = (
        f" (it has {len(absorbing)} absorbing state(s); the first is "
        f"{chain.labels[absorbing[0]] if chain.labels is not None and len(chain.labels) else absorbing[0]!r})"
        if absorbing.size
        else ""
    )
    return SolverError(
        "steady-state analysis requires an irreducible chain" + detail
    ).with_context(stage="solve")


def _call_solver(solver, chain: CTMC, tol: float, max_iterations: int,
                 options: Mapping | None) -> np.ndarray:
    """Invoke a solver callable, passing ``options`` only if it takes them.

    Keeps third-party three-argument solvers registered in
    :data:`SOLVERS` working while the built-in solvers (and the
    fault-injection wrappers) accept the fourth ``options`` parameter.
    """
    if options is None:
        return solver(chain, tol, max_iterations)
    try:
        sig = inspect.signature(solver)
    except (TypeError, ValueError):
        return solver(chain, tol, max_iterations)
    params = list(sig.parameters.values())
    variadic = any(
        p.kind in (p.VAR_POSITIONAL, p.VAR_KEYWORD) for p in params
    )
    positional = [
        p for p in params
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    ]
    if variadic or len(positional) >= 4:
        return solver(chain, tol, max_iterations, options)
    return solver(chain, tol, max_iterations)


def _normalise(pi: np.ndarray, method: str, tol: float) -> np.ndarray:
    if not np.all(np.isfinite(pi)):
        raise SolverError(f"{method} solver produced non-finite probabilities")
    # Tiny negative round-off is expected from direct solves; anything
    # materially negative means the solve failed.
    if pi.min() < -1e-8:
        raise SolverError(f"{method} solver produced negative probabilities ({pi.min():g})")
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if total <= 0:
        raise SolverError(f"{method} solver produced a zero vector")
    return pi / total


# ----------------------------------------------------------------------
# Individual methods
# ----------------------------------------------------------------------
def _solve_direct(chain: CTMC, tol: float, max_iterations: int,
                  options: Mapping | None = None) -> np.ndarray:
    """Sparse LU on ``Qᵀ π = 0`` with one row replaced by ``Σπ = 1``."""
    n = chain.n_states
    A = chain.Q.transpose().tocsr(copy=True).tolil()
    A[n - 1, :] = np.ones(n)
    b = np.zeros(n)
    b[n - 1] = 1.0
    pi = spla.spsolve(A.tocsc(), b)
    return np.asarray(pi).ravel()


_KRYLOV_FNS = {
    "gmres": spla.gmres,
    "bicgstab": spla.bicgstab,
    "lgmres": spla.lgmres,
}


def _krylov(name: str) -> Callable[..., np.ndarray]:
    def solve(chain: CTMC, tol: float, max_iterations: int,
              options: Mapping | None = None) -> np.ndarray:
        options = options or {}
        info_out = options.get("info")
        if not isinstance(info_out, dict):
            info_out = {}
        n = chain.n_states
        b = np.zeros(n)
        b[n - 1] = 1.0
        if chain.materialized:
            A = chain.Q.transpose().tocsr(copy=True).tolil()
            A[n - 1, :] = np.ones(n)
            A = A.tocsc()
            try:
                ilu = spla.spilu(
                    A,
                    drop_tol=options.get("ilu_drop_tol", 1e-5),
                    fill_factor=options.get("ilu_fill_factor", 20),
                )
                M = spla.LinearOperator((n, n), ilu.solve)
                info_out["preconditioner"] = "ilu"
            except (RuntimeError, ValueError, MemoryError):
                # spilu raises RuntimeError on exactly-singular factors, but
                # near-singular or very large systems can also surface as
                # ValueError/MemoryError — an unpreconditioned solve beats a
                # crashed one in every case.
                M = None
                info_out["preconditioner"] = "none-fallback"
        else:
            # Matrix-free backend: the normal system's operator is
            # Qᵀx with the last row replaced by Σx — ILU would need
            # the matrix, so the solve runs unpreconditioned rather
            # than forcing materialisation.
            op = chain.generator

            def normal_matvec(x):
                x = np.asarray(x, dtype=float).ravel()
                y = op.rmatvec(x)
                y[n - 1] = x.sum()
                return y

            A = spla.LinearOperator((n, n), matvec=normal_matvec, dtype=float)
            M = None
            info_out["preconditioner"] = "none-operator"
        x0 = np.asarray(options.get("x0", np.full(n, 1.0 / n)), dtype=float)
        fn = _KRYLOV_FNS[name]
        iterations = [0]
        events = get_events()
        start = time.perf_counter() if events.enabled else 0.0

        def count_iteration(arg):
            iterations[0] += 1
            if events.enabled:
                # gmres (legacy callback) hands us the preconditioned
                # residual norm directly; bicgstab/lgmres hand the
                # iterate, so the true residual costs one extra SpMV —
                # paid only while an event stream is live.
                if name == "gmres":
                    residual = float(arg)
                else:
                    residual = float(np.abs(b - A @ np.asarray(arg).ravel()).max())
                events.emit(
                    "solver.convergence", solver=name,
                    iteration=iterations[0], residual=residual,
                    elapsed_s=round(time.perf_counter() - start, 9),
                )

        kwargs = {"rtol": max(tol, 1e-12), "maxiter": max_iterations, "M": M,
                  "x0": x0, "callback": count_iteration}
        if name == "gmres":
            kwargs["restart"] = min(50, n)
            kwargs["callback_type"] = "legacy"
        pi, info = fn(A, b, **kwargs)
        if events.enabled and iterations[0] == 0:
            # scipy skips the callback when x0 already satisfies the
            # tolerance; record the solve anyway so every Krylov call
            # leaves at least one convergence event behind.
            residual = float(np.abs(b - A @ np.asarray(pi).ravel()).max())
            events.emit(
                "solver.convergence", solver=name, iteration=0,
                residual=residual,
                elapsed_s=round(time.perf_counter() - start, 9),
            )
        metrics = get_metrics()
        metrics.counter("solver_iterations").inc(iterations[0])
        metrics.counter("spmv_count").inc(iterations[0])
        if info != 0:
            raise SolverError(f"{name} failed to converge (info={info})")
        return np.asarray(pi).ravel()

    return solve


def _solve_power(chain: CTMC, tol: float, max_iterations: int,
                 options: Mapping | None = None) -> np.ndarray:
    """Power iteration on the uniformized DTMC ``P = I + Q/Λ``.

    ``Pᵀπ = π + Qᵀπ/Λ`` needs only the generator's ``rmatvec``, so the
    iteration runs matrix-free on either backend (Λ is 1.02× the
    maximum exit rate, strictly above it for aperiodicity)."""
    options = options or {}
    op = chain.generator
    lam = max(chain.max_exit_rate() * 1.02, 1e-12)
    n = chain.n_states
    pi = np.asarray(options.get("x0", np.full(n, 1.0 / n)), dtype=float)
    pi = np.clip(pi, 0.0, None)
    pi /= pi.sum()
    events = get_events()
    start = time.perf_counter() if events.enabled else 0.0
    it = 0
    try:
        for it in range(1, max_iterations + 1):
            nxt = pi + op.rmatvec(pi) / lam
            nxt /= nxt.sum()
            delta = np.abs(nxt - pi).max()
            if events.enabled:
                events.emit(
                    "solver.convergence", solver="power",
                    iteration=it, residual=float(delta),
                    elapsed_s=round(time.perf_counter() - start, 9),
                )
            if delta < tol:
                return nxt
            pi = nxt
    finally:
        metrics = get_metrics()
        metrics.counter("solver_iterations").inc(it)
        metrics.counter("spmv_count").inc(it)
    raise SolverError(f"power iteration did not converge in {max_iterations} steps")


def _solve_gauss_seidel(chain: CTMC, tol: float, max_iterations: int,
                        options: Mapping | None = None) -> np.ndarray:
    """Gauss–Seidel on ``πQ = 0``.

    Written over the transposed generator in CSR so each state's update
    streams one contiguous row (cache-friendly per the HPC guide).  The
    in-place latest-value sweep needs random row access, so this is one
    of the two methods that materialise a descriptor-backed chain.
    """
    n = chain.n_states
    QT = chain.Q.transpose().tocsr()
    indptr, indices, data = QT.indptr, QT.indices, QT.data
    diag = chain.Q.diagonal()
    if np.any(diag == 0.0):
        raise SolverError("stationary iteration requires every state to have an exit rate")
    pi = np.full(n, 1.0 / n)
    events = get_events()
    start = time.perf_counter() if events.enabled else 0.0
    sweeps = 0
    try:
        for sweeps in range(1, max_iterations + 1):
            src = pi
            max_delta = 0.0
            for i in range(n):
                acc = 0.0
                for k in range(indptr[i], indptr[i + 1]):
                    j = indices[k]
                    if j != i:
                        acc += data[k] * src[j]
                new = acc / -diag[i]
                delta = abs(new - pi[i])
                if delta > max_delta:
                    max_delta = delta
                pi[i] = new
            total = pi.sum()
            if total > 0:
                pi /= total
            if events.enabled:
                events.emit(
                    "solver.convergence", solver="gauss_seidel",
                    iteration=sweeps, residual=float(max_delta),
                    elapsed_s=round(time.perf_counter() - start, 9),
                )
            if max_delta < tol:
                return pi
    finally:
        metrics = get_metrics()
        metrics.counter("solver_iterations").inc(sweeps)
        metrics.counter("spmv_count").inc(sweeps)
    raise SolverError(
        f"gauss_seidel did not converge in {max_iterations} sweeps"
    )


def _solve_jacobi(chain: CTMC, tol: float, max_iterations: int,
                  options: Mapping | None = None) -> np.ndarray:
    """Damped Jacobi on ``πQ = 0``, matrix-free.

    The whole sweep is one ``rmatvec``: the off-diagonal accumulation
    ``Σ_{j≠i} Qᵀ[i,j]·π_j`` equals ``(Qᵀπ)_i + exit_i·π_i`` because the
    diagonal of ``Q`` is ``-exit``.  Undamped Jacobi has
    iteration-matrix spectral radius 1 on this singular system and
    oscillates on cyclic chains; a relaxation factor < 1 restores
    convergence without moving the fixed point.
    """
    omega = 0.7
    n = chain.n_states
    op = chain.generator
    exits = chain.exit_rates()
    if np.any(exits == 0.0):
        raise SolverError("stationary iteration requires every state to have an exit rate")
    pi = np.full(n, 1.0 / n)
    events = get_events()
    start = time.perf_counter() if events.enabled else 0.0
    sweeps = 0
    try:
        for sweeps in range(1, max_iterations + 1):
            acc = op.rmatvec(pi) + exits * pi
            new = omega * (acc / exits) + (1.0 - omega) * pi
            max_delta = float(np.abs(new - pi).max())
            pi = new
            total = pi.sum()
            if total > 0:
                pi /= total
            if events.enabled:
                events.emit(
                    "solver.convergence", solver="jacobi",
                    iteration=sweeps, residual=max_delta,
                    elapsed_s=round(time.perf_counter() - start, 9),
                )
            if max_delta < tol:
                return pi
    finally:
        metrics = get_metrics()
        metrics.counter("solver_iterations").inc(sweeps)
        metrics.counter("spmv_count").inc(sweeps)
    raise SolverError(
        f"jacobi did not converge in {max_iterations} sweeps"
    )


#: The solver registry: name → callable ``(chain, tol, max_iterations,
#: options=None)``.  :mod:`repro.resilience.faultinject` swaps entries
#: in and out to inject failures, so callers should look a method up at
#: call time rather than caching the callable.
SOLVERS: dict[str, Callable[..., np.ndarray]] = {
    "direct": _solve_direct,
    "gmres": _krylov("gmres"),
    "bicgstab": _krylov("bicgstab"),
    "lgmres": _krylov("lgmres"),
    "power": _solve_power,
    "gauss_seidel": _solve_gauss_seidel,
    "jacobi": _solve_jacobi,
}
