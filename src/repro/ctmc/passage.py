"""Passage-time measures.

The Tomcat experiment of the paper quantifies its optimisation "in terms
of the reduction in the delay spent waiting for the response from the
server".  Two complementary formulations are provided:

* **mean first-passage time** into a target set from a start state —
  solve ``Q_NN · m = -1`` over the non-target states (the classic
  absorbing-chain argument);
* **mean residence delay per visit** of a state set in steady state —
  by the renewal-reward theorem the mean time spent in set ``A`` per
  entry is ``π(A) / (entry flux into A)``, the natural "waiting delay"
  measure for a recurring request/response cycle.

Both are exact, sparse, and O(solve) — no simulation needed.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.ctmc.chain import CTMC
from repro.ctmc.steady import steady_state
from repro.exceptions import SolverError

__all__ = [
    "mean_passage_time",
    "passage_time_cdf",
    "mean_time_per_visit",
    "visit_frequency",
]


def _target_mask(chain: CTMC, targets: Iterable[int]) -> np.ndarray:
    mask = np.zeros(chain.n_states, dtype=bool)
    idx = np.fromiter(targets, dtype=np.int64)
    if idx.size == 0:
        raise SolverError("target set must be non-empty")
    if idx.min() < 0 or idx.max() >= chain.n_states:
        raise SolverError("target state index out of range")
    mask[idx] = True
    return mask


def mean_passage_time(chain: CTMC, source: int, targets: Iterable[int]) -> float:
    """Expected time to first reach any state in ``targets`` from
    ``source``.  Zero if the source is itself a target."""
    mask = _target_mask(chain, targets)
    if mask[source]:
        return 0.0
    non_target = np.flatnonzero(~mask)
    pos = {int(s): k for k, s in enumerate(non_target)}
    Q_nn = chain.Q[non_target][:, non_target].tocsc()
    rhs = -np.ones(len(non_target))
    try:
        m = spla.spsolve(Q_nn, rhs)
    except RuntimeError as exc:  # singular: targets unreachable
        raise SolverError(f"passage-time system is singular: {exc}") from exc
    m = np.asarray(m).ravel()
    if not np.all(np.isfinite(m)) or np.any(m < -1e-9):
        raise SolverError(
            "passage-time solve produced invalid times; are the targets "
            "reachable from every non-target state?"
        )
    return float(m[pos[source]])


def passage_time_cdf(
    chain: CTMC, source: int, targets: Iterable[int], times: np.ndarray
) -> np.ndarray:
    """``P[T_hit <= t]`` for each ``t``: make targets absorbing and run
    transient analysis (uniformization) on the modified chain."""
    from repro.ctmc.transient import transient_distribution

    mask = _target_mask(chain, targets)
    times = np.asarray(times, dtype=float)
    if mask[source]:
        return np.ones_like(times)
    # Absorb the targets: zero their rows, rebuild the diagonal.
    Q = chain.Q.tolil(copy=True)
    for t in np.flatnonzero(mask):
        Q.rows[t] = []
        Q.data[t] = []
    Q = Q.tocsr()
    absorbed = CTMC(Q.copy(), labels=list(chain.labels), initial=source)
    out = np.empty(len(times))
    for i, t in enumerate(np.sort(times)):
        dist = transient_distribution(absorbed, float(t), source)
        out[i] = dist[mask].sum()
    order = np.argsort(np.argsort(times))
    return out[order]


def visit_frequency(chain: CTMC, states: Iterable[int], pi: np.ndarray | None = None) -> float:
    """Steady-state entry flux into the set: the rate of transitions
    from outside the set to inside it (entries per time unit)."""
    mask = _target_mask(chain, states)
    if pi is None:
        pi = steady_state(chain)
    coo = chain.Q.tocoo()
    flux = 0.0
    for i, j, v in zip(coo.row, coo.col, coo.data):
        if i != j and v > 0 and not mask[i] and mask[j]:
            flux += pi[i] * v
    return float(flux)


def mean_time_per_visit(chain: CTMC, states: Iterable[int], pi: np.ndarray | None = None) -> float:
    """Mean sojourn time in the set per entry (renewal-reward):
    ``π(set) / entry-flux``.

    For the web model this is exactly "the delay spent waiting for the
    response" per request when applied to the client's WaitForResponse
    states.
    """
    mask = _target_mask(chain, states)
    if pi is None:
        pi = steady_state(chain)
    flux = visit_frequency(chain, np.flatnonzero(mask), pi)
    if flux <= 0:
        raise SolverError("the set is never entered in steady state")
    return float(pi[mask].sum() / flux)
