"""Reward-based performance measures.

This is the layer that turns a stationary distribution into the numbers
the Choreographer reflects back into UML diagrams:

* **throughput of an action type** — the average number of completions
  of that activity per unit time, ``Σ_s π(s) · rα(s)`` where ``rα(s)``
  is the total outgoing rate of ``α``-activities in state ``s``
  (annotated on action states of activity diagrams, Figure 7);
* **state probabilities** grouped by a predicate or label pattern
  (annotated on statechart states, Section 5);
* generic expectation of a state reward vector, and utilisation as the
  special case of a 0/1 reward.
"""

from __future__ import annotations

import re
from collections.abc import Callable, Mapping

import numpy as np

from repro.ctmc.chain import CTMC
from repro.ctmc.steady import steady_state
from repro.exceptions import SolverError

__all__ = [
    "throughput",
    "all_throughputs",
    "expectation",
    "utilisation",
    "probability_by_label",
    "mean_population",
]


def throughput(chain: CTMC, action: str, pi: np.ndarray | None = None) -> float:
    """Steady-state throughput of ``action`` (completions per time unit).

    Unknown action types have throughput zero rather than raising — the
    reflector asks about every activity in a diagram, including ones
    mapped away (e.g. hidden or renamed), and zero is the honest answer.
    """
    pi = _ensure_pi(chain, pi)
    rates = chain.action_rates.get(action)
    if rates is None:
        return 0.0
    return float(pi @ rates)


def all_throughputs(chain: CTMC, pi: np.ndarray | None = None) -> dict[str, float]:
    """Throughput of every action type the chain performs, sorted by name."""
    pi = _ensure_pi(chain, pi)
    return {action: float(pi @ rates) for action, rates in sorted(chain.action_rates.items())}


def expectation(chain: CTMC, rewards: np.ndarray | Mapping[int, float], pi: np.ndarray | None = None) -> float:
    """``E_π[r]`` for a reward vector or sparse {state: reward} mapping."""
    pi = _ensure_pi(chain, pi)
    if isinstance(rewards, Mapping):
        vec = np.zeros(chain.n_states)
        for state, value in rewards.items():
            if not (0 <= state < chain.n_states):
                raise SolverError(f"reward state {state} out of range")
            vec[state] = value
        rewards = vec
    rewards = np.asarray(rewards, dtype=float)
    if rewards.shape != (chain.n_states,):
        raise SolverError(
            f"reward vector must have shape ({chain.n_states},), got {rewards.shape}"
        )
    return float(pi @ rewards)


def utilisation(
    chain: CTMC, predicate: Callable[[int, str], bool], pi: np.ndarray | None = None
) -> float:
    """Probability mass of states satisfying ``predicate(index, label)``."""
    pi = _ensure_pi(chain, pi)
    labels = chain.labels or [""] * chain.n_states
    mask = np.fromiter(
        (predicate(i, labels[i]) for i in range(chain.n_states)), dtype=bool, count=chain.n_states
    )
    return float(pi[mask].sum())


def probability_by_label(
    chain: CTMC, pattern: str, pi: np.ndarray | None = None, *, regex: bool = False
) -> float:
    """Total steady-state probability of states whose label contains
    ``pattern`` (or matches it, with ``regex=True``).

    This is how statechart reflection computes the probability of a UML
    state: every CTMC state whose derivative mentions the corresponding
    PEPA local state contributes.
    """
    if not chain.labels:
        raise SolverError("chain has no labels to match against")
    pi = _ensure_pi(chain, pi)
    if regex:
        rx = re.compile(pattern)
        mask = np.fromiter((bool(rx.search(lbl)) for lbl in chain.labels), dtype=bool)
    else:
        mask = np.fromiter((pattern in lbl for lbl in chain.labels), dtype=bool)
    return float(pi[mask].sum())


def mean_population(
    chain: CTMC, count: Callable[[str], int], pi: np.ndarray | None = None
) -> float:
    """Expected value of an integer observation on labels (e.g. number
    of tokens at a place, queue length)."""
    if not chain.labels:
        raise SolverError("chain has no labels to count over")
    pi = _ensure_pi(chain, pi)
    values = np.fromiter((count(lbl) for lbl in chain.labels), dtype=float)
    return float(pi @ values)


def _ensure_pi(chain: CTMC, pi: np.ndarray | None) -> np.ndarray:
    if pi is None:
        return steady_state(chain)
    pi = np.asarray(pi, dtype=float)
    if pi.shape != (chain.n_states,):
        raise SolverError(f"distribution must have shape ({chain.n_states},), got {pi.shape}")
    return pi
