"""Continuous-Time Markov Chain analysis (paper substrate S2).

The numerical back end of the reproduction: sparse generators, a menu
of steady-state solvers, uniformization-based transient analysis,
passage times, exact lumping and explicit-state export formats.
"""

from repro.ctmc.chain import CTMC, build_ctmc
from repro.ctmc.operator import (
    CsrGenerator,
    DescriptorUnsupported,
    GeneratorOperator,
    KroneckerDescriptor,
    KroneckerTerm,
)
from repro.ctmc.cumulative import accumulated_reward, reward_to_absorption, time_average_reward
from repro.ctmc.sensitivity import measure_sensitivity, stationary_derivative
from repro.ctmc.dtmc import ctmc_pi_from_embedded, dtmc_stationary, embedded_dtmc
from repro.ctmc.export import to_dot, to_matrix_market, to_prism, write_prism_files
from repro.ctmc.lumping import LumpedChain, coarsest_lumping, lump
from repro.ctmc.passage import (
    mean_passage_time,
    mean_time_per_visit,
    passage_time_cdf,
    visit_frequency,
)
from repro.ctmc.rewards import (
    all_throughputs,
    expectation,
    mean_population,
    probability_by_label,
    throughput,
    utilisation,
)
from repro.ctmc.serialize import ctmc_from_payload, ctmc_to_payload
from repro.ctmc.steady import SOLVERS, steady_state
from repro.ctmc.transient import expected_rewards_at, transient_curve, transient_distribution

__all__ = [
    "CTMC",
    "build_ctmc",
    "GeneratorOperator",
    "CsrGenerator",
    "KroneckerDescriptor",
    "KroneckerTerm",
    "DescriptorUnsupported",
    "steady_state",
    "SOLVERS",
    "transient_distribution",
    "transient_curve",
    "expected_rewards_at",
    "throughput",
    "all_throughputs",
    "expectation",
    "utilisation",
    "probability_by_label",
    "mean_population",
    "mean_passage_time",
    "passage_time_cdf",
    "mean_time_per_visit",
    "visit_frequency",
    "lump",
    "coarsest_lumping",
    "LumpedChain",
    "embedded_dtmc",
    "dtmc_stationary",
    "ctmc_pi_from_embedded",
    "to_prism",
    "write_prism_files",
    "to_matrix_market",
    "to_dot",
    "accumulated_reward",
    "reward_to_absorption",
    "time_average_reward",
    "stationary_derivative",
    "measure_sensitivity",
    "ctmc_to_payload",
    "ctmc_from_payload",
]
