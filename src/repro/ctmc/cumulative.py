"""Cumulative (accumulated) reward measures.

Where :mod:`repro.ctmc.rewards` answers "how much per unit time, in the
long run", these answer "how much in total over [0, t]" and "how much
until absorption":

* ``E[∫₀ᵗ r(X_s) ds]`` — expected accumulated state reward over a
  finite horizon, by uniformization of the joint (distribution,
  accumulator) recursion;
* expected total reward until hitting a target set — the absorbing-
  chain linear system (e.g. *energy consumed per handover cycle* for
  the PDA model, battery life being the mobile-device concern the
  paper's introduction raises).
"""

from __future__ import annotations

import math

import numpy as np
import scipy.sparse.linalg as spla

from repro.ctmc.chain import CTMC
from repro.ctmc.transient import _initial_vector
from repro.exceptions import SolverError

__all__ = ["accumulated_reward", "reward_to_absorption", "time_average_reward"]


def accumulated_reward(
    chain: CTMC,
    t: float,
    rewards: np.ndarray,
    initial: np.ndarray | int | None = None,
    *,
    epsilon: float = 1e-12,
) -> float:
    """``E[∫₀ᵗ r(X_s) ds]`` by uniformization.

    Uses the standard identity: with ``P = I + Q/Λ`` and Poisson
    weights ``β_k(Λt)``, the integral equals
    ``(1/Λ) Σ_k  [1 - F_k(Λt)] · (π₀ Pᵏ) · r`` where ``F_k`` is the
    Poisson CDF — i.e. each jump epoch contributes the expected reward
    of the state occupied there, weighted by the expected time spent.
    """
    rewards = np.asarray(rewards, dtype=float)
    if rewards.shape != (chain.n_states,):
        raise SolverError(f"reward vector must have shape ({chain.n_states},)")
    if t < 0:
        raise SolverError("time must be non-negative")
    if t == 0.0:
        return 0.0
    pi0 = _initial_vector(chain, initial)
    P, lam = chain.uniformized()
    PT = P.transpose().tocsr()
    mean = lam * t
    # ∫₀ᵗ β_k(Λs) ds = (1 - F_k(Λt)) / Λ with F_k the Poisson CDF, so
    # acc = Σ_k (1 - F_k) · (π₀ Pᵏ) · r, iterating pmf/cdf in log space.
    log_p = -mean
    cdf = math.exp(log_p)
    vec = pi0
    acc = (1.0 - cdf) * float(vec @ rewards)  # k = 0
    k = 0
    limit = int(mean + 20 * math.sqrt(mean) + 50)
    while (1.0 - cdf) > epsilon and k < limit:
        k += 1
        vec = PT @ vec
        log_p += math.log(mean / k)
        cdf += math.exp(log_p)
        acc += (1.0 - cdf) * float(vec @ rewards)
    return acc / lam


def reward_to_absorption(
    chain: CTMC,
    targets: list[int] | np.ndarray,
    rewards: np.ndarray,
    source: int | None = None,
) -> float | np.ndarray:
    """Expected total reward accumulated before first hitting the
    target set: solve ``Q_NN m = -r_N`` over non-target states.

    With unit rewards this is the mean passage time; with power-draw
    rewards it is e.g. the energy spent per cycle.  Returns the value
    for ``source``, or the full vector over non-target states when
    ``source`` is ``None``.
    """
    rewards = np.asarray(rewards, dtype=float)
    if rewards.shape != (chain.n_states,):
        raise SolverError(f"reward vector must have shape ({chain.n_states},)")
    mask = np.zeros(chain.n_states, dtype=bool)
    idx = np.asarray(list(targets), dtype=np.int64)
    if idx.size == 0:
        raise SolverError("target set must be non-empty")
    mask[idx] = True
    if source is not None and mask[source]:
        return 0.0
    non_target = np.flatnonzero(~mask)
    Q_nn = chain.Q[non_target][:, non_target].tocsc()
    rhs = -rewards[non_target]
    try:
        m = np.asarray(spla.spsolve(Q_nn, rhs)).ravel()
    except RuntimeError as exc:
        raise SolverError(f"reward-to-absorption system is singular: {exc}") from exc
    if not np.all(np.isfinite(m)):
        raise SolverError("reward-to-absorption solve produced non-finite values")
    if source is None:
        return m
    pos = int(np.flatnonzero(non_target == source)[0])
    return float(m[pos])


def time_average_reward(
    chain: CTMC, t: float, rewards: np.ndarray, initial: np.ndarray | int | None = None
) -> float:
    """``E[∫₀ᵗ r ds] / t`` — converges to the steady-state expectation
    as ``t`` grows (a property the tests exploit)."""
    if t <= 0:
        raise SolverError("time must be positive")
    return accumulated_reward(chain, t, rewards, initial) / t
