"""Shared exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still being able to discriminate between phases of the tool chain
(parsing, static checking, state-space derivation, numerical solution,
UML interchange, extraction and reflection).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    Every instance carries a :attr:`context` dict that pipeline layers
    enrich as the exception propagates (``stage``, ``model``,
    ``diagram``, ``attempt`` …), so a caller catching at the top of the
    tool chain can still tell *where* a failure originated without
    parsing the message text.
    """

    @property
    def context(self) -> dict:
        """Structured failure context, lazily created per instance."""
        ctx = getattr(self, "_context", None)
        if ctx is None:
            ctx = {}
            self._context = ctx
        return ctx

    def with_context(self, **entries) -> "ReproError":
        """Merge ``entries`` into :attr:`context` and return ``self``.

        Existing keys are kept (the innermost layer, which knows the
        most, wins), so re-raising code can call this unconditionally::

            raise exc.with_context(stage="solve", model=name)
        """
        for key, value in entries.items():
            self.context.setdefault(key, value)
        return self


class PepaSyntaxError(ReproError):
    """Raised when PEPA or PEPA-net source text cannot be parsed.

    Carries the position of the offending token when available.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class RateError(ReproError):
    """Raised on illegal rate arithmetic (e.g. active+passive in a choice)."""


class WellFormednessError(ReproError):
    """Raised by static checks: undefined constants, unguarded recursion,
    cooperation on passive-only action types, unbalanced nets, etc."""


class StateSpaceError(ReproError):
    """Raised during state-space derivation (e.g. the space exceeds the
    configured bound, or the model deadlocks when the analysis requires
    an ergodic chain)."""


class DeadlockError(StateSpaceError):
    """Raised when a model reaches a state with no outgoing activities and
    the requested analysis needs an irreducible chain."""

    def __init__(self, message: str, state=None):
        self.state = state
        super().__init__(message)


class SolverError(ReproError):
    """Raised when a numerical solver fails to converge or the chain does
    not satisfy the solver's preconditions (e.g. reducible chain handed to
    a steady-state solver)."""


class BudgetExceededError(ReproError):
    """Raised when a cooperative execution budget (wall-clock deadline or
    state count) is exhausted mid-derivation.

    Unlike a bare timeout, the error carries a resumable summary of how
    far the work got: the stage name, the number of states explored, the
    size of the unexplored frontier at the moment the budget ran out,
    the elapsed wall-clock time and the limit that was hit.  All of
    these are also mirrored into :attr:`ReproError.context`.
    """

    def __init__(
        self,
        message: str,
        *,
        stage: str | None = None,
        explored: int | None = None,
        frontier: int | None = None,
        elapsed: float | None = None,
        limit: str | None = None,
    ):
        super().__init__(message)
        self.stage = stage
        self.explored = explored
        self.frontier = frontier
        self.elapsed = elapsed
        self.limit = limit
        self.with_context(
            stage=stage, explored=explored, frontier=frontier,
            elapsed=elapsed, limit=limit,
        )

    def summary(self) -> str:
        """One-line resumable progress summary (for logs and reports)."""
        parts = [f"budget exhausted ({self.limit or 'unknown limit'})"]
        if self.stage is not None:
            parts.append(f"stage={self.stage}")
        if self.explored is not None:
            parts.append(f"explored={self.explored} states")
        if self.frontier is not None:
            parts.append(f"frontier={self.frontier} pending")
        if self.elapsed is not None:
            parts.append(f"elapsed={self.elapsed:.3f}s")
        return ", ".join(parts)


class UmlModelError(ReproError):
    """Raised on ill-formed UML models (dangling edges, missing states)."""


class XmiError(ReproError):
    """Raised when an XMI document cannot be read or does not conform to
    the registered metamodel."""


class ExtractionError(ReproError):
    """Raised when a UML diagram falls outside the restrictions accepted
    by the extractor (paper section 6)."""


class ReflectionError(ReproError):
    """Raised when analysis results cannot be written back into the UML
    model (e.g. a result refers to an activity absent from the diagram)."""


class SimulationError(ReproError):
    """Raised by the stochastic simulation engine."""
