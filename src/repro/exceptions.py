"""Shared exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still being able to discriminate between phases of the tool chain
(parsing, static checking, state-space derivation, numerical solution,
UML interchange, extraction and reflection).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class PepaSyntaxError(ReproError):
    """Raised when PEPA or PEPA-net source text cannot be parsed.

    Carries the position of the offending token when available.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class RateError(ReproError):
    """Raised on illegal rate arithmetic (e.g. active+passive in a choice)."""


class WellFormednessError(ReproError):
    """Raised by static checks: undefined constants, unguarded recursion,
    cooperation on passive-only action types, unbalanced nets, etc."""


class StateSpaceError(ReproError):
    """Raised during state-space derivation (e.g. the space exceeds the
    configured bound, or the model deadlocks when the analysis requires
    an ergodic chain)."""


class DeadlockError(StateSpaceError):
    """Raised when a model reaches a state with no outgoing activities and
    the requested analysis needs an irreducible chain."""

    def __init__(self, message: str, state=None):
        self.state = state
        super().__init__(message)


class SolverError(ReproError):
    """Raised when a numerical solver fails to converge or the chain does
    not satisfy the solver's preconditions (e.g. reducible chain handed to
    a steady-state solver)."""


class UmlModelError(ReproError):
    """Raised on ill-formed UML models (dangling edges, missing states)."""


class XmiError(ReproError):
    """Raised when an XMI document cannot be read or does not conform to
    the registered metamodel."""


class ExtractionError(ReproError):
    """Raised when a UML diagram falls outside the restrictions accepted
    by the extractor (paper section 6)."""


class ReflectionError(ReproError):
    """Raised when analysis results cannot be written back into the UML
    model (e.g. a result refers to an activity absent from the diagram)."""


class SimulationError(ReproError):
    """Raised by the stochastic simulation engine."""
