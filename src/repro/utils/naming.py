"""Deterministic name utilities.

The extractor synthesises PEPA identifiers from UML element names, which
may contain spaces, punctuation or collide with each other.  These
helpers keep generated names valid and unique without any global mutable
state (a counter is threaded through explicitly via the ``taken`` set),
so repeated extractions of the same model produce identical output.
"""

from __future__ import annotations

import re
from collections.abc import Iterable

_IDENT_RE = re.compile(r"[^A-Za-z0-9_]")
_LEADING_RE = re.compile(r"^[^A-Za-z]+")


def sanitize_identifier(raw: str, *, upper_initial: bool = False) -> str:
    """Turn an arbitrary UML label into a valid PEPA identifier.

    Spaces and punctuation become underscores, leading non-letters are
    dropped, and the empty result falls back to ``"x"``.  When
    ``upper_initial`` is true the first character is upper-cased, which
    is the PEPA convention for component constants (action types stay
    lower-case).

    >>> sanitize_identifier("detect weak signal")
    'detect_weak_signal'
    >>> sanitize_identifier("f*: FILE", upper_initial=True)
    'F_FILE'
    """
    cleaned = _IDENT_RE.sub("_", raw.strip())
    cleaned = _LEADING_RE.sub("", cleaned)
    cleaned = re.sub(r"__+", "_", cleaned).strip("_")
    if not cleaned:
        cleaned = "x"
    if upper_initial:
        cleaned = cleaned[0].upper() + cleaned[1:]
    else:
        cleaned = cleaned[0].lower() + cleaned[1:]
    return cleaned


def fresh_name(base: str, taken: Iterable[str]) -> str:
    """Return ``base`` or ``base_2``, ``base_3``, ... — whichever is the
    first not present in ``taken``.

    >>> fresh_name("P", {"P", "P_2"})
    'P_3'
    """
    taken_set = set(taken)
    if base not in taken_set:
        return base
    i = 2
    while f"{base}_{i}" in taken_set:
        i += 1
    return f"{base}_{i}"
