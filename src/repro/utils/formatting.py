"""Plain-text formatting for reports and the CLI.

The Choreographer reporting layer prints aligned tables of activity
throughputs and state probabilities; these helpers keep that rendering
in one place and dependency-free.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_rate(value: float, *, digits: int = 6) -> str:
    """Format a rate/probability compactly: fixed point for moderate
    magnitudes, scientific otherwise, trailing zeros trimmed.

    >>> format_rate(0.25)
    '0.25'
    >>> format_rate(1.23456789e-9)
    '1.234568e-09'
    """
    if value == 0.0:
        return "0"
    if 1e-4 <= abs(value) < 1e7:
        text = f"{value:.{digits}f}".rstrip("0").rstrip(".")
        return text if text not in ("", "-") else "0"
    return f"{value:.{digits}e}"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned monospace table.

    Columns are sized to the widest cell; numeric cells are
    right-aligned, text cells left-aligned.
    """
    rendered: list[list[str]] = [[str(h) for h in headers]]
    numeric = [True] * len(headers)
    for row in rows:
        cells = []
        for i, cell in enumerate(row):
            if isinstance(cell, float):
                cells.append(format_rate(cell))
            else:
                cells.append(str(cell))
                numeric[i] = numeric[i] and isinstance(cell, (int, float))
        rendered.append(cells)
    widths = [max(len(r[i]) for r in rendered) for i in range(len(headers))]
    lines = []
    for ridx, row in enumerate(rendered):
        parts = []
        for i, cell in enumerate(row):
            if numeric[i] and ridx > 0:
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        lines.append("  ".join(parts).rstrip())
        if ridx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
