"""Deterministic ordering helpers.

State-space exploration must be reproducible run-to-run so that state
indices (and hence solver output ordering, benchmark keys, and golden
test values) are stable.  Everything that iterates over sets in this
library routes through :func:`stable_sorted`.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable, Mapping
from typing import TypeVar

from repro.exceptions import ReproError

T = TypeVar("T")


def stable_sorted(items: Iterable[T], key: Callable[[T], object] | None = None) -> list[T]:
    """Sort with a total, deterministic order even for mixed key types.

    Python refuses to compare e.g. ``int`` with ``str``; we prefix every
    key with its type name so heterogeneous collections still sort
    deterministically.
    """
    if key is None:
        key = lambda x: x  # noqa: E731 - tiny identity

    def wrapped(item: T) -> tuple[str, object]:
        k = key(item)
        return (type(k).__name__, _comparable(k))

    return sorted(items, key=wrapped)


def _comparable(value: object) -> object:
    if isinstance(value, (tuple, list)):
        return tuple((type(v).__name__, _comparable(v)) for v in value)
    if isinstance(value, frozenset):
        return tuple(sorted((type(v).__name__, _comparable(v)) for v in value))
    return value


def topological_order(nodes: Iterable[Hashable], edges: Mapping[Hashable, Iterable[Hashable]]) -> list:
    """Kahn's algorithm with deterministic tie-breaking.

    ``edges[n]`` lists the successors of ``n``.  Raises
    :class:`ReproError` on a cycle, naming one node on it.
    """
    nodes = stable_sorted(nodes)
    succ = {n: stable_sorted(edges.get(n, ())) for n in nodes}
    indeg: dict[Hashable, int] = {n: 0 for n in nodes}
    for n in nodes:
        for m in succ[n]:
            if m not in indeg:
                raise ReproError(f"edge target {m!r} is not a node")
            indeg[m] += 1
    ready = [n for n in nodes if indeg[n] == 0]
    out: list = []
    while ready:
        n = ready.pop(0)
        out.append(n)
        newly = []
        for m in succ[n]:
            indeg[m] -= 1
            if indeg[m] == 0:
                newly.append(m)
        ready = stable_sorted(ready + newly)
    if len(out) != len(nodes):
        cyclic = stable_sorted(n for n in nodes if indeg[n] > 0)
        raise ReproError(f"cycle detected involving {cyclic[0]!r}")
    return out
