"""Small shared utilities: deterministic ordering, name generation,
pretty formatting.  Nothing here knows about PEPA or UML."""

from repro.utils.naming import fresh_name, sanitize_identifier
from repro.utils.ordering import stable_sorted, topological_order
from repro.utils.formatting import format_rate, format_table

__all__ = [
    "fresh_name",
    "sanitize_identifier",
    "stable_sorted",
    "topological_order",
    "format_rate",
    "format_table",
]
