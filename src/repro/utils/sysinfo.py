"""Process-level system measurements shared by the bench tooling.

One home for the ``getrusage`` portability wart so no caller ever
re-derives the unit: ``ru_maxrss`` is **kibibytes on Linux** but
**bytes on macOS** (and kilobytes-ish elsewhere); :func:`peak_rss_kib`
normalises every platform to KiB.
"""

from __future__ import annotations

import os
import platform
import sys

__all__ = ["peak_rss_kib", "host_info"]

try:
    import resource
except ImportError:  # pragma: no cover — e.g. Windows
    resource = None


def peak_rss_kib() -> int:
    """Peak resident set size of this process in KiB (0 if unmeasurable).

    Use this everywhere instead of reading ``ru_maxrss`` directly — the
    raw field changes unit across platforms.
    """
    if resource is None:  # pragma: no cover
        return 0
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(usage) // 1024
    return int(usage)


def host_info() -> dict:
    """JSON-able identity of the process environment.

    Recorded in every run-ledger document so cross-run comparisons can
    tell a real regression from a changed interpreter or machine.
    """
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "pid": os.getpid(),
        "cpu_count": os.cpu_count() or 1,
    }
