"""The PEPA Workbench facades.

The paper builds on two tools: the PEPA Workbench [20] for plain PEPA
models and the PEPA Workbench for PEPA nets [23].  These classes are
their API images: parse/check/derive/solve with a chosen numerical
method, caching nothing, raising early.

Both facades optionally take a resilience configuration: ``policy``
(a :class:`~repro.resilience.fallback.FallbackPolicy` or a
comma-separated method list) routes the numerical solve through the
fallback chain, and ``deadline`` (seconds) puts a fresh cooperative
:class:`~repro.resilience.budget.ExecutionBudget` on each solve's
state-space derivation.  Alternatively ``budget`` installs one
*shared* pre-built budget across every solve of the workbench — the
batch engine uses this to give each task a single task-wide budget
whose clock started when the task did.
"""

from __future__ import annotations

from repro.pepa.measures import ModelAnalysis, analyse
from repro.pepa.environment import PepaModel
from repro.pepa.parser import parse_model
from repro.pepa.wellformed import assert_well_formed
from repro.pepanets.measures import NetAnalysis, analyse_net
from repro.pepanets.parser import parse_net
from repro.pepanets.syntax import PepaNet
from repro.pepanets.wellformed import assert_net_well_formed
from repro.resilience.budget import ExecutionBudget

__all__ = ["PepaWorkbench", "PepaNetWorkbench"]


class PepaWorkbench:
    """Solve plain PEPA models (the Java-edition Workbench stand-in)."""

    def __init__(self, *, solver: str = "direct", max_states: int = 1_000_000,
                 reducible: str = "error", policy=None, deadline: float | None = None,
                 budget: ExecutionBudget | None = None, generator: str = "csr",
                 fluid: bool = False, replicas: int | None = None):
        self.solver = solver
        self.max_states = max_states
        self.reducible = reducible
        self.policy = policy
        self.deadline = deadline
        self.budget = budget
        #: Generator representation: ``"csr"``, ``"descriptor"`` or
        #: ``"auto"`` (matrix-free Kronecker descriptor when the system
        #: equation supports it).
        self.generator = generator
        #: Mean-field route: solve the fluid ODE limit instead of the
        #: exact CTMC, scaling the population to ``replicas`` when set.
        self.fluid = fluid
        self.replicas = replicas

    def _budget(self) -> ExecutionBudget | None:
        if self.budget is not None:
            return self.budget
        if self.deadline is None:
            return None
        return ExecutionBudget.of(deadline_seconds=self.deadline)

    def parse(self, source: str) -> PepaModel:
        """Parse source text and run the static well-formedness checks."""
        model = parse_model(source)
        assert_well_formed(model)
        return model

    def solve(self, model: PepaModel) -> ModelAnalysis:
        """Check, derive and solve a model; returns the analysis object
        (a :class:`~repro.fluid.ode.FluidAnalysis` on the fluid route)."""
        assert_well_formed(model)
        if self.fluid:
            return analyse(model, fluid=True, replicas=self.replicas)
        return analyse(
            model, solver=self.solver, max_states=self.max_states,
            reducible=self.reducible, policy=self.policy, budget=self._budget(),
            generator=self.generator,
        )

    def solve_source(self, source: str) -> ModelAnalysis:
        """Parse + solve in one call."""
        return self.solve(self.parse(source))


class PepaNetWorkbench:
    """Solve PEPA nets (the PEPA Workbench for PEPA nets stand-in)."""

    def __init__(self, *, solver: str = "direct", max_states: int = 1_000_000,
                 reducible: str = "bscc", policy=None, deadline: float | None = None,
                 budget: ExecutionBudget | None = None):
        self.solver = solver
        self.max_states = max_states
        self.reducible = reducible
        self.policy = policy
        self.deadline = deadline
        self.budget = budget

    def _budget(self) -> ExecutionBudget | None:
        if self.budget is not None:
            return self.budget
        if self.deadline is None:
            return None
        return ExecutionBudget.of(deadline_seconds=self.deadline)

    def parse(self, source: str) -> PepaNet:
        """Parse PEPA-net source and run the net-level static checks."""
        net = parse_net(source)
        assert_net_well_formed(net)
        return net

    def solve(self, net: PepaNet) -> NetAnalysis:
        """Check, derive and solve a net; returns the analysis object."""
        assert_net_well_formed(net)
        return analyse_net(
            net, solver=self.solver, max_states=self.max_states,
            reducible=self.reducible, policy=self.policy, budget=self._budget(),
        )

    def solve_source(self, source: str) -> NetAnalysis:
        """Parse + solve in one call."""
        return self.solve(self.parse(source))
