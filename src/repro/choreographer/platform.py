"""The Choreographer design platform (paper Section 4, Figure 4).

The integrated pipeline: UML model in (typed, or Poseidon-flavoured
XMI) → preprocess → metadata repository → extract → PEPA Workbench
(numerical solution) → result table → reflect → postprocess → annotated
UML model out.  Every intermediate artefact of Figure 4 is available on
the outcome objects, so tests and benchmarks can assert on each stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ReproError
from repro.extract.activity2pepanet import ExtractionResult, extract_activity_diagram
from repro.obs import get_tracer
from repro.extract.rates import RateTable
from repro.extract.statechart2pepa import StatechartExtraction, compose_state_machines
from repro.pepa.measures import ModelAnalysis
from repro.pepanets.measures import NetAnalysis
from repro.reflect.activity_reflector import reflect_activity_results, results_of_net_analysis
from repro.reflect.results import ResultTable
from repro.reflect.statechart_reflector import (
    reflect_state_probabilities,
    results_of_model_analysis,
)
from repro.choreographer.workbench import PepaNetWorkbench, PepaWorkbench
from repro.choreographer.reporting import activity_report, statechart_report
from repro.uml.activity import ActivityGraph
from repro.uml.model import UmlModel
from repro.uml.statechart import StateMachine
from repro.uml.xmi.poseidon import postprocess, preprocess
from repro.uml.xmi.reader import read_model
from repro.uml.xmi.writer import write_model

__all__ = [
    "ActivityOutcome",
    "StatechartOutcome",
    "PipelineFailure",
    "PipelineReport",
    "PipelineResult",
    "Choreographer",
]


@dataclass
class ActivityOutcome:
    """Everything produced by one activity-diagram analysis."""

    extraction: ExtractionResult
    analysis: NetAnalysis
    results: ResultTable
    graph: ActivityGraph

    def throughput_of(self, activity_name: str) -> float:
        """Steady-state throughput of a UML activity, by its diagram name."""
        node = self.graph.action_by_name(activity_name)
        return self.analysis.throughput(self.extraction.pepa_action_of(node))

    def report(self) -> str:
        """A plain-text report of the outcome (the Figure 6/7 content)."""
        return activity_report(self)


@dataclass
class StatechartOutcome:
    """Everything produced by one state-diagram analysis."""

    extractions: list[StatechartExtraction]
    analysis: ModelAnalysis
    results: ResultTable
    machines: list[StateMachine] = field(default_factory=list)

    def probability_of(self, machine_name: str, state_name: str) -> float:
        """Steady-state probability of a UML state, by machine and state name."""
        for extraction in self.extractions:
            if extraction.machine.name == machine_name:
                constant = extraction.constant_of_state(state_name)
                return self.analysis.probability_of_local_state(constant)
        raise KeyError(f"no machine named {machine_name!r} in this outcome")

    def report(self) -> str:
        """A plain-text report of the composed state-diagram analysis."""
        return statechart_report(self)


@dataclass
class PipelineFailure:
    """One captured per-diagram failure of the non-strict pipeline.

    ``stage`` is the tool-chain stage that blew up (``extract``,
    ``solve`` or ``reflect``); ``diagram`` names the offending diagram;
    ``error`` is the original exception, and ``diagnostics`` carries
    the :class:`~repro.resilience.fallback.SolveDiagnostics` attempt
    log when the failure came out of the fallback solver chain.
    """

    stage: str
    diagram: str
    error: Exception
    diagnostics: object | None = None

    @property
    def context(self) -> dict:
        """The structured context of the underlying exception."""
        return getattr(self.error, "context", {})

    def describe(self) -> str:
        """One line: diagram, stage, error type and message."""
        return (
            f"{self.diagram}: {self.stage} failed with "
            f"{type(self.error).__name__}: {self.error}"
        )


@dataclass
class PipelineReport:
    """The failure ledger of one ``process_xmi(strict=False)`` run.

    Empty when everything analysed cleanly; otherwise each
    :class:`PipelineFailure` names the diagram and the stage that
    failed, so one poisoned diagram in a multi-diagram document
    degrades that diagram only instead of aborting the request.
    """

    failures: list[PipelineFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no diagram failed."""
        return not self.failures

    def add(self, stage: str, diagram: str, error: Exception) -> PipelineFailure:
        """Record a failure (diagnostics harvested off the exception)."""
        failure = PipelineFailure(
            stage=stage, diagram=diagram, error=error,
            diagnostics=getattr(error, "diagnostics", None),
        )
        self.failures.append(failure)
        return failure

    def summary(self) -> str:
        """Multi-line human-readable failure summary."""
        if self.ok:
            return "all diagrams analysed"
        return "\n".join(f.describe() for f in self.failures)


@dataclass
class PipelineResult:
    """Everything ``process_xmi`` produced.

    Iterating yields the legacy ``(document, activity_outcomes,
    statechart_outcomes)`` triple, so existing ``a, b, c = ...``
    call sites keep working; :attr:`report` additionally records any
    per-diagram failures captured in non-strict mode.
    """

    document: str
    activity_outcomes: list[ActivityOutcome]
    statechart_outcomes: list[StatechartOutcome]
    report: PipelineReport = field(default_factory=PipelineReport)

    def __iter__(self):
        yield self.document
        yield self.activity_outcomes
        yield self.statechart_outcomes


class Choreographer:
    """The design platform facade.

    Parameters pick the numerical back end: ``solver`` is any method of
    :data:`repro.ctmc.steady.SOLVERS`; ``max_states`` bounds derivation.

    Resilience knobs: ``solver_policy`` (a
    :class:`~repro.resilience.fallback.FallbackPolicy` or a
    comma-separated method list such as ``"direct,gmres,power"``)
    routes every solve through the fallback chain; ``deadline``
    (seconds) puts a cooperative budget on each derivation — or pass a
    pre-built :class:`~repro.resilience.budget.ExecutionBudget` as
    ``budget`` to share one task-wide budget across every solve (the
    batch engine's per-task budgets arrive this way); ``strict``
    sets the default failure policy of :meth:`process_xmi` — ``True``
    fail-fast, ``False`` capture per-diagram failures into the
    :class:`PipelineReport` and keep going.
    """

    def __init__(self, *, solver: str = "direct", max_states: int = 1_000_000,
                 solver_policy=None, deadline: float | None = None,
                 strict: bool = True, budget=None):
        if isinstance(solver_policy, str):
            from repro.resilience.fallback import FallbackPolicy

            solver_policy = FallbackPolicy.parse(solver_policy)
        self.solver = solver
        self.max_states = max_states
        self.solver_policy = solver_policy
        self.deadline = deadline
        self.strict = strict
        self.budget = budget
        self.pepa_workbench = PepaWorkbench(
            solver=solver, max_states=max_states,
            policy=solver_policy, deadline=deadline, budget=budget,
        )
        self.net_workbench = PepaNetWorkbench(
            solver=solver, max_states=max_states,
            policy=solver_policy, deadline=deadline, budget=budget,
        )

    # ------------------------------------------------------------------
    # Activity diagrams (throughput analysis)
    # ------------------------------------------------------------------
    def analyse_activity_diagram(
        self,
        graph: ActivityGraph,
        rates: RateTable | dict | None = None,
        *,
        loop: bool = True,
        reset_rate: float = 1.0,
    ) -> ActivityOutcome:
        """extract → solve → reflect, returning all artefacts.

        Library errors are re-raised with ``stage`` and ``diagram``
        merged into their :attr:`~repro.exceptions.ReproError.context`.
        """
        tracer = get_tracer()
        with tracer.span("diagram.activity", diagram=graph.name) as dsp:
            stage = "extract"
            try:
                with tracer.span("extract"):
                    extraction = extract_activity_diagram(
                        graph, rates, loop=loop, reset_rate=reset_rate
                    )
                stage = "solve"
                with tracer.span("solve"):
                    analysis = self.net_workbench.solve(extraction.net)
                stage = "reflect"
                with tracer.span("reflect"):
                    results = results_of_net_analysis(extraction, analysis)
                    reflect_activity_results(extraction, results)
            except ReproError as exc:
                dsp.set(failed_stage=stage)
                exc.context["pipeline_stage"] = stage
                raise exc.with_context(stage=stage, diagram=graph.name)
            dsp.set(states=analysis.n_states)
        return ActivityOutcome(
            extraction=extraction, analysis=analysis, results=results, graph=graph
        )

    # ------------------------------------------------------------------
    # State diagrams (steady-state probability analysis)
    # ------------------------------------------------------------------
    def analyse_state_diagrams(
        self,
        machines: list[StateMachine],
        rates: RateTable | dict | None = None,
        *,
        cooperation: str = "shared",
    ) -> StatechartOutcome:
        """Compose, solve and reflect a set of state machines.

        Library errors are re-raised with ``stage`` and ``diagram``
        merged into their :attr:`~repro.exceptions.ReproError.context`.
        """
        names = ",".join(m.name for m in machines)
        tracer = get_tracer()
        with tracer.span("diagram.statecharts", diagram=names) as dsp:
            stage = "extract"
            try:
                with tracer.span("extract"):
                    model, extractions = compose_state_machines(
                        machines, rates, cooperation=cooperation
                    )
                stage = "solve"
                with tracer.span("solve"):
                    analysis = self.pepa_workbench.solve(model)
                stage = "reflect"
                with tracer.span("reflect"):
                    results = results_of_model_analysis(extractions, analysis)
                    for extraction in extractions:
                        reflect_state_probabilities(extraction, results)
            except ReproError as exc:
                dsp.set(failed_stage=stage)
                exc.context["pipeline_stage"] = stage
                raise exc.with_context(stage=stage, diagram=names)
            dsp.set(states=analysis.n_states)
        return StatechartOutcome(
            extractions=extractions, analysis=analysis, results=results, machines=machines
        )

    # ------------------------------------------------------------------
    # The full Figure 4 pipeline over XMI text
    # ------------------------------------------------------------------
    def process_xmi(
        self,
        poseidon_text: str,
        rates: RateTable | dict | None = None,
        *,
        loop: bool = True,
        reset_rate: float = 1.0,
        strict: bool | None = None,
    ) -> PipelineResult:
        """Run the complete tool chain on a Poseidon-flavoured document.

        Returns a :class:`PipelineResult` — iterable as the legacy
        ``(document, activity_outcomes, statechart_outcomes)`` triple —
        whose reflected document has structure updated and the original
        layout merged back.

        ``strict`` (default: the platform's ``strict`` setting)
        controls per-diagram failure handling.  Strict mode fails fast,
        exactly as the original pipeline did.  Non-strict mode captures
        each diagram's failure (stage, diagram name, exception, solver
        diagnostics) into ``result.report`` and still analyses and
        reflects every remaining diagram — one malformed diagram in a
        multi-diagram document degrades that diagram only.  Failures
        while reading the document itself always raise: with no model
        there is nothing to degrade to.
        """
        strict = self.strict if strict is None else strict
        tracer = get_tracer()
        with tracer.span("pipeline.read", chars=len(poseidon_text)) as rsp:
            clean = preprocess(poseidon_text)
            model = read_model(clean)
            rsp.set(activity_diagrams=len(model.activity_graphs),
                    state_machines=len(model.state_machines))
        report = PipelineReport()

        activity_outcomes: list[ActivityOutcome] = []
        for graph in model.activity_graphs:
            try:
                activity_outcomes.append(
                    self.analyse_activity_diagram(
                        graph, rates, loop=loop, reset_rate=reset_rate
                    )
                )
            except Exception as exc:
                if strict:
                    raise
                ctx = getattr(exc, "context", {})
                report.add(ctx.get("pipeline_stage", ctx.get("stage", "extract")),
                           graph.name, exc)

        statechart_outcomes: list[StatechartOutcome] = []
        if model.state_machines:
            try:
                statechart_outcomes.append(
                    self.analyse_state_diagrams(model.state_machines, rates)
                )
            except Exception as exc:
                if strict:
                    raise
                ctx = getattr(exc, "context", {})
                names = ",".join(m.name for m in model.state_machines)
                report.add(ctx.get("pipeline_stage", ctx.get("stage", "extract")),
                           names, exc)

        with tracer.span("pipeline.write"):
            reflected = write_model(model)
            merged = postprocess(reflected, poseidon_text)
        return PipelineResult(
            document=merged,
            activity_outcomes=activity_outcomes,
            statechart_outcomes=statechart_outcomes,
            report=report,
        )

    @staticmethod
    def read(poseidon_text: str) -> UmlModel:
        """Convenience: preprocess + MDR import of a Poseidon document."""
        return read_model(preprocess(poseidon_text))
