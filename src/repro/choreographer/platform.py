"""The Choreographer design platform (paper Section 4, Figure 4).

The integrated pipeline: UML model in (typed, or Poseidon-flavoured
XMI) → preprocess → metadata repository → extract → PEPA Workbench
(numerical solution) → result table → reflect → postprocess → annotated
UML model out.  Every intermediate artefact of Figure 4 is available on
the outcome objects, so tests and benchmarks can assert on each stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.extract.activity2pepanet import ExtractionResult, extract_activity_diagram
from repro.extract.rates import RateTable
from repro.extract.statechart2pepa import StatechartExtraction, compose_state_machines
from repro.pepa.measures import ModelAnalysis
from repro.pepanets.measures import NetAnalysis
from repro.reflect.activity_reflector import reflect_activity_results, results_of_net_analysis
from repro.reflect.results import ResultTable
from repro.reflect.statechart_reflector import (
    reflect_state_probabilities,
    results_of_model_analysis,
)
from repro.choreographer.workbench import PepaNetWorkbench, PepaWorkbench
from repro.choreographer.reporting import activity_report, statechart_report
from repro.uml.activity import ActivityGraph
from repro.uml.model import UmlModel
from repro.uml.statechart import StateMachine
from repro.uml.xmi.poseidon import postprocess, preprocess
from repro.uml.xmi.reader import read_model
from repro.uml.xmi.writer import write_model

__all__ = ["ActivityOutcome", "StatechartOutcome", "Choreographer"]


@dataclass
class ActivityOutcome:
    """Everything produced by one activity-diagram analysis."""

    extraction: ExtractionResult
    analysis: NetAnalysis
    results: ResultTable
    graph: ActivityGraph

    def throughput_of(self, activity_name: str) -> float:
        """Steady-state throughput of a UML activity, by its diagram name."""
        node = self.graph.action_by_name(activity_name)
        return self.analysis.throughput(self.extraction.pepa_action_of(node))

    def report(self) -> str:
        """A plain-text report of the outcome (the Figure 6/7 content)."""
        return activity_report(self)


@dataclass
class StatechartOutcome:
    """Everything produced by one state-diagram analysis."""

    extractions: list[StatechartExtraction]
    analysis: ModelAnalysis
    results: ResultTable
    machines: list[StateMachine] = field(default_factory=list)

    def probability_of(self, machine_name: str, state_name: str) -> float:
        """Steady-state probability of a UML state, by machine and state name."""
        for extraction in self.extractions:
            if extraction.machine.name == machine_name:
                constant = extraction.constant_of_state(state_name)
                return self.analysis.probability_of_local_state(constant)
        raise KeyError(f"no machine named {machine_name!r} in this outcome")

    def report(self) -> str:
        """A plain-text report of the composed state-diagram analysis."""
        return statechart_report(self)


class Choreographer:
    """The design platform facade.

    Parameters pick the numerical back end: ``solver`` is any method of
    :data:`repro.ctmc.steady.SOLVERS`; ``max_states`` bounds derivation.
    """

    def __init__(self, *, solver: str = "direct", max_states: int = 1_000_000):
        self.solver = solver
        self.max_states = max_states
        self.pepa_workbench = PepaWorkbench(solver=solver, max_states=max_states)
        self.net_workbench = PepaNetWorkbench(solver=solver, max_states=max_states)

    # ------------------------------------------------------------------
    # Activity diagrams (throughput analysis)
    # ------------------------------------------------------------------
    def analyse_activity_diagram(
        self,
        graph: ActivityGraph,
        rates: RateTable | dict | None = None,
        *,
        loop: bool = True,
        reset_rate: float = 1.0,
    ) -> ActivityOutcome:
        """extract → solve → reflect, returning all artefacts."""
        extraction = extract_activity_diagram(
            graph, rates, loop=loop, reset_rate=reset_rate
        )
        analysis = self.net_workbench.solve(extraction.net)
        results = results_of_net_analysis(extraction, analysis)
        reflect_activity_results(extraction, results)
        return ActivityOutcome(
            extraction=extraction, analysis=analysis, results=results, graph=graph
        )

    # ------------------------------------------------------------------
    # State diagrams (steady-state probability analysis)
    # ------------------------------------------------------------------
    def analyse_state_diagrams(
        self,
        machines: list[StateMachine],
        rates: RateTable | dict | None = None,
        *,
        cooperation: str = "shared",
    ) -> StatechartOutcome:
        """Compose, solve and reflect a set of state machines."""
        model, extractions = compose_state_machines(machines, rates, cooperation=cooperation)
        analysis = self.pepa_workbench.solve(model)
        results = results_of_model_analysis(extractions, analysis)
        for extraction in extractions:
            reflect_state_probabilities(extraction, results)
        return StatechartOutcome(
            extractions=extractions, analysis=analysis, results=results, machines=machines
        )

    # ------------------------------------------------------------------
    # The full Figure 4 pipeline over XMI text
    # ------------------------------------------------------------------
    def process_xmi(
        self,
        poseidon_text: str,
        rates: RateTable | dict | None = None,
        *,
        loop: bool = True,
        reset_rate: float = 1.0,
    ) -> tuple[str, list[ActivityOutcome], list[StatechartOutcome]]:
        """Run the complete tool chain on a Poseidon-flavoured document.

        Returns the reflected document (structure updated, original
        layout merged back) plus the analysis outcomes.
        """
        clean = preprocess(poseidon_text)
        model = read_model(clean)
        activity_outcomes = [
            self.analyse_activity_diagram(g, rates, loop=loop, reset_rate=reset_rate)
            for g in model.activity_graphs
        ]
        statechart_outcomes = []
        if model.state_machines:
            statechart_outcomes.append(
                self.analyse_state_diagrams(model.state_machines, rates)
            )
        reflected = write_model(model)
        merged = postprocess(reflected, poseidon_text)
        return merged, activity_outcomes, statechart_outcomes

    @staticmethod
    def read(poseidon_text: str) -> UmlModel:
        """Convenience: preprocess + MDR import of a Poseidon document."""
        return read_model(preprocess(poseidon_text))
