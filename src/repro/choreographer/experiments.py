"""One-command reproduction of every experiment in EXPERIMENTS.md.

``run_all_experiments()`` regenerates the measured numbers the
documentation reports, row by row, returning structured records that
the CLI renders (``choreographer experiments`` — not in the original
tool, but exactly what a reproduction package should ship).

Each experiment returns (id, description, {metric: value}, checks),
where ``checks`` are the shape assertions of the corresponding
benchmark, evaluated here as booleans so a reader can see at a glance
that the reproduction criteria hold on their machine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.choreographer.platform import Choreographer
from repro.ctmc.passage import mean_time_per_visit
from repro.pepa.measures import analyse
from repro.pepa.statespace import derive
from repro.pepanets import analyse_net, explore_net, parse_net
from repro.workloads import (
    FILE_RATES,
    IM_PEPANET_SOURCE,
    IM_RATES,
    MEETING_RATES,
    PDA_RATES,
    TOMCAT_RATES,
    build_client_statechart,
    build_file_activity_diagram,
    build_instant_message_diagram,
    build_meeting_diagram,
    build_pda_activity_diagram,
    build_server_statechart,
    build_web_model,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentRecord",
    "render_report",
    "run_all_experiments",
    "run_experiment",
]


@dataclass
class ExperimentRecord:
    experiment: str
    description: str
    metrics: dict[str, float] = field(default_factory=dict)
    checks: dict[str, bool] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(self.checks.values())


def _e1(platform: Choreographer) -> ExperimentRecord:
    outcome = platform.analyse_activity_diagram(build_file_activity_diagram(), FILE_RATES)
    opens = outcome.throughput_of("openread") + outcome.throughput_of("openwrite")
    closes = outcome.results.value("activity", "close", "throughput")
    return ExperimentRecord(
        "E1", "Fig 1: file operations (no mobility)",
        metrics={
            "states": outcome.analysis.n_states,
            "throughput_read": outcome.throughput_of("read"),
            "throughput_close": closes,
        },
        checks={
            "one_place": list(outcome.extraction.net.places) == ["local"],
            "opens_equal_closes": math.isclose(opens, closes, rel_tol=1e-9),
        },
    )


def _e2(platform: Choreographer) -> ExperimentRecord:
    outcome = platform.analyse_activity_diagram(build_instant_message_diagram(), IM_RATES)
    published = explore_net(parse_net(IM_PEPANET_SOURCE))
    transmit = outcome.throughput_of("transmit")
    return ExperimentRecord(
        "E2", "Fig 2: instant message with <<move>> transmit",
        metrics={
            "markings": outcome.analysis.n_states,
            "published_net_markings": published.size,
            "transmit_throughput": transmit,
        },
        checks={
            "two_places": set(outcome.extraction.net.places) == {"p1", "p2"},
            "published_is_4_markings": published.size == 4,
            "one_cycle_per_activity": math.isclose(
                outcome.throughput_of("read"), transmit, rel_tol=1e-9
            ),
        },
    )


def _e5(platform: Choreographer) -> ExperimentRecord:
    outcome = platform.analyse_activity_diagram(build_pda_activity_diagram(), PDA_RATES)
    abort = outcome.throughput_of("abort download")
    cont = outcome.throughput_of("continue download")
    return ExperimentRecord(
        "E5/E6", "Figs 5-7: PDA handover, throughput reflected",
        metrics={
            "markings": outcome.analysis.n_states,
            "handover_throughput": outcome.throughput_of("handover"),
            "abort": abort,
            "continue": cont,
        },
        checks={
            "equiprobable_outcomes": math.isclose(abort, cont, rel_tol=1e-9),
            "annotated": all(
                a.tag("throughput") is not None for a in outcome.graph.actions()
            ),
        },
    )


def _e7_e8(platform: Choreographer) -> ExperimentRecord:
    outcome = platform.analyse_state_diagrams(
        [build_client_statechart(), build_server_statechart(cached=False)]
    )
    p_wait = outcome.probability_of("Client", "WaitForResponse")
    p_translate = outcome.probability_of("Server", "AccessJSPFile")
    p_compile = outcome.probability_of("Server", "GeneratedJavaCode")
    return ExperimentRecord(
        "E7/E8", "Figs 8/9: client & Tomcat server probabilities",
        metrics={
            "P(WaitForResponse)": p_wait,
            "P(AccessJSPFile)": p_translate,
            "P(GeneratedJavaCode)": p_compile,
        },
        checks={
            "waiting_dominates": p_wait > 0.5,
            "translate_then_compile": p_translate > p_compile,
            "stage_ratio": math.isclose(
                p_translate / p_compile,
                TOMCAT_RATES["compile"] / TOMCAT_RATES["translate"],
                rel_tol=1e-6,
            ),
        },
    )


def _e9(platform: Choreographer) -> ExperimentRecord:
    def waiting_delay(cached: bool) -> tuple[float, float]:
        model, _ = build_web_model(cached=cached)
        analysis = analyse(model)
        wait = [i for i, l in enumerate(analysis.chain.labels) if "WaitForResponse" in l]
        return (
            mean_time_per_visit(analysis.chain, wait, analysis.pi),
            analysis.throughput("request"),
        )

    base_delay, base_tp = waiting_delay(False)
    opt_delay, opt_tp = waiting_delay(True)
    analytic = sum(
        1.0 / TOMCAT_RATES[a]
        for a in ("locatejsp", "translate", "compile", "execute", "response")
    )
    return ExperimentRecord(
        "E9", "Servlet-cache optimisation: waiting-delay reduction",
        metrics={
            "baseline_delay_s": base_delay,
            "optimised_delay_s": opt_delay,
            "reduction_factor": base_delay / opt_delay,
            "baseline_rps": base_tp,
            "optimised_rps": opt_tp,
        },
        checks={
            "optimisation_wins": opt_delay < base_delay,
            "order_of_magnitude": base_delay / opt_delay > 10,
            "analytic_crosscheck": math.isclose(base_delay, analytic, rel_tol=1e-9),
        },
    )


def _a4(platform: Choreographer) -> ExperimentRecord:
    extraction_result = None
    from repro.extract import extract_activity_diagram

    extraction_result = extract_activity_diagram(build_meeting_diagram(), MEETING_RATES)
    analysis = analyse_net(extraction_result.net)
    total = sum(analysis.location_distribution().values())
    return ExperimentRecord(
        "A4", "Extension: multi-token rendezvous with joint move",
        metrics={
            "markings": analysis.n_states,
            "tokens_conserved": total,
        },
        checks={
            "two_tokens": math.isclose(total, 2.0, rel_tol=1e-9),
            "joint_move": any(
                t.inputs == ("hub", "hub") for t in extraction_result.net.transitions.values()
            ),
        },
    )


#: Experiment id → builder; the canonical enumeration of EXPERIMENTS.md
#: rows, exposed so the batch engine can run each row as its own task.
EXPERIMENTS: dict[str, object] = {
    "E1": _e1,
    "E2": _e2,
    "E5": _e5,
    "E7": _e7_e8,
    "E9": _e9,
    "A4": _a4,
}


def run_experiment(
    experiment_id: str, platform: Choreographer | None = None
) -> ExperimentRecord:
    """Regenerate one EXPERIMENTS.md row by id (see :data:`EXPERIMENTS`)."""
    try:
        builder = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; choose from "
            f"{sorted(EXPERIMENTS)}"
        ) from None
    return builder(platform or Choreographer())


def run_all_experiments() -> list[ExperimentRecord]:
    """Regenerate every EXPERIMENTS.md row; returns one record per experiment."""
    platform = Choreographer()
    return [builder(platform) for builder in EXPERIMENTS.values()]


def render_report(records: list[ExperimentRecord]) -> str:
    """Render experiment records as an aligned plain-text report."""
    lines = []
    for record in records:
        status = "ok" if record.ok else "FAILED"
        lines.append(f"[{status}] {record.experiment} — {record.description}")
        for name, value in record.metrics.items():
            lines.append(f"    {name} = {value:.6g}")
        for name, passed in record.checks.items():
            mark = "✓" if passed else "✗"
            lines.append(f"    {mark} {name}")
    return "\n".join(lines)
