"""The Choreographer design platform (paper Section 4, substrate S9)."""

from repro.choreographer.platform import (
    ActivityOutcome,
    Choreographer,
    PipelineFailure,
    PipelineReport,
    PipelineResult,
    StatechartOutcome,
)
from repro.choreographer.reporting import activity_report, statechart_report
from repro.choreographer.workbench import PepaNetWorkbench, PepaWorkbench

__all__ = [
    "Choreographer",
    "ActivityOutcome",
    "StatechartOutcome",
    "PipelineFailure",
    "PipelineReport",
    "PipelineResult",
    "PepaWorkbench",
    "PepaNetWorkbench",
    "activity_report",
    "statechart_report",
]
