"""Command-line interface to the Choreographer platform.

Sub-commands mirror the tool-chain stages::

    choreographer analyse model.xmi --rates tomcat.rates -o reflected.xmi
    choreographer pepa model.pepa --solver gmres
    choreographer fluid model.pepa --replicas 100000
    choreographer net model.pepanet --export-prism out/model
    choreographer validate model.xmi
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.choreographer.platform import Choreographer
from repro.choreographer.workbench import PepaNetWorkbench, PepaWorkbench
from repro.core.ctmcgen import GENERATOR_MODES
from repro.ctmc.export import write_prism_files
from repro.ctmc.steady import SOLVERS
from repro.exceptions import ReproError
from repro.extract.rates import RateTable, load_rates
from repro.uml.validate import validate_for_extraction
from repro.utils.formatting import format_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="choreographer",
        description="UML mobility models compiled to PEPA nets and solved as CTMCs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_warehouse_flags(cmd: argparse.ArgumentParser) -> None:
        """Run-ledger + profiler flags shared by every run-producing command."""
        cmd.add_argument(
            "--ledger", type=Path, metavar="DIR",
            help="record this invocation as a repro-run/1 document in the "
                 "repro-runs/1 ledger at DIR (query with 'choreographer runs')")
        cmd.add_argument(
            "--profile", action="store_true",
            help="sample the run with the wall-clock profiler (statistical, "
                 "low overhead; off by default)")
        cmd.add_argument(
            "--profile-interval", type=float, metavar="SECONDS",
            help="profiler sampling period (default: 0.005)")
        cmd.add_argument(
            "--profile-memory", action="store_true",
            help="also stamp spans with tracemalloc allocation/peak deltas "
                 "(exact but measurably slower; implies --profile)")
        cmd.add_argument(
            "--profile-out", type=Path, metavar="FILE",
            help="write collapsed-stack samples here "
                 "(flamegraph.pl / speedscope format)")

    def add_resilience_flags(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--solver-policy", metavar="METHODS",
            help="comma-separated fallback chain (e.g. direct,gmres,power); "
                 "overrides --solver and retries/falls back on failure")
        cmd.add_argument(
            "--deadline", type=float, metavar="SECONDS",
            help="cooperative wall-clock budget for derivation and solving")
        cmd.add_argument(
            "-v", "--verbose", action="store_true",
            help="print the solver attempt table (SolveDiagnostics)")
        cmd.add_argument(
            "--trace", type=Path, metavar="FILE",
            help="record a span trace of the run and write it as JSON")
        cmd.add_argument(
            "--metrics", action="store_true",
            help="collect pipeline metrics (states, iterations, residuals) "
                 "and print them after the run")
        cmd.add_argument(
            "--events", type=Path, metavar="FILE",
            help="record solver convergence / exploration progress events "
                 "and write them as JSON Lines")
        add_warehouse_flags(cmd)

    analyse = sub.add_parser("analyse", help="run the full Figure 4 pipeline on an XMI file")
    analyse.add_argument("model", type=Path, help="Poseidon-flavoured XMI file")
    analyse.add_argument("--rates", type=Path, help=".rates file")
    analyse.add_argument("-o", "--output", type=Path, help="write the reflected XMI here")
    analyse.add_argument("--solver", choices=sorted(SOLVERS), default="direct")
    analyse.add_argument("--reset-rate", type=float, default=1.0,
                         help="rate of synthetic token-return firings")
    analyse.add_argument(
        "--no-strict", dest="strict", action="store_false",
        help="capture per-diagram failures into a pipeline report and keep "
             "analysing the remaining diagrams instead of failing fast")
    add_resilience_flags(analyse)

    pepa = sub.add_parser("pepa", help="solve a textual PEPA model")
    pepa.add_argument("model", type=Path)
    pepa.add_argument("--solver", choices=sorted(SOLVERS), default="direct")
    pepa.add_argument(
        "--generator", choices=list(GENERATOR_MODES), default="csr",
        help="generator representation: materialised CSR matrix, "
             "matrix-free Kronecker descriptor, or auto "
             "(descriptor when the system equation supports it)")
    pepa.add_argument("--export-prism", type=Path, metavar="STEM",
                      help="also write PRISM .tra/.sta/.lab files")
    pepa.add_argument(
        "--fluid", action="store_true",
        help="solve the mean-field fluid limit (ODE over local-state "
             "occupancies) instead of the exact CTMC; the model must "
             "have the replicated population shape")
    pepa.add_argument(
        "--replicas", type=int, metavar="N",
        help="with --fluid, override the replica count of the system "
             "equation (solve time does not depend on N)")
    add_resilience_flags(pepa)

    fluid = sub.add_parser(
        "fluid",
        help="mean-field analysis: NVF compile + fluid ODE solve, or the "
             "fluid-vs-exact-vs-simulation cross-validation battery",
    )
    fluid.add_argument(
        "model", nargs="?", type=Path,
        help=".pepa file with a replicated system equation "
             "(omit with --crossval)")
    fluid.add_argument(
        "--replicas", type=int, metavar="N",
        help="override the replica count of the system equation")
    fluid.add_argument(
        "--methods", metavar="CHAIN",
        help="comma-separated steady-state fallback chain "
             "(default: newton,ode,damped)")
    fluid.add_argument(
        "--crossval", action="store_true",
        help="validate the fluid solver against the exact population "
             "CTMC (small N), scaled-measure convergence (growing N) "
             "and stochastic-simulation confidence intervals (large N) "
             "over built-in workload families")
    fluid.add_argument(
        "--families", metavar="NAMES",
        help="comma-separated family subset for --crossval: "
             "roaming_sessions, file_sink, message_bus, client_server "
             "(default: all)")
    fluid.add_argument(
        "--ssa-replicas", type=int, default=1000, metavar="N",
        help="population size of the simulation containment check "
             "(default: 1000)")
    fluid.add_argument(
        "--no-ssa", action="store_true",
        help="skip the stochastic-simulation containment check (faster)")
    fluid.add_argument(
        "--seed", type=int, default=2026, metavar="SEED",
        help="base seed of the simulation replications (default: 2026)")
    fluid.add_argument(
        "--report", type=Path, metavar="FILE",
        help="write the markdown comparison report here")
    fluid.add_argument(
        "-v", "--verbose", action="store_true",
        help="print the per-check table (and solver attempt table)")
    add_warehouse_flags(fluid)

    net = sub.add_parser("net", help="solve a textual PEPA net")
    net.add_argument("model", type=Path)
    net.add_argument("--solver", choices=sorted(SOLVERS), default="direct")
    net.add_argument("--export-prism", type=Path, metavar="STEM")
    add_resilience_flags(net)

    validate = sub.add_parser("validate", help="check an XMI file against the extractor's restrictions")
    validate.add_argument("model", type=Path)

    simulate = sub.add_parser(
        "simulate", help="stochastic simulation of a PEPA model or PEPA net"
    )
    simulate.add_argument("model", type=Path, help=".pepa or .pepanet file")
    simulate.add_argument("--t-end", type=float, default=1000.0)
    simulate.add_argument("--replications", type=int, default=8)
    simulate.add_argument("--warmup", type=float, default=0.0)
    simulate.add_argument("--seed", type=int, default=0)

    sensitivity = sub.add_parser(
        "sensitivity", help="rate-sensitivity profile of a PEPA model measure"
    )
    sensitivity.add_argument("model", type=Path, help=".pepa file")
    sensitivity.add_argument("--measure", required=True,
                             help="action whose throughput to differentiate")

    sub.add_parser(
        "experiments",
        help="re-run every experiment of EXPERIMENTS.md and report paper-vs-measured",
    )

    dot = sub.add_parser(
        "dot", help="render a model as Graphviz dot (structure and/or state space)"
    )
    dot.add_argument("model", type=Path, help=".pepa or .pepanet file")
    dot.add_argument("--what", choices=["structure", "states", "both"], default="both")
    dot.add_argument("-o", "--output", type=Path, metavar="STEM",
                     help="write <STEM>.structure.dot / <STEM>.states.dot instead of stdout")

    batch = sub.add_parser(
        "batch",
        help="run many models / experiments across worker processes with a "
             "content-addressed derivation cache",
    )
    batch.add_argument(
        "inputs", nargs="*", type=Path, metavar="MODEL",
        help=".xmi, .pepa or .pepanet files; each becomes one task")
    batch.add_argument(
        "--experiments", action="store_true",
        help="also run every EXPERIMENTS.md row, one task per experiment")
    batch.add_argument(
        "--corpus", type=int, metavar="N",
        help="also derive N generated corpus scenarios (repro.scenarios), "
             "one net task per seed")
    batch.add_argument(
        "--corpus-base", type=int, default=0, metavar="SEED",
        help="first corpus seed (default: 0)")
    batch.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker processes (1 = run inline, still through the task path)")
    batch.add_argument(
        "--cache-dir", type=Path, default=Path(".choreographer-cache"),
        metavar="DIR",
        help="content-addressed derivation cache directory "
             "(default: .choreographer-cache)")
    batch.add_argument(
        "--no-cache", action="store_true",
        help="bypass the derivation cache entirely")
    batch.add_argument(
        "--cache-max-bytes", type=int, metavar="BYTES",
        help="evict least-recently-used cache entries beyond this total size")
    batch.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="extra attempts per failed/crashed/hung task before it is "
             "quarantined (default: 2)")
    batch.add_argument(
        "--task-timeout", type=float, metavar="SECONDS",
        help="per-attempt wall-clock timeout; a hung task's pool is rebuilt "
             "and the task retried (needs --jobs >= 2)")
    batch.add_argument(
        "--journal", type=Path, metavar="FILE",
        help="append every completed task to this repro-journal/1 checkpoint "
             "file as the run proceeds")
    batch.add_argument(
        "--resume", type=Path, metavar="JOURNAL",
        help="resume a journalled run: replay recorded results, run only "
             "what's missing (task list comes from the journal)")
    batch.add_argument(
        "--chaos", action="append", default=[], metavar="SPEC",
        help="inject a deterministic batch fault, e.g. 'kill:taskid@1', "
             "'hang:taskid@1:30', 'cache-enospc:*'; repeatable (drills only)")
    batch.add_argument("--rates", type=Path, help=".rates file for XMI tasks")
    batch.add_argument("--solver", choices=sorted(SOLVERS), default="direct")
    batch.add_argument(
        "--fluid", action="store_true",
        help="solve PEPA tasks on the mean-field fluid route instead of "
             "the exact CTMC (nets and XMI pipelines are unaffected)")
    batch.add_argument(
        "--replicas", type=int, metavar="N",
        help="with --fluid, replica-count override applied to every "
             "PEPA task")
    batch.add_argument(
        "--generator", choices=list(GENERATOR_MODES), default="csr",
        help="generator representation for PEPA tasks (csr, descriptor "
             "or auto); nets and XMI pipelines always materialise")
    batch.add_argument(
        "--deadline", type=float, metavar="SECONDS",
        help="per-task wall-clock budget (the clock starts when the task does)")
    batch.add_argument(
        "--measures", type=Path, metavar="FILE",
        help="write the canonical, schedule-independent measures JSON here "
             "(byte-identical across --jobs settings)")
    batch.add_argument(
        "--trace", type=Path, metavar="FILE",
        help="write the merged repro-trace/1 span forest (all tasks, task order)")
    batch.add_argument(
        "--events", type=Path, metavar="FILE",
        help="write the merged, task-tagged event stream as JSON Lines")
    add_warehouse_flags(batch)

    analyze = sub.add_parser(
        "analyze-trace",
        help="critical path and per-span profile of a --trace JSON file",
    )
    # dest avoids colliding with the shared --trace recording flag
    analyze.add_argument("trace_file", type=Path, metavar="TRACE",
                         help="repro-trace/1 JSON file")

    diff = sub.add_parser(
        "diff-trace",
        help="per-span-name time deltas between two --trace JSON files",
    )
    diff.add_argument("base", type=Path, help="baseline repro-trace/1 JSON file")
    diff.add_argument("new", type=Path, help="current repro-trace/1 JSON file")

    fuzz = sub.add_parser(
        "fuzz",
        help="differentially fuzz the extract pipeline against direct "
             "PEPA-net construction over generated scenarios",
    )
    fuzz.add_argument(
        "--seeds", type=int, default=100, metavar="N",
        help="number of seeds to sweep (default: 100)")
    fuzz.add_argument(
        "--start", type=int, default=0, metavar="SEED",
        help="first seed (default: 0)")
    fuzz.add_argument(
        "--out", type=Path, metavar="DIR",
        help="dump minimised reproducer directories for divergent seeds here")
    fuzz.add_argument(
        "--deadline", type=float, metavar="SECONDS",
        help="cooperative wall-clock budget for the whole sweep; exceeding "
             "it stops gracefully (seeds not reached are not failures)")
    fuzz.add_argument(
        "--tolerance", type=float, default=None, metavar="REL",
        help="relative measure tolerance (default: 1e-8)")
    fuzz.add_argument(
        "--max-states", type=int, default=None, metavar="N",
        help="marking-space size cap per scenario")
    fuzz.add_argument(
        "--no-minimise", action="store_true",
        help="skip shrinking divergent specs (faster triage)")
    fuzz.add_argument("--solver", choices=sorted(SOLVERS), default="direct")
    add_warehouse_flags(fuzz)

    runs = sub.add_parser(
        "runs", help="query the persistent run ledger (repro-runs/1 store)"
    )
    runs.add_argument(
        "--ledger", type=Path, default=Path("repro-runs"), metavar="DIR",
        help="ledger directory (default: repro-runs)")
    # A nested sub-parse re-copies its namespace over the parent's, which
    # resets ``command`` to the default None; pin it instead.
    runs.set_defaults(command="runs")
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)

    runs_list = runs_sub.add_parser("list", help="one line per recorded run")
    # dest: --command would land on args.command and clobber the
    # top-level dispatch key
    runs_list.add_argument("--command", dest="filter_command", metavar="NAME",
                           help="only runs of this command (bench, batch, ...)")
    runs_list.add_argument("--last", type=int, metavar="N",
                           help="only the newest N matching runs")

    runs_show = runs_sub.add_parser("show", help="dump one run document as JSON")
    runs_show.add_argument("run_id", nargs="?", default=None,
                           help="run id (default: the newest run)")

    runs_compare = runs_sub.add_parser(
        "compare",
        help="bench regression gate between two recorded runs "
             "(exit 1 on regression)")
    runs_compare.add_argument("base", help="baseline run id")
    runs_compare.add_argument("new", help="current run id")
    runs_compare.add_argument("--threshold", type=float, default=None,
                              metavar="FACTOR")
    runs_compare.add_argument("--min-seconds", type=float, default=None,
                              metavar="SECONDS")
    runs_compare.add_argument("--report", type=Path, metavar="FILE",
                              help="also write the markdown report here")

    runs_trend = runs_sub.add_parser(
        "trend",
        help="judge the newest bench run against the ledger's history "
             "(exit 1 on regression)")
    runs_trend.add_argument("--command", dest="filter_command", metavar="NAME",
                            help="only trend runs of this command")
    runs_trend.add_argument("--window", type=int, metavar="N",
                            help="use only the newest N bench runs")
    runs_trend.add_argument("--threshold", type=float, default=None,
                            metavar="FACTOR",
                            help="relative slow-down gate (default: 1.5)")
    runs_trend.add_argument("--min-seconds", type=float, default=None,
                            metavar="SECONDS",
                            help="absolute slow-down floor (default: 0.05)")
    runs_trend.add_argument("--report", type=Path, metavar="FILE",
                            help="also write the markdown report here")

    runs_export = runs_sub.add_parser(
        "export", help="re-export a recorded run in standard formats")
    runs_export.add_argument("run_id", nargs="?", default=None,
                             help="run id (default: the newest run)")
    runs_export.add_argument("--chrome", type=Path, metavar="FILE",
                             help="Chrome Trace Event JSON (Perfetto-loadable; "
                                  "needs a run recorded with an embedded trace)")
    runs_export.add_argument("--prometheus", type=Path, metavar="FILE",
                             help="Prometheus text exposition of the run's metrics")
    runs_export.add_argument("--collapsed", type=Path, metavar="FILE",
                             help="collapsed-stack profiler samples")

    runs_prune = runs_sub.add_parser("prune", help="delete all but the newest runs")
    runs_prune.add_argument("--keep", type=int, required=True, metavar="N")
    return parser


def _load_rate_table(path: Path | None) -> RateTable | None:
    return load_rates(path) if path else None


def _profile_config(args: argparse.Namespace):
    """The ProfileConfig an invocation asked for, or ``None``."""
    from repro.obs import ProfileConfig
    from repro.obs.profile import DEFAULT_INTERVAL

    if not (getattr(args, "profile", False)
            or getattr(args, "profile_memory", False)
            or getattr(args, "profile_interval", None) is not None
            or getattr(args, "profile_out", None) is not None):
        return None
    return ProfileConfig(
        interval=getattr(args, "profile_interval", None) or DEFAULT_INTERVAL,
        memory=getattr(args, "profile_memory", False),
    )


def _ledger_config(args: argparse.Namespace) -> dict:
    """The identity-bearing slice of an invocation, for fingerprinting."""
    config = {"command": args.command}
    for key in ("solver", "model", "seeds", "start", "jobs", "experiments",
                "corpus", "reset_rate", "fluid", "replicas", "crossval",
                "families", "ssa_replicas"):
        value = getattr(args, key, None)
        if value not in (None, False):
            config[key] = str(value) if isinstance(value, Path) else value
    return config


def _print_diagnostics(analysis, verbose: bool) -> None:
    """On --verbose, print the fallback solver's attempt table."""
    diagnostics = getattr(analysis, "diagnostics", None)
    if verbose and diagnostics is not None:
        print(diagnostics.summary())
        print(diagnostics.as_table())
        print()


def _cmd_analyse(args: argparse.Namespace) -> int:
    platform = Choreographer(
        solver=args.solver, solver_policy=args.solver_policy,
        deadline=args.deadline, strict=args.strict,
    )
    text = args.model.read_text()
    result = platform.process_xmi(
        text, _load_rate_table(args.rates), reset_rate=args.reset_rate
    )
    for outcome in result.activity_outcomes:
        print(outcome.report())
        _print_diagnostics(outcome.analysis, args.verbose)
        print()
    for outcome in result.statechart_outcomes:
        print(outcome.report())
        _print_diagnostics(outcome.analysis, args.verbose)
        print()
    if not result.report.ok:
        print("degraded: some diagrams failed", file=sys.stderr)
        print(result.report.summary(), file=sys.stderr)
    if args.output:
        args.output.write_text(result.document)
        print(f"reflected model written to {args.output}")
    return 0 if result.report.ok else 3


def _print_fluid_analysis(analysis, verbose: bool) -> None:
    """The fluid result surface: coordinates, throughputs, occupancies."""
    print(f"{analysis.dimension} fluid coordinates "
          f"({analysis.n_replica_states} replica-local), "
          f"N={analysis.replicas}, method={analysis.solver}")
    _print_diagnostics(analysis, verbose)
    rows = [[a, v] for a, v in analysis.all_throughputs().items()]
    print(format_table(["activity", "throughput"], rows))
    rows = [[name, v] for name, v in analysis.occupancies().items()]
    print(format_table(["local state", "mean occupancy"], rows))


def _cmd_pepa(args: argparse.Namespace) -> int:
    if args.replicas is not None and not args.fluid:
        print("error: --replicas only scales the fluid route; pass --fluid",
              file=sys.stderr)
        return 2
    if args.fluid and args.export_prism:
        print("error: the fluid route has no finite chain to export; "
              "drop --export-prism or --fluid", file=sys.stderr)
        return 2
    workbench = PepaWorkbench(
        solver=args.solver, policy=args.solver_policy, deadline=args.deadline,
        generator=getattr(args, "generator", "csr"),
        fluid=args.fluid, replicas=args.replicas,
    )
    analysis = workbench.solve_source(args.model.read_text())
    if args.fluid:
        _print_fluid_analysis(analysis, args.verbose)
        return 0
    print(f"{analysis.n_states} states, solver={analysis.solver}")
    _print_diagnostics(analysis, args.verbose)
    rows = [[a, v] for a, v in analysis.all_throughputs().items()]
    print(format_table(["activity", "throughput"], rows))
    if args.export_prism:
        paths = write_prism_files(analysis.chain, args.export_prism)
        print("PRISM files:", ", ".join(str(p) for p in paths))
    return 0


def _cmd_fluid(args: argparse.Namespace) -> int:
    from repro.fluid import FAMILIES, run_crossval
    from repro.fluid.ode import FLUID_METHODS, analyse_fluid
    from repro.pepa.parser import parse_model

    methods = (tuple(m.strip() for m in args.methods.split(",") if m.strip())
               if args.methods else FLUID_METHODS)
    if args.crossval:
        families = None
        if args.families:
            families = [f.strip() for f in args.families.split(",") if f.strip()]
            unknown = sorted(set(families) - set(FAMILIES))
            if unknown:
                print(f"error: unknown families {', '.join(unknown)}; "
                      f"choose from {', '.join(FAMILIES)}", file=sys.stderr)
                return 2
        report = run_crossval(
            families,
            ssa_replicas=args.ssa_replicas,
            include_ssa=not args.no_ssa,
            base_seed=args.seed,
        )
        if args.verbose:
            print(report.as_table())
            print()
        print(report.summary())
        if args.report:
            args.report.write_text(report.markdown())
            print(f"comparison report written to {args.report}",
                  file=sys.stderr)
        return 0 if report.ok else 1
    if args.model is None:
        print("error: pass a .pepa model file or --crossval", file=sys.stderr)
        return 2
    model = parse_model(args.model.read_text())
    analysis = analyse_fluid(model, replicas=args.replicas, methods=methods)
    _print_fluid_analysis(analysis, args.verbose)
    return 0


def _cmd_net(args: argparse.Namespace) -> int:
    workbench = PepaNetWorkbench(
        solver=args.solver, policy=args.solver_policy, deadline=args.deadline
    )
    analysis = workbench.solve_source(args.model.read_text())
    print(f"{analysis.n_states} markings, solver={analysis.solver}")
    _print_diagnostics(analysis, args.verbose)
    rows = [[a, v] for a, v in analysis.all_throughputs().items()]
    print(format_table(["activity", "throughput"], rows))
    rows = [[p, v] for p, v in analysis.location_distribution().items()]
    print(format_table(["place", "mean tokens"], rows))
    if args.export_prism:
        paths = write_prism_files(analysis.chain, args.export_prism)
        print("PRISM files:", ", ".join(str(p) for p in paths))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    model = Choreographer.read(args.model.read_text())
    exit_code = 0
    for graph in model.activity_graphs:
        problems = validate_for_extraction(graph)
        if problems:
            exit_code = 1
            for problem in problems:
                print(f"{graph.name}: {problem}")
        else:
            print(f"{graph.name}: ok")
    if not model.activity_graphs:
        print("no activity graphs in the model")
    return exit_code


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.pepa.parser import parse_model
    from repro.pepanets.parser import parse_net
    from repro.sim import estimate_throughput, net_transition_fn, pepa_transition_fn, replicate

    text = args.model.read_text()
    if args.model.suffix == ".pepanet" or "->" in text:
        net = parse_net(text)
        fn, initial = net_transition_fn(net), net.initial_marking()
        actions = sorted({t.action for t in net.transitions.values()})
    else:
        model = parse_model(text)
        fn, initial = pepa_transition_fn(model), model.system
        actions = sorted(model.alphabet)
    results = replicate(
        fn, initial, args.t_end,
        n_replications=args.replications, warmup=args.warmup, base_seed=args.seed,
    )
    observed = sorted({a for r in results for a in r.action_counts})
    rows = []
    for action in observed or actions:
        est = estimate_throughput(results, action)
        rows.append([action, est.mean, est.half_width])
    print(f"{args.replications} replications over t = {args.t_end} (warmup {args.warmup})")
    print(format_table(["activity", "throughput", "±95%"], rows))
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.pepa import parse_model, sensitivity_profile
    from repro.pepa.ctmcgen import ctmc_of_model

    model = parse_model(args.model.read_text())
    space, chain = ctmc_of_model(model)
    profile = sensitivity_profile(space, chain, args.measure)
    print(f"d throughput({args.measure}) / d (scale of each action's rates):")
    print(format_table(["perturbed action", "sensitivity"],
                       [[a, v] for a, v in profile.items()]))
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    """Render the model as Graphviz dot; PEPA nets get both a structure
    and a marking-space view, plain PEPA a derivation graph."""
    from repro.pepa.export import derivation_graph_dot
    from repro.pepa.parser import parse_model
    from repro.pepa.statespace import derive
    from repro.pepanets.export import marking_space_dot, net_structure_dot
    from repro.pepanets.parser import parse_net
    from repro.pepanets.semantics import explore_net

    text = args.model.read_text()
    renderings: dict[str, str] = {}
    if args.model.suffix == ".pepanet" or "->" in text:
        net = parse_net(text)
        if args.what in ("structure", "both"):
            renderings["structure"] = net_structure_dot(net)
        if args.what in ("states", "both"):
            renderings["states"] = marking_space_dot(explore_net(net))
    else:
        model = parse_model(text)
        if args.what in ("states", "both"):
            renderings["states"] = derivation_graph_dot(derive(model))
        if args.what == "structure":
            print("plain PEPA has no net-level structure; use --what states",
                  file=sys.stderr)
            return 2
    if args.output:
        for kind, dot_text in renderings.items():
            path = args.output.with_suffix(f".{kind}.dot")
            path.write_text(dot_text)
            print(f"wrote {path}")
    else:
        for kind, dot_text in renderings.items():
            print(f"// {kind}")
            print(dot_text)
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.choreographer.experiments import render_report, run_all_experiments

    records = run_all_experiments()
    print(render_report(records))
    return 0 if all(r.ok for r in records) else 1


def _batch_tasks(args: argparse.Namespace) -> list:
    """Build the task list: one task per input file (+ experiments)."""
    from repro.batch import BatchTask
    from repro.choreographer.experiments import EXPERIMENTS

    tasks = []
    seen: set[str] = set()
    for path in args.inputs:
        text = path.read_text()
        if path.suffix == ".xmi":
            kind, payload = "xmi", {"text": text, "solver": args.solver}
            if args.rates:
                payload["rates_text"] = args.rates.read_text()
        elif path.suffix == ".pepanet" or "->" in text:
            kind, payload = "net", {"source": text, "solver": args.solver}
        else:
            kind, payload = "pepa", {"source": text, "solver": args.solver}
            generator = getattr(args, "generator", "csr")
            if generator != "csr":
                payload["generator"] = generator
            if getattr(args, "fluid", False):
                payload["fluid"] = True
                if getattr(args, "replicas", None) is not None:
                    payload["replicas"] = args.replicas
        task_id = path.stem
        while task_id in seen:
            task_id += "+"
        seen.add(task_id)
        tasks.append(BatchTask(id=task_id, kind=kind, payload=payload))
    if args.experiments:
        for experiment_id in EXPERIMENTS:
            tasks.append(BatchTask(
                id=f"experiment-{experiment_id}", kind="experiment",
                payload={"experiment": experiment_id},
            ))
    if getattr(args, "corpus", None):
        from repro.scenarios import corpus_source

        for seed in range(args.corpus_base, args.corpus_base + args.corpus):
            tasks.append(BatchTask(
                id=f"corpus-{seed}", kind="net",
                payload={"source": corpus_source(seed), "solver": args.solver},
            ))
    return tasks


def _cmd_batch(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.batch import BatchEngine
    from repro.batch.engine import RetryPolicy
    from repro.batch.journal import tasks_fingerprint
    from repro.obs import RunLedger, build_run_document, collapsed_text
    from repro.resilience.budget import BudgetSpec
    from repro.resilience.faultinject import BatchFaultPlan

    created_unix = time.time()

    if args.resume and (args.inputs or args.experiments or args.corpus):
        print("--resume takes its task list from the journal; "
              "do not pass inputs, --experiments or --corpus with it",
              file=sys.stderr)
        return 2
    if args.resume and args.journal:
        print("--resume appends to the journal it resumes from; "
              "--journal is redundant", file=sys.stderr)
        return 2
    tasks = [] if args.resume else _batch_tasks(args)
    if not tasks and not args.resume:
        print("nothing to do: pass model files, --experiments or --corpus N",
              file=sys.stderr)
        return 2
    try:
        faults = BatchFaultPlan.parse(args.chaos) if args.chaos else None
    except ValueError as exc:
        print(f"bad --chaos spec: {exc}", file=sys.stderr)
        return 2
    engine = BatchEngine(
        jobs=args.jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
        default_budget=(
            BudgetSpec(deadline_seconds=args.deadline) if args.deadline else None
        ),
        retry=RetryPolicy(retries=args.retries, task_timeout=args.task_timeout),
        journal=args.journal,
        cache_max_bytes=args.cache_max_bytes,
        faults=faults,
        profile=_profile_config(args),
    )
    if args.resume:
        report = engine.resume(args.resume)
    else:
        report = engine.run(tasks)
    print(report.summary())
    if args.measures:
        args.measures.write_text(report.measures_json())
        print(f"measures written to {args.measures}", file=sys.stderr)
    if args.trace:
        document = report.merged_trace()
        document["metrics"] = report.merged_metrics()["metrics"]
        args.trace.write_text(json.dumps(document, indent=2, default=str) + "\n")
        print(f"merged trace written to {args.trace}", file=sys.stderr)
    if args.events:
        events = report.merged_events()
        with open(args.events, "w") as fh:
            fh.write(json.dumps(
                {"schema": "repro-events/1", "events": len(events), "dropped": 0}
            ) + "\n")
            for record in events:
                fh.write(json.dumps(record, default=str) + "\n")
        print(f"{len(events)} events written to {args.events}", file=sys.stderr)
    merged_profile = report.merged_profile()
    if args.profile_out:
        args.profile_out.write_text(collapsed_text(merged_profile))
        print(f"collapsed profile written to {args.profile_out}", file=sys.stderr)
    if args.ledger:
        document = build_run_document(
            command="batch",
            created_unix=created_unix,
            config=_ledger_config(args),
            tasks_fingerprint=tasks_fingerprint(tasks) if tasks else None,
            tracer=report.merged_trace(),
            metrics=report.merged_metrics(),
            events=report.merged_events(),
            profile=merged_profile,
            cache=report.cache_totals(),
            incidents=report.incidents,
            extra={
                "jobs": report.jobs,
                "duration_s": round(report.duration_s, 6),
                "ok": report.ok,
                "tasks": len(report.results),
                "failures": len(report.failures),
                "quarantined": len(report.quarantined),
                "retries": report.retries,
            },
        )
        run_id = RunLedger(args.ledger).record(document)
        print(f"run {run_id} recorded in ledger {args.ledger}", file=sys.stderr)
    return 0 if report.ok else 3


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.scenarios import fuzz

    report = fuzz.run_sweep(
        range(args.start, args.start + args.seeds),
        solver=args.solver,
        max_states=args.max_states or fuzz.DEFAULT_MAX_STATES,
        tolerance=args.tolerance or fuzz.DEFAULT_TOLERANCE,
        deadline=args.deadline,
        out_dir=args.out,
        minimise=not args.no_minimise,
        progress=lambda line: print(line, file=sys.stderr),
    )
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_analyze_trace(args: argparse.Namespace) -> int:
    from repro.obs import (
        aggregate_spans, critical_path, load_trace, render_aggregate,
        render_critical_path,
    )

    document = load_trace(args.trace_file)
    print(render_critical_path(critical_path(document)))
    print()
    print(render_aggregate(aggregate_spans(document)))
    return 0


def _cmd_diff_trace(args: argparse.Namespace) -> int:
    from repro.obs import diff_traces, load_trace, render_trace_diff

    print(render_trace_diff(diff_traces(load_trace(args.base),
                                        load_trace(args.new))))
    return 0


def _run_observed(handler, args: argparse.Namespace) -> int:
    """Run a handler under live collectors when requested.

    ``--trace FILE`` serialises the span forest (plus any metrics) as
    JSON; ``--metrics`` prints the metrics table after the run;
    ``--events FILE`` records per-iteration solver convergence and
    exploration progress events as JSON Lines; ``--profile`` samples
    the run (``--profile-out FILE`` keeps the collapsed stacks);
    ``--ledger DIR`` records the whole invocation as a run document.
    All artefacts are still emitted when the handler raises, so failed
    runs leave evidence behind.
    """
    import time

    from repro.obs import (
        EventStream, MetricsRegistry, RunLedger, SamplingProfiler,
        SpanResourceProbe, Tracer, build_run_document, render_metrics,
        use_events, use_metrics, use_profiler, use_resource_probe,
        use_tracer, write_events_jsonl, write_trace_file,
    )
    from contextlib import ExitStack

    trace_path = getattr(args, "trace", None)
    want_metrics = getattr(args, "metrics", False)
    events_path = getattr(args, "events", None)
    ledger_dir = getattr(args, "ledger", None)
    profile_out = getattr(args, "profile_out", None)
    config = _profile_config(args)
    if not any((trace_path, want_metrics, events_path, ledger_dir, config)):
        return handler(args)
    created_unix = time.time()
    tracer, metrics = Tracer(), MetricsRegistry()
    events = EventStream() if (events_path or ledger_dir) else None
    profiler = SamplingProfiler(config.interval) if config is not None else None
    exit_code: int | None = None
    try:
        with ExitStack() as stack:
            stack.enter_context(use_tracer(tracer))
            stack.enter_context(use_metrics(metrics))
            if events is not None:
                stack.enter_context(use_events(events))
            if profiler is not None:
                stack.enter_context(use_profiler(profiler))
                stack.enter_context(
                    use_resource_probe(SpanResourceProbe(memory=config.memory))
                )
                stack.enter_context(profiler)
            try:
                exit_code = handler(args)
            except Exception:
                exit_code = 2  # what main() maps library errors to
                raise
            return exit_code
    finally:
        if trace_path:
            write_trace_file(trace_path, tracer, metrics)
            print(f"trace written to {trace_path}", file=sys.stderr)
        if events is not None and events_path:
            count = write_events_jsonl(events_path, events)
            print(f"{count} events written to {events_path}", file=sys.stderr)
        if profiler is not None and profile_out:
            profile_out.write_text(profiler.collapsed())
            print(f"collapsed profile written to {profile_out}", file=sys.stderr)
        if want_metrics:
            print(render_metrics(metrics))
        if ledger_dir:
            document = build_run_document(
                command=args.command,
                created_unix=created_unix,
                config=_ledger_config(args),
                tracer=tracer,
                metrics=metrics,
                events=events,
                profile=profiler.to_dict() if profiler is not None else None,
                trace=tracer.to_dict(),
                extra={"exit_code": exit_code},
            )
            run_id = RunLedger(ledger_dir).record(document)
            print(f"run {run_id} recorded in ledger {ledger_dir}",
                  file=sys.stderr)


def _cmd_runs(args: argparse.Namespace) -> int:
    """The ledger query surface: list/show/compare/trend/export/prune."""
    import json
    from datetime import datetime, timezone

    from repro.obs import RunLedger, collapsed_text, prometheus_text
    from repro.obs.export import write_chrome_trace
    from repro.obs.regress import (
        DEFAULT_MIN_SECONDS, DEFAULT_THRESHOLD, compare_benchmarks,
        detect_trend, markdown_report, trend_markdown,
    )

    if args.runs_command != "prune" and not (args.ledger / "FORMAT").exists():
        print(f"error: no run ledger at {args.ledger}", file=sys.stderr)
        return 2
    ledger = RunLedger(args.ledger)

    def _load(run_id: str | None) -> dict:
        if run_id is None:
            latest = ledger.latest()
            if latest is None:
                raise FileNotFoundError(f"ledger {args.ledger} is empty")
            return latest
        return ledger.load(run_id)

    if args.runs_command == "list":
        documents = ledger.runs(command=args.filter_command, last=args.last)
        if not documents:
            print("(no recorded runs)")
            return 0
        rows = []
        for document in documents:
            created = datetime.fromtimestamp(
                document.get("created_unix", 0), tz=timezone.utc
            ).strftime("%Y-%m-%d %H:%M:%S")
            rows.append([
                document.get("run_id", "?"),
                document.get("command", "?"),
                document.get("label") or "",
                created,
                document.get("config_fingerprint", "")[:12],
                "yes" if "bench" in document else "",
            ])
        print(format_table(
            ["run", "command", "label", "created (UTC)", "config", "bench"],
            rows,
        ))
        return 0

    if args.runs_command == "show":
        print(json.dumps(_load(args.run_id), sort_keys=True, indent=2))
        return 0

    if args.runs_command == "compare":
        base, new = _load(args.base), _load(args.new)
        missing = [doc.get("run_id") for doc in (base, new)
                   if "bench" not in doc]
        if missing:
            print(f"error: run(s) {missing} carry no bench section; "
                  "compare needs runs recorded by the bench harness",
                  file=sys.stderr)
            return 2
        comparison = compare_benchmarks(
            base["bench"], new["bench"],
            threshold=args.threshold or DEFAULT_THRESHOLD,
            min_seconds=(DEFAULT_MIN_SECONDS if args.min_seconds is None
                         else args.min_seconds),
        )
        report = markdown_report(comparison)
        print(report)
        if args.report:
            args.report.write_text(report)
        return 0 if comparison.ok else 1

    if args.runs_command == "trend":
        documents = ledger.runs(command=args.filter_command)
        trend = detect_trend(
            documents,
            threshold=args.threshold or DEFAULT_THRESHOLD,
            min_seconds=(DEFAULT_MIN_SECONDS if args.min_seconds is None
                         else args.min_seconds),
            window=args.window,
        )
        report = trend_markdown(trend)
        print(report)
        if args.report:
            args.report.write_text(report)
        return 0 if trend.ok else 1

    if args.runs_command == "export":
        document = _load(args.run_id)
        if not (args.chrome or args.prometheus or args.collapsed):
            print("error: pass --chrome, --prometheus and/or --collapsed",
                  file=sys.stderr)
            return 2
        if args.chrome:
            if "trace" not in document:
                print(f"error: run {document.get('run_id')} embeds no trace; "
                      "record it with --trace/--ledger on a run-producing "
                      "command (bench summaries carry aggregates only)",
                      file=sys.stderr)
                return 2
            count = write_chrome_trace(
                args.chrome, document["trace"],
                profile=document.get("profile"),
            )
            print(f"{count} Chrome trace events written to {args.chrome}")
        if args.prometheus:
            snapshot = {"schema": "repro-metrics/1",
                        "metrics": document.get("metrics", {})}
            args.prometheus.write_text(prometheus_text(snapshot))
            print(f"Prometheus metrics written to {args.prometheus}")
        if args.collapsed:
            profile = document.get("profile", {})
            if not profile.get("samples"):
                print(f"error: run {document.get('run_id')} carries no "
                      "profiler samples; record it with --profile",
                      file=sys.stderr)
                return 2
            args.collapsed.write_text(collapsed_text(profile))
            print(f"collapsed profile written to {args.collapsed}")
        return 0

    if args.runs_command == "prune":
        removed = ledger.prune(args.keep)
        print(f"pruned {removed} run(s), kept {len(ledger)}")
        return 0

    raise ValueError(f"unknown runs sub-command {args.runs_command!r}")


def main(argv: list[str] | None = None) -> int:
    """Entry point: dispatch a sub-command, mapping library errors to exit code 2."""
    args = build_parser().parse_args(argv)
    handlers = {
        "analyse": _cmd_analyse,
        "pepa": _cmd_pepa,
        "fluid": _cmd_fluid,
        "net": _cmd_net,
        "validate": _cmd_validate,
        "simulate": _cmd_simulate,
        "sensitivity": _cmd_sensitivity,
        "experiments": _cmd_experiments,
        "dot": _cmd_dot,
        "batch": _cmd_batch,
        "fuzz": _cmd_fuzz,
        "analyze-trace": _cmd_analyze_trace,
        "diff-trace": _cmd_diff_trace,
        "runs": _cmd_runs,
    }
    try:
        if args.command in ("batch", "runs"):
            # batch owns --trace/--events/--ledger itself: they name
            # *merged* artefacts over every task, not a single-run
            # recording; runs *queries* a ledger rather than filling one
            return handlers[args.command](args)
        return _run_observed(handlers[args.command], args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
