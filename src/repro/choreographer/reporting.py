"""Plain-text reports of analysis outcomes.

Renders the same information the Poseidon screenshots of Figures 6/7
show — activities annotated with throughput, states with steady-state
probability — as aligned tables for the terminal and the CLI.
"""

from __future__ import annotations

from repro.utils.formatting import format_table

__all__ = ["activity_report", "statechart_report"]


def activity_report(outcome) -> str:
    """Render an :class:`~repro.choreographer.platform.ActivityOutcome`."""
    graph = outcome.graph
    rows = []
    for node in graph.actions():
        action = outcome.extraction.pepa_action_of(node)
        rows.append(
            [
                node.name,
                "<<move>>" if node.is_move else "",
                action,
                outcome.analysis.throughput(action),
            ]
        )
    header = (
        f"Activity diagram {graph.name!r}: "
        f"{outcome.analysis.n_states} states, "
        f"{len(outcome.extraction.net.places)} places, "
        f"{len(outcome.extraction.net.transitions)} net transitions"
    )
    table = format_table(["activity", "stereotype", "pepa action", "throughput"], rows)
    occupancy_rows = [
        [place, value]
        for place, value in outcome.analysis.location_distribution().items()
    ]
    occupancy = format_table(["place", "mean tokens"], occupancy_rows)
    return f"{header}\n\n{table}\n\n{occupancy}"


def statechart_report(outcome) -> str:
    """Render a :class:`~repro.choreographer.platform.StatechartOutcome`."""
    sections = [
        f"Composed state diagrams: {outcome.analysis.n_states} states "
        f"({', '.join(e.machine.name for e in outcome.extractions)})"
    ]
    for extraction in outcome.extractions:
        rows = []
        for state in extraction.machine.simple_states():
            constant = extraction.state_constants[state.xmi_id]
            rows.append(
                [state.name, constant,
                 outcome.analysis.probability_of_local_state(constant)]
            )
        sections.append(
            f"{extraction.machine.name}\n"
            + format_table(["state", "pepa constant", "probability"], rows)
        )
    throughput_rows = sorted(outcome.analysis.all_throughputs().items())
    sections.append(
        "activity throughput\n"
        + format_table(["activity", "throughput"], [[a, v] for a, v in throughput_rows])
    )
    return "\n\n".join(sections)
