"""UML models with the mobility notation (paper substrate S5/S6).

Activity graphs with ``<<move>>`` stereotypes and ``atloc`` tags
(Baumeister et al.), statecharts, XMI interchange, Poseidon layout
handling and a miniature metadata repository.
"""

from repro.uml.activity import ActivityEdge, ActivityGraph, ActivityNode
from repro.uml.model import (
    STEREOTYPE_MOVE,
    TAG_ATLOC,
    TAG_PROBABILITY,
    TAG_RATE,
    TAG_THROUGHPUT,
    UmlElement,
    UmlModel,
)
from repro.uml.statechart import State, StateMachine, StateTransition
from repro.uml.validate import validate_for_extraction

__all__ = [
    "UmlElement",
    "UmlModel",
    "ActivityGraph",
    "ActivityNode",
    "ActivityEdge",
    "StateMachine",
    "State",
    "StateTransition",
    "validate_for_extraction",
    "STEREOTYPE_MOVE",
    "TAG_ATLOC",
    "TAG_RATE",
    "TAG_THROUGHPUT",
    "TAG_PROBABILITY",
]
