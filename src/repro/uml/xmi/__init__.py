"""XMI interchange, Poseidon pre/post-processing and the metadata
repository (paper substrate S6, Figure 4's connector boxes)."""

from repro.uml.xmi.mdr import (
    UML14_METAMODEL,
    MdrObject,
    MetaAttribute,
    MetaClass,
    Metamodel,
    Repository,
)
from repro.uml.xmi.poseidon import (
    NS_POSEIDON,
    add_synthetic_layout,
    extract_layout,
    postprocess,
    preprocess,
)
from repro.uml.xmi.reader import mdr_to_model, read_model, xml_to_mdr
from repro.uml.xmi.writer import NS_UML, mdr_to_xml, model_to_mdr, write_model

__all__ = [
    "Repository",
    "Metamodel",
    "MetaClass",
    "MetaAttribute",
    "MdrObject",
    "UML14_METAMODEL",
    "read_model",
    "write_model",
    "xml_to_mdr",
    "mdr_to_model",
    "model_to_mdr",
    "mdr_to_xml",
    "NS_UML",
    "NS_POSEIDON",
    "preprocess",
    "postprocess",
    "add_synthetic_layout",
    "extract_layout",
]
