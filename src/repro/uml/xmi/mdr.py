"""A miniature Metadata Repository (MDR), standing in for NetBeans MDR.

The paper's Extractor/Reflector deliberately goes through a metadata
repository rather than a raw DOM: a MOF metamodel is imported first,
and models are then instantiated, navigated and mutated through
metamodel-derived interfaces ("MDR's interfaces for accessing and
manipulating the UML model reduce the amount of code that has to be
written" — Section 4).  We reproduce that architecture:

* :class:`Metamodel` — class descriptors with attribute/reference
  declarations (our UML 1.4 subset ships as :data:`UML14_METAMODEL`);
* :class:`Repository` — imports a metamodel, then owns *extents* of
  instances;
* :class:`MdrObject` — a reflective instance: ``get``/``set`` validate
  every access against the metamodel, so a typo in the extractor is an
  immediate :class:`XmiError` instead of silently-missing data.

Models enter and leave the repository as XMI via
:mod:`repro.uml.xmi.reader` / :mod:`repro.uml.xmi.writer`, which are
written *against this API* — exactly the layering of Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import XmiError

__all__ = ["MetaAttribute", "MetaClass", "Metamodel", "MdrObject", "Repository", "UML14_METAMODEL"]


@dataclass(frozen=True)
class MetaAttribute:
    """An attribute declaration: plain string, or a reference (id)."""

    name: str
    kind: str = "string"  # "string" | "id"
    required: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("string", "id"):
            raise XmiError(f"unknown attribute kind {self.kind!r}")


@dataclass(frozen=True)
class MetaClass:
    """A metaclass: attributes plus which child element kinds it owns."""

    name: str
    attributes: tuple[MetaAttribute, ...] = ()
    children: tuple[str, ...] = ()

    def attribute(self, name: str) -> MetaAttribute:
        """The attribute declaration; raises on unknown names."""
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise XmiError(f"metaclass {self.name!r} has no attribute {name!r}")

    def allows_child(self, class_name: str) -> bool:
        """True when instances may contain that metaclass."""
        return class_name in self.children


@dataclass(frozen=True)
class Metamodel:
    """A named, versioned set of metaclasses."""

    name: str
    version: str
    classes: dict[str, MetaClass] = field(default_factory=dict)

    def metaclass(self, name: str) -> MetaClass:
        """The metaclass by name; raises for names outside the metamodel."""
        try:
            return self.classes[name]
        except KeyError:
            raise XmiError(
                f"element {name!r} is not part of the {self.name} "
                f"{self.version} metamodel"
            ) from None


def _mm(name: str, attrs: list[tuple[str, str] | tuple[str, str, bool]], children: list[str]) -> MetaClass:
    parsed = []
    for a in attrs:
        if len(a) == 3:
            parsed.append(MetaAttribute(a[0], a[1], a[2]))
        else:
            parsed.append(MetaAttribute(a[0], a[1]))
    return MetaClass(name, tuple(parsed), tuple(children))


#: The UML 1.4 subset Choreographer works with ("we have chosen the UML
#: metamodel version 1.4, because it is the basis of the Poseidon UML
#: tool used in the DEGAS project").
UML14_METAMODEL = Metamodel(
    "UML",
    "1.4",
    {
        c.name: c
        for c in [
            _mm("Model", [("xmi.id", "id", True), ("name", "string")],
                ["ActivityGraph", "StateMachine", "TaggedValue", "Stereotype"]),
            _mm("ActivityGraph", [("xmi.id", "id", True), ("name", "string")],
                ["ActionState", "Pseudostate", "FinalState", "ObjectFlowState",
                 "Transition"]),
            _mm("StateMachine",
                [("xmi.id", "id", True), ("name", "string"), ("context", "string")],
                ["SimpleState", "Pseudostate", "FinalState", "Transition"]),
            _mm("ActionState", [("xmi.id", "id", True), ("name", "string")],
                ["TaggedValue", "Stereotype"]),
            _mm("SimpleState", [("xmi.id", "id", True), ("name", "string")],
                ["TaggedValue", "Stereotype"]),
            _mm("Pseudostate",
                [("xmi.id", "id", True), ("name", "string"), ("kind", "string", True)],
                ["TaggedValue"]),
            _mm("FinalState", [("xmi.id", "id", True), ("name", "string")],
                ["TaggedValue"]),
            _mm("ObjectFlowState", [("xmi.id", "id", True), ("name", "string")],
                ["TaggedValue", "Stereotype"]),
            _mm("Transition",
                [("xmi.id", "id", True), ("name", "string"), ("source", "id", True),
                 ("target", "id", True), ("trigger", "string"), ("guard", "string")],
                ["TaggedValue"]),
            _mm("TaggedValue", [("tag", "string", True), ("value", "string", True)], []),
            _mm("Stereotype", [("name", "string", True)], []),
        ]
    },
)


class MdrObject:
    """A reflective metamodel instance."""

    def __init__(self, metaclass: MetaClass, repository: "Repository"):
        self._metaclass = metaclass
        self._repository = repository
        self._values: dict[str, str] = {}
        self.children: list[MdrObject] = []

    @property
    def metaclass_name(self) -> str:
        return self._metaclass.name

    def get(self, attribute: str) -> str | None:
        """Read an attribute (name validated against the metamodel)."""
        self._metaclass.attribute(attribute)  # validates the name
        return self._values.get(attribute)

    def set(self, attribute: str, value: str) -> "MdrObject":
        """Write an attribute (name validated); returns self for chaining."""
        self._metaclass.attribute(attribute)
        self._values[attribute] = str(value)
        return self

    def require(self, attribute: str) -> str:
        """Read a required attribute; raises when unset."""
        value = self.get(attribute)
        if value is None:
            raise XmiError(
                f"{self.metaclass_name} instance is missing required "
                f"attribute {attribute!r}"
            )
        return value

    def add_child(self, child: "MdrObject") -> "MdrObject":
        """Attach a child instance; containment rules are enforced."""
        if not self._metaclass.allows_child(child.metaclass_name):
            raise XmiError(
                f"{self.metaclass_name} may not contain {child.metaclass_name}"
            )
        self.children.append(child)
        return child

    def children_of(self, class_name: str) -> list["MdrObject"]:
        """The child instances of one metaclass."""
        return [c for c in self.children if c.metaclass_name == class_name]

    def validate(self) -> None:
        """Check required attributes, recursively."""
        for attr in self._metaclass.attributes:
            if attr.required and attr.name not in self._values:
                raise XmiError(
                    f"{self.metaclass_name} instance is missing required "
                    f"attribute {attr.name!r}"
                )
        for child in self.children:
            child.validate()


class Repository:
    """Owns one imported metamodel and any number of extents."""

    def __init__(self) -> None:
        self._metamodel: Metamodel | None = None
        self.extents: dict[str, list[MdrObject]] = {}

    def import_metamodel(self, metamodel: Metamodel) -> None:
        """Install the metamodel; a conflicting re-import raises."""
        if self._metamodel is not None and self._metamodel is not metamodel:
            raise XmiError("a different metamodel is already imported")
        self._metamodel = metamodel

    @property
    def metamodel(self) -> Metamodel:
        if self._metamodel is None:
            raise XmiError("no metamodel imported; call import_metamodel first")
        return self._metamodel

    def create_extent(self, name: str) -> list[MdrObject]:
        """Create a named extent; duplicates are rejected."""
        if name in self.extents:
            raise XmiError(f"extent {name!r} already exists")
        self.extents[name] = []
        return self.extents[name]

    def instantiate(self, class_name: str, extent: str | None = None) -> MdrObject:
        """Create an instance of a metaclass, optionally in an extent."""
        obj = MdrObject(self.metamodel.metaclass(class_name), self)
        if extent is not None:
            if extent not in self.extents:
                raise XmiError(f"unknown extent {extent!r}")
            self.extents[extent].append(obj)
        return obj
