"""XMI import: XMI document → MDR extent → UmlModel.

The reader is strict about what the metamodel allows — any element not
in the UML 1.4 subset is an :class:`XmiError` (which is why the
Poseidon preprocessor must strip tool-specific elements *before* MDR
import, exactly as in the paper's Figure 4 pipeline).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.exceptions import XmiError
from repro.uml.activity import ActivityEdge, ActivityGraph, ActivityNode
from repro.uml.model import UmlElement, UmlModel
from repro.uml.statechart import State, StateMachine, StateTransition
from repro.uml.xmi.mdr import UML14_METAMODEL, MdrObject, Repository
from repro.uml.xmi.writer import NS_UML

__all__ = ["xml_to_mdr", "mdr_to_model", "read_model"]


def _local(tag: str) -> str:
    return tag.rsplit("}", 1)[-1]


def _is_uml(element: ET.Element) -> bool:
    return element.tag.startswith(f"{{{NS_UML}}}")


def xml_to_mdr(text: str, repository: Repository | None = None) -> MdrObject:
    """Parse XMI text into a repository extent; returns the Model root."""
    try:
        xmi = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XmiError(f"not well-formed XML: {exc}") from exc
    if _local(xmi.tag) != "XMI":
        raise XmiError(f"root element is {xmi.tag!r}, expected XMI")
    header = xmi.find("XMI.header/XMI.metamodel")
    if header is not None:
        declared = (header.get("xmi.name"), header.get("xmi.version"))
        if declared != ("UML", "1.4"):
            raise XmiError(
                f"document declares metamodel {declared[0]} {declared[1]}; "
                "this reader implements UML 1.4"
            )
    content = xmi.find("XMI.content")
    if content is None:
        raise XmiError("document has no XMI.content")
    models = [el for el in content if _is_uml(el) and _local(el.tag) == "Model"]
    if len(models) != 1:
        raise XmiError(f"XMI.content holds {len(models)} UML:Model elements; expected 1")
    foreign = [el for el in content if not _is_uml(el)]
    if foreign:
        raise XmiError(
            f"tool-specific element {foreign[0].tag!r} inside XMI.content; "
            "run the Poseidon preprocessor first"
        )

    repo = repository or Repository()
    repo.import_metamodel(UML14_METAMODEL)
    extent = "import"
    if extent not in repo.extents:
        repo.create_extent(extent)
    root = _element_to_mdr(models[0], repo, extent)
    root.validate()
    return root


def _element_to_mdr(element: ET.Element, repo: Repository, extent: str | None) -> MdrObject:
    if not _is_uml(element):
        raise XmiError(
            f"non-UML element {element.tag!r} inside the model; "
            "run the Poseidon preprocessor first"
        )
    obj = repo.instantiate(_local(element.tag), extent)
    for key, value in element.attrib.items():
        obj.set(key, value)  # validates against the metamodel
    for child in element:
        obj.add_child(_element_to_mdr(child, repo, None))
    return obj


# ----------------------------------------------------------------------
# MDR -> typed model
# ----------------------------------------------------------------------
def _read_annotations(obj: MdrObject, element: UmlElement) -> None:
    for st in obj.children_of("Stereotype"):
        element.add_stereotype(st.require("name"))
    for tv in obj.children_of("TaggedValue"):
        element.set_tag(tv.require("tag"), tv.require("value"))


_KIND_OF_PSEUDO = {
    "initial": "initial",
    "junction": "decision",
    "choice": "decision",
    "fork": "fork",
    "join": "join",
}


def mdr_to_model(root: MdrObject) -> UmlModel:
    """Bind a repository Model instance to the typed UML classes."""
    if root.metaclass_name != "Model":
        raise XmiError(f"expected a Model instance, got {root.metaclass_name}")
    model = UmlModel(name=root.get("name") or "", xmi_id=root.require("xmi.id"))
    _read_annotations(root, model)
    for g in root.children_of("ActivityGraph"):
        model.add_activity_graph(_mdr_to_graph(g))
    for m in root.children_of("StateMachine"):
        model.add_state_machine(_mdr_to_machine(m))
    return model


def _mdr_to_graph(g: MdrObject) -> ActivityGraph:
    graph = ActivityGraph(g.get("name") or g.require("xmi.id"))
    graph.xmi_id = g.require("xmi.id")
    for obj in g.children:
        cls = obj.metaclass_name
        if cls == "Transition":
            continue
        if cls == "ActionState":
            node = ActivityNode(name=obj.get("name") or "", xmi_id=obj.require("xmi.id"),
                                kind="action")
        elif cls == "ObjectFlowState":
            node = ActivityNode(name=obj.get("name") or "", xmi_id=obj.require("xmi.id"),
                                kind="object")
        elif cls == "FinalState":
            node = ActivityNode(name=obj.get("name") or "", xmi_id=obj.require("xmi.id"),
                                kind="final")
        elif cls == "Pseudostate":
            kind = _KIND_OF_PSEUDO.get(obj.require("kind"))
            if kind is None:
                raise XmiError(
                    f"pseudostate kind {obj.require('kind')!r} is outside the "
                    "extractor's supported subset"
                )
            node = ActivityNode(name=obj.get("name") or "", xmi_id=obj.require("xmi.id"),
                                kind=kind)
        else:  # TaggedValue / Stereotype at graph level: ignore quietly
            continue
        if cls != "FinalState":
            _read_annotations(obj, node)
        graph._add(node)
    for obj in g.children_of("Transition"):
        edge = ActivityEdge(
            xmi_id=obj.require("xmi.id"),
            source=obj.require("source"),
            target=obj.require("target"),
            guard=obj.get("guard"),
        )
        for ref in (edge.source, edge.target):
            if ref not in graph.nodes:
                raise XmiError(f"transition {edge.xmi_id!r} references unknown node {ref!r}")
        graph.edges.append(edge)
    return graph


def _mdr_to_machine(m: MdrObject) -> StateMachine:
    machine = StateMachine(m.get("name") or m.require("xmi.id"),
                           context_class=m.get("context") or "")
    machine.xmi_id = m.require("xmi.id")
    for obj in m.children:
        cls = obj.metaclass_name
        if cls == "SimpleState":
            state = State(name=obj.get("name") or "", xmi_id=obj.require("xmi.id"),
                          kind="simple")
            _read_annotations(obj, state)
            machine.states[state.xmi_id] = state
        elif cls == "Pseudostate":
            if obj.require("kind") != "initial":
                raise XmiError(
                    f"state machines support only initial pseudostates, got "
                    f"{obj.require('kind')!r}"
                )
            state = State(name=obj.get("name") or "", xmi_id=obj.require("xmi.id"),
                          kind="initial")
            machine.states[state.xmi_id] = state
    for obj in m.children_of("Transition"):
        tr = StateTransition(
            xmi_id=obj.require("xmi.id"),
            source=obj.require("source"),
            target=obj.require("target"),
            trigger=obj.get("trigger") or "",
        )
        for ref in (tr.source, tr.target):
            if ref not in machine.states:
                raise XmiError(f"transition {tr.xmi_id!r} references unknown state {ref!r}")
        _read_annotations(obj, tr)
        machine.transitions.append(tr)
    return machine


def read_model(text: str) -> UmlModel:
    """One-shot: XMI text → typed model (through the repository)."""
    return mdr_to_model(xml_to_mdr(text))
