"""XMI export: UmlModel → MDR extent → XMI document.

The document shape follows XMI 1.2 conventions (header naming the
metamodel, content carrying the model) with the UML namespace on every
model element.  Layout information is *not* written here — that is the
Poseidon layer's business (:mod:`repro.uml.xmi.poseidon`), mirroring
the paper's separation of structure from diagram data.
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET

from repro.exceptions import XmiError
from repro.uml.activity import ActivityGraph
from repro.uml.model import UmlElement, UmlModel
from repro.uml.statechart import StateMachine
from repro.uml.xmi.mdr import UML14_METAMODEL, MdrObject, Repository

__all__ = ["NS_UML", "model_to_mdr", "mdr_to_xml", "write_model"]

NS_UML = "org.omg.xmi.namespace.UML"
ET.register_namespace("UML", NS_UML)


def _q(name: str) -> str:
    return f"{{{NS_UML}}}{name}"


# ----------------------------------------------------------------------
# UmlModel -> MDR
# ----------------------------------------------------------------------
def model_to_mdr(model: UmlModel, repository: Repository | None = None) -> MdrObject:
    """Populate a repository extent from a typed model and return the
    root Model instance."""
    repo = repository or Repository()
    repo.import_metamodel(UML14_METAMODEL)
    extent_name = f"export:{model.name or model.xmi_id}"
    if extent_name not in repo.extents:
        repo.create_extent(extent_name)
    root = repo.instantiate("Model", extent_name)
    root.set("xmi.id", model.xmi_id)
    root.set("name", model.name)
    _write_annotations(repo, root, model)
    for graph in model.activity_graphs:
        root.add_child(_graph_to_mdr(repo, graph))
    for machine in model.state_machines:
        root.add_child(_machine_to_mdr(repo, machine))
    root.validate()
    return root


def _write_annotations(repo: Repository, obj: MdrObject, element: UmlElement) -> None:
    for stereotype in sorted(element.stereotypes):
        child = repo.instantiate("Stereotype")
        child.set("name", stereotype)
        obj.add_child(child)
    for tag, value in sorted(element.tagged_values.items()):
        child = repo.instantiate("TaggedValue")
        child.set("tag", tag)
        child.set("value", value)
        obj.add_child(child)


_NODE_CLASS = {
    "initial": "Pseudostate",
    "decision": "Pseudostate",
    "fork": "Pseudostate",
    "join": "Pseudostate",
    "final": "FinalState",
    "action": "ActionState",
    "object": "ObjectFlowState",
}
_PSEUDO_KIND = {"initial": "initial", "decision": "junction", "fork": "fork", "join": "join"}


def _graph_to_mdr(repo: Repository, graph: ActivityGraph) -> MdrObject:
    g = repo.instantiate("ActivityGraph")
    g.set("xmi.id", graph.xmi_id)
    g.set("name", graph.name)
    for node in graph.nodes.values():
        cls = _NODE_CLASS[node.kind]
        o = repo.instantiate(cls)
        o.set("xmi.id", node.xmi_id)
        if node.name:
            o.set("name", node.name)
        if cls == "Pseudostate":
            o.set("kind", _PSEUDO_KIND[node.kind])
        if cls != "FinalState":
            _write_annotations(repo, o, node)
        g.add_child(o)
    for edge in graph.edges:
        t = repo.instantiate("Transition")
        t.set("xmi.id", edge.xmi_id)
        t.set("source", edge.source)
        t.set("target", edge.target)
        if edge.guard:
            t.set("guard", edge.guard)
        g.add_child(t)
    return g


def _machine_to_mdr(repo: Repository, machine: StateMachine) -> MdrObject:
    m = repo.instantiate("StateMachine")
    m.set("xmi.id", machine.xmi_id)
    m.set("name", machine.name)
    m.set("context", machine.context_class)
    for state in machine.states.values():
        if state.kind == "initial":
            o = repo.instantiate("Pseudostate")
            o.set("kind", "initial")
        else:
            o = repo.instantiate("SimpleState")
        o.set("xmi.id", state.xmi_id)
        if state.name:
            o.set("name", state.name)
        if o.metaclass_name == "SimpleState":
            _write_annotations(repo, o, state)
        m.add_child(o)
    for tr in machine.transitions:
        t = repo.instantiate("Transition")
        t.set("xmi.id", tr.xmi_id)
        t.set("source", tr.source)
        t.set("target", tr.target)
        if tr.trigger:
            t.set("trigger", tr.trigger)
        for tag, value in sorted(tr.tagged_values.items()):
            tv = repo.instantiate("TaggedValue")
            tv.set("tag", tag)
            tv.set("value", value)
            t.add_child(tv)
        m.add_child(t)
    return m


# ----------------------------------------------------------------------
# MDR -> XML text
# ----------------------------------------------------------------------
_ATTRS = {
    "Model": ("xmi.id", "name"),
    "ActivityGraph": ("xmi.id", "name"),
    "StateMachine": ("xmi.id", "name", "context"),
    "ActionState": ("xmi.id", "name"),
    "SimpleState": ("xmi.id", "name"),
    "Pseudostate": ("xmi.id", "name", "kind"),
    "FinalState": ("xmi.id", "name"),
    "ObjectFlowState": ("xmi.id", "name"),
    "Transition": ("xmi.id", "name", "source", "target", "trigger", "guard"),
    "TaggedValue": ("tag", "value"),
    "Stereotype": ("name",),
}


# XML 1.0 cannot represent C0 control characters (other than tab, LF,
# CR); writing them would produce a document no parser accepts, so the
# writer fails fast instead.
_XML_ILLEGAL = re.compile(r"[\x00-\x08\x0b\x0c\x0e-\x1f]")


def _mdr_to_element(obj: MdrObject) -> ET.Element:
    el = ET.Element(_q(obj.metaclass_name))
    for attr in _ATTRS[obj.metaclass_name]:
        value = obj.get(attr)
        if value is not None and value != "":
            if _XML_ILLEGAL.search(value):
                raise XmiError(
                    f"{obj.metaclass_name}.{attr} contains a control character "
                    "that XML 1.0 cannot represent"
                )
            el.set(attr, value)
    for child in obj.children:
        el.append(_mdr_to_element(child))
    return el


def mdr_to_xml(root: MdrObject, metamodel_name: str = "UML", metamodel_version: str = "1.4") -> str:
    """Serialise an MDR Model instance as an XMI document string."""
    xmi = ET.Element("XMI", {"xmi.version": "1.2"})
    header = ET.SubElement(xmi, "XMI.header")
    ET.SubElement(
        header,
        "XMI.metamodel",
        {"xmi.name": metamodel_name, "xmi.version": metamodel_version},
    )
    content = ET.SubElement(xmi, "XMI.content")
    content.append(_mdr_to_element(root))
    ET.indent(xmi)
    return ET.tostring(xmi, encoding="unicode", xml_declaration=True)


def write_model(model: UmlModel) -> str:
    """One-shot: typed model → XMI text (through the repository)."""
    return mdr_to_xml(model_to_mdr(model))
