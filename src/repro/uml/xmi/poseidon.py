"""Poseidon pre- and postprocessing (paper Figure 4).

Poseidon for UML stores diagram layout in additional XMI elements that
the UML metamodel does not know about, so MDR refuses them.  The
paper's solution is a tool-specific *preprocessor* that removes the
layout before extraction, and a *postprocessor* that merges the layout
of the original project back into the reflected model ("we want to
reuse the layout data of the original model for the reflected UML
model where possible").

Our stand-in Poseidon dialect keeps layout in a ``Poseidon:Diagrams``
sibling of ``XMI.content``: one ``Poseidon:NodeLayout`` per element,
keyed by ``xmi.idref``.  The merge is id-based, so layout survives for
every element still present after reflection and is dropped for
elements that disappeared — the behaviour the paper describes.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.exceptions import XmiError

__all__ = [
    "NS_POSEIDON",
    "preprocess",
    "postprocess",
    "add_synthetic_layout",
    "extract_layout",
]

NS_POSEIDON = "com.gentleware.poseidon"
ET.register_namespace("Poseidon", NS_POSEIDON)


def _parse(text: str) -> ET.Element:
    try:
        return ET.fromstring(text)
    except ET.ParseError as exc:
        raise XmiError(f"not well-formed XML: {exc}") from exc


def _is_poseidon(element: ET.Element) -> bool:
    return element.tag.startswith(f"{{{NS_POSEIDON}}}")


def preprocess(text: str) -> str:
    """Strip every Poseidon-specific element so the document conforms to
    the pure UML metamodel (the 'Poseidon preprocessor' box)."""
    root = _parse(text)
    _strip(root)
    ET.indent(root)
    return ET.tostring(root, encoding="unicode", xml_declaration=True)


def _strip(element: ET.Element) -> None:
    for child in list(element):
        if _is_poseidon(child):
            element.remove(child)
        else:
            _strip(child)


def extract_layout(text: str) -> dict[str, ET.Element]:
    """The layout blocks of a Poseidon document, keyed by the element id
    they decorate."""
    root = _parse(text)
    layout: dict[str, ET.Element] = {}
    for diagrams in root.iter(f"{{{NS_POSEIDON}}}Diagrams"):
        for block in diagrams:
            idref = block.get("xmi.idref")
            if idref is None:
                raise XmiError("Poseidon layout block without xmi.idref")
            layout[idref] = block
    return layout


def postprocess(reflected_text: str, original_poseidon_text: str) -> str:
    """Merge the original project's layout into the reflected model (the
    'Poseidon postprocessor' box).

    Layout blocks whose ``xmi.idref`` no longer resolves are dropped —
    reflection may have removed elements; everything else is carried
    over verbatim so the user's diagram arrangement survives the
    analysis round trip.
    """
    reflected = _parse(reflected_text)
    layout = extract_layout(original_poseidon_text)
    present_ids = {
        el.get("xmi.id")
        for el in reflected.iter()
        if el.get("xmi.id") is not None
    }
    diagrams = ET.Element(f"{{{NS_POSEIDON}}}Diagrams")
    for idref, block in sorted(layout.items()):
        if idref in present_ids:
            diagrams.append(block)
    if len(diagrams):
        reflected.append(diagrams)
    ET.indent(reflected)
    return ET.tostring(reflected, encoding="unicode", xml_declaration=True)


def add_synthetic_layout(text: str, *, grid: int = 80) -> str:
    """Decorate a plain XMI document with Poseidon-style layout blocks
    (one per identified element, on a simple grid).

    Used by tests and examples to synthesise realistic Poseidon project
    files, standing in for diagrams drawn by hand in the real tool.
    """
    root = _parse(text)
    diagrams = ET.Element(f"{{{NS_POSEIDON}}}Diagrams")
    x = y = 0
    for el in root.iter():
        xmi_id = el.get("xmi.id")
        if xmi_id is None:
            continue
        block = ET.SubElement(diagrams, f"{{{NS_POSEIDON}}}NodeLayout")
        block.set("xmi.idref", xmi_id)
        block.set("x", str(x))
        block.set("y", str(y))
        block.set("width", "120")
        block.set("height", "40")
        x += grid
        if x > 5 * grid:
            x = 0
            y += grid
    root.append(diagrams)
    ET.indent(root)
    return ET.tostring(root, encoding="unicode", xml_declaration=True)
