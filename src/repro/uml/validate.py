"""Extractor-side validation of activity diagrams (paper Section 6).

"The activity diagrams which are covered by the current version of the
PEPA net Extractor/Reflector module have to follow some restrictions."
We enforce the restrictions the mapping of Section 3 assumes, with
diagnostics precise enough to fix the diagram:

* exactly one initial node;
* no fork/join/merge nodes (the node kinds simply do not exist in our
  builder, but imported XMI could smuggle unknown kinds — rejected at
  parse time) and decisions only between activities;
* every object box in a diagram that uses mobility carries an ``atloc``
  tag;
* an object's activities are related only by sequence or binary choice
  (each action has at most one control successor unless it feeds a
  decision; decisions have at least two outgoing transitions);
* every ``<<move>>`` action has equally many input and output object
  flows (the balance condition of the PEPA net it compiles to);
* object state variants (star counts) never decrease along a flow —
  a diagnostic for miswired object chains.
"""

from __future__ import annotations

from repro.exceptions import ExtractionError
from repro.uml.activity import ActivityGraph, ActivityNode

__all__ = ["validate_for_extraction"]


def validate_for_extraction(graph: ActivityGraph) -> list[str]:
    """Return a list of problems; empty means the diagram is extractable.

    Raises nothing itself — the extractor wraps non-empty results in an
    :class:`ExtractionError`."""
    problems: list[str] = []

    initials = graph.nodes_of_kind("initial")
    if len(initials) != 1:
        problems.append(
            f"diagram {graph.name!r} has {len(initials)} initial nodes; expected exactly 1"
        )

    uses_mobility = bool(graph.move_actions()) or any(
        n.atloc is not None for n in graph.nodes.values()
    )

    for obj in graph.objects():
        try:
            obj.object_parts()
        except Exception as exc:
            problems.append(str(exc))
            continue
        if uses_mobility and obj.atloc is None:
            problems.append(
                f"object box {obj.name!r} lacks an atloc tag but the diagram "
                "uses mobility"
            )

    for action in graph.actions():
        control_out = graph.control_successors(action)
        non_final = [n for n in control_out if n.kind != "final"]
        if len(non_final) > 2:
            problems.append(
                f"action {action.name!r} has {len(non_final)} control successors; "
                "only sequencing and binary choice are supported"
            )
        if action.is_move:
            n_in = len(graph.inputs_of(action))
            n_out = len(graph.outputs_of(action))
            if n_in != n_out:
                problems.append(
                    f"<<move>> action {action.name!r} has {n_in} input but "
                    f"{n_out} output object flows; moves must be balanced"
                )
            if n_in == 0:
                problems.append(
                    f"<<move>> action {action.name!r} moves no object; attach "
                    "object flows"
                )

    for decision in graph.nodes_of_kind("decision"):
        out = graph.control_successors(decision)
        if len(out) < 2:
            problems.append(
                f"decision node {decision.xmi_id!r} has {len(out)} outgoing "
                "transitions; a choice needs at least 2"
            )

    for fork in graph.nodes_of_kind("fork"):
        out = graph.control_successors(fork)
        if len(out) < 2:
            problems.append(
                f"fork node {fork.xmi_id!r} has {len(out)} outgoing "
                "transitions; a fork needs at least 2 branches"
            )
    for join in graph.nodes_of_kind("join"):
        incoming = graph.control_predecessors(join)
        outgoing = graph.control_successors(join)
        if len(incoming) < 2:
            problems.append(
                f"join node {join.xmi_id!r} has {len(incoming)} incoming "
                "transitions; a join synchronises at least 2 branches"
            )
        if len(outgoing) > 1:
            problems.append(
                f"join node {join.xmi_id!r} has {len(outgoing)} outgoing "
                "transitions; at most 1 is supported"
            )

    for edge in graph.edges:
        src = graph.nodes[edge.source]
        tgt = graph.nodes[edge.target]
        if src.kind == "object" and tgt.kind == "object":
            problems.append(
                f"object boxes {src.name!r} and {tgt.name!r} are connected "
                "directly; object flow must pass through an activity"
            )
        if src.kind == "final":
            problems.append(f"final node {src.xmi_id!r} has an outgoing transition")

    _check_variant_monotonicity(graph, problems)
    return problems


def _check_variant_monotonicity(graph: ActivityGraph, problems: list[str]) -> None:
    for action in graph.actions():
        for src in graph.inputs_of(action):
            for dst in graph.outputs_of(action):
                try:
                    s_obj, s_stars, s_cls = src.object_parts()
                    d_obj, d_stars, d_cls = dst.object_parts()
                except Exception:
                    continue  # malformed names reported elsewhere
                if src.atloc != dst.atloc:
                    # variants restart after a move to a new location
                    # (Figure 2: f*** at p1 becomes f at p2)
                    continue
                if s_obj == d_obj and s_cls == d_cls and d_stars < s_stars:
                    problems.append(
                        f"activity {action.name!r}: object {s_obj!r} flows from "
                        f"variant {'*' * s_stars or '(none)'} back to "
                        f"{'*' * d_stars or '(none)'}; variants must not decrease"
                    )
