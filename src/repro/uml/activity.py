"""UML activity graphs with the Baumeister et al. mobility notation.

An activity graph contains:

* **action states** — the activities; a location-changing activity
  carries the ``<<move>>`` stereotype (Figure 2's ``transmit``,
  Figure 5's ``handover``);
* **object flow states** — object boxes such as ``f*: FILE``, each
  tagged ``atloc = <location>``; the star suffixes distinguish the
  object's successive states;
* **pseudostates** — the initial marker and decision diamonds;
* **final states**;
* **transitions** — control flow (action → action/decision/final) and
  object flow (action ↔ object box) alike, exactly as UML draws them.

The builder API is used by the workload generators; the XMI layer
round-trips the same structure.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.exceptions import UmlModelError
from repro.uml.model import STEREOTYPE_MOVE, TAG_ATLOC, TAG_RATE, UmlElement

__all__ = ["ActivityNode", "ActivityEdge", "ActivityGraph", "NODE_KINDS"]

NODE_KINDS = ("initial", "action", "decision", "final", "object", "fork", "join")

_OBJECT_NAME_RE = re.compile(r"^\s*(?P<obj>[A-Za-z_][\w]*)(?P<stars>\**)\s*:\s*(?P<cls>[A-Za-z_][\w]*)\s*$")


@dataclass
class ActivityNode(UmlElement):
    """A node of the graph; ``kind`` is one of :data:`NODE_KINDS`."""

    kind: str = "action"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.kind not in NODE_KINDS:
            raise UmlModelError(f"unknown activity node kind {self.kind!r}")

    # -- object-box helpers -------------------------------------------
    def object_parts(self) -> tuple[str, int, str]:
        """For an object node named like ``f**: FILE``: the object name,
        the star count (state variant) and the class name."""
        if self.kind != "object":
            raise UmlModelError(f"{self.name!r} is not an object node")
        m = _OBJECT_NAME_RE.match(self.name)
        if not m:
            raise UmlModelError(
                f"object node name {self.name!r} is not of the form 'obj: Class'"
            )
        return m.group("obj"), len(m.group("stars")), m.group("cls")

    @property
    def object_name(self) -> str:
        return self.object_parts()[0]

    @property
    def class_name(self) -> str:
        return self.object_parts()[2]


@dataclass
class ActivityEdge(UmlElement):
    """A transition between two nodes (by ``xmi.id``)."""

    source: str = ""
    target: str = ""
    guard: str | None = None


class ActivityGraph:
    """A mutable activity-diagram builder plus query helpers."""

    def __init__(self, name: str, *, xmi_id: str | None = None):
        self.name = name
        # the generated-id scheme is reused when no explicit id is given
        self.xmi_id = xmi_id or ActivityNode(name=name).xmi_id
        self.nodes: dict[str, ActivityNode] = {}
        self.edges: list[ActivityEdge] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _add(self, node: ActivityNode) -> ActivityNode:
        if node.xmi_id in self.nodes:
            raise UmlModelError(f"node id {node.xmi_id!r} already present")
        self.nodes[node.xmi_id] = node
        return node

    def add_initial(self, name: str = "Initial_State_1", *,
                    xmi_id: str | None = None) -> ActivityNode:
        """Add the initial pseudostate node."""
        return self._add(ActivityNode(name=name, kind="initial", xmi_id=xmi_id or ""))

    def add_action(self, name: str, *, move: bool = False, rate: float | None = None,
                   xmi_id: str | None = None) -> ActivityNode:
        """Add an action state, optionally <<move>>-stereotyped and rate-tagged.

        An explicit ``xmi_id`` pins the element id — byte-identical XMI
        across processes needs ids independent of the global counter.
        """
        node = ActivityNode(name=name, kind="action", xmi_id=xmi_id or "")
        if move:
            node.add_stereotype(STEREOTYPE_MOVE)
        if rate is not None:
            node.set_tag(TAG_RATE, str(rate))
        return self._add(node)

    def add_decision(self, name: str = "", *, xmi_id: str | None = None) -> ActivityNode:
        """Add a decision diamond (choice pseudostate)."""
        return self._add(ActivityNode(name=name, kind="decision", xmi_id=xmi_id or ""))

    def add_fork(self, name: str = "", *, xmi_id: str | None = None) -> ActivityNode:
        """A fork bar: control splits into concurrent branches.  Listed
        as future work in the paper's Section 6; supported by our
        extractor under the restrictions documented in
        :mod:`repro.extract.activity2pepanet`."""
        return self._add(ActivityNode(name=name, kind="fork", xmi_id=xmi_id or ""))

    def add_join(self, name: str = "", *, xmi_id: str | None = None) -> ActivityNode:
        """A join bar: concurrent branches synchronise."""
        return self._add(ActivityNode(name=name, kind="join", xmi_id=xmi_id or ""))

    def add_final(self, name: str = "", *, xmi_id: str | None = None) -> ActivityNode:
        """Add a final state node."""
        return self._add(ActivityNode(name=name, kind="final", xmi_id=xmi_id or ""))

    def add_object(self, name: str, *, atloc: str | None = None,
                   xmi_id: str | None = None) -> ActivityNode:
        """Add an object box named 'obj: Class', optionally with an atloc tag."""
        node = ActivityNode(name=name, kind="object", xmi_id=xmi_id or "")
        if atloc is not None:
            node.set_tag(TAG_ATLOC, atloc)
        node.object_parts()  # validate the name shape eagerly
        return self._add(node)

    def connect(self, source: ActivityNode | str, target: ActivityNode | str,
                *, guard: str | None = None,
                xmi_id: str | None = None) -> ActivityEdge:
        """Add a transition between two nodes (ids are validated)."""
        src = source.xmi_id if isinstance(source, ActivityNode) else source
        tgt = target.xmi_id if isinstance(target, ActivityNode) else target
        for ref in (src, tgt):
            if ref not in self.nodes:
                raise UmlModelError(f"edge endpoint {ref!r} is not a node of {self.name!r}")
        edge = ActivityEdge(source=src, target=tgt, guard=guard, xmi_id=xmi_id or "")
        self.edges.append(edge)
        return edge

    # ------------------------------------------------------------------
    # Queries (what the extractor needs)
    # ------------------------------------------------------------------
    def node(self, xmi_id: str) -> ActivityNode:
        """Look up a node by xmi.id; raises when absent."""
        try:
            return self.nodes[xmi_id]
        except KeyError:
            raise UmlModelError(f"no node {xmi_id!r} in {self.name!r}") from None

    def nodes_of_kind(self, kind: str) -> list[ActivityNode]:
        """All nodes of one kind, in insertion order."""
        return [n for n in self.nodes.values() if n.kind == kind]

    def actions(self) -> list[ActivityNode]:
        """All action states, in insertion order."""
        return self.nodes_of_kind("action")

    def objects(self) -> list[ActivityNode]:
        """All object boxes, in insertion order."""
        return self.nodes_of_kind("object")

    def action_by_name(self, name: str) -> ActivityNode:
        """The first action state with the given name; raises when absent."""
        for n in self.actions():
            if n.name == name:
                return n
        raise UmlModelError(f"no action named {name!r} in {self.name!r}")

    def successors(self, node: ActivityNode | str) -> list[ActivityNode]:
        """Target nodes of the edges leaving a node."""
        ref = node.xmi_id if isinstance(node, ActivityNode) else node
        return [self.nodes[e.target] for e in self.edges if e.source == ref]

    def predecessors(self, node: ActivityNode | str) -> list[ActivityNode]:
        """Source nodes of the edges entering a node."""
        ref = node.xmi_id if isinstance(node, ActivityNode) else node
        return [self.nodes[e.source] for e in self.edges if e.target == ref]

    def inputs_of(self, action: ActivityNode) -> list[ActivityNode]:
        """Object boxes flowing *into* an action."""
        return [n for n in self.predecessors(action) if n.kind == "object"]

    def outputs_of(self, action: ActivityNode) -> list[ActivityNode]:
        """Object boxes flowing *out of* an action."""
        return [n for n in self.successors(action) if n.kind == "object"]

    def control_successors(self, node: ActivityNode) -> list[ActivityNode]:
        """Successors that are not object boxes (control flow only)."""
        return [n for n in self.successors(node) if n.kind != "object"]

    def control_predecessors(self, node: ActivityNode) -> list[ActivityNode]:
        """Predecessors that are not object boxes."""
        return [n for n in self.predecessors(node) if n.kind != "object"]

    def initial_node(self) -> ActivityNode:
        """The unique initial node; raises when missing or duplicated."""
        initials = self.nodes_of_kind("initial")
        if len(initials) != 1:
            raise UmlModelError(
                f"activity graph {self.name!r} has {len(initials)} initial nodes; "
                "exactly one is required"
            )
        return initials[0]

    def move_actions(self) -> list[ActivityNode]:
        """All <<move>>-stereotyped action states."""
        return [n for n in self.actions() if n.is_move]

    def locations(self) -> list[str]:
        """All distinct ``atloc`` values, in first-appearance order —
        these become the places of the extracted PEPA net."""
        seen: list[str] = []
        for node in self.nodes.values():
            loc = node.atloc
            if loc is not None and loc not in seen:
                seen.append(loc)
        return seen

    def all_elements(self) -> list[UmlElement]:
        """Every node and edge, for id lookups and annotation sweeps."""
        out: list[UmlElement] = list(self.nodes.values())
        out.extend(self.edges)
        return out
