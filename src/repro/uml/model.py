"""Core UML model elements (paper substrate S5).

A deliberately small UML 1.4-flavoured metamodel covering exactly what
the paper's tool chain consumes: models owning activity graphs and
state machines, elements carrying stereotypes (``<<move>>``) and tagged
values (``atloc = ...``, and the reflected ``throughput`` /
``steadyStateProbability`` results).

Crucially — and this is the paper's headline interoperability claim —
mobility is expressed with *standard* UML extension mechanisms only
(stereotypes and tagged values), so models remain processable by
unmodified UML tools.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.exceptions import UmlModelError

__all__ = [
    "STEREOTYPE_MOVE",
    "TAG_ATLOC",
    "TAG_RATE",
    "TAG_THROUGHPUT",
    "TAG_PROBABILITY",
    "UmlElement",
    "UmlModel",
]

#: The Baumeister et al. stereotype marking a location-changing activity.
STEREOTYPE_MOVE = "move"
#: The tagged value recording an object's current location.
TAG_ATLOC = "atloc"
#: Optional modeller-supplied rate annotation on activities/transitions.
TAG_RATE = "rate"
#: Reflected result: steady-state throughput of an activity.
TAG_THROUGHPUT = "throughput"
#: Reflected result: steady-state probability of a state.
TAG_PROBABILITY = "steadyStateProbability"


_id_counter = itertools.count(1)


def _fresh_id(prefix: str) -> str:
    return f"{prefix}.{next(_id_counter)}"


@dataclass
class UmlElement:
    """Base class: every element has an ``xmi.id``, an optional name,
    stereotypes and tagged values."""

    name: str = ""
    xmi_id: str = ""
    stereotypes: set[str] = field(default_factory=set)
    tagged_values: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.xmi_id:
            self.xmi_id = _fresh_id(type(self).__name__)

    # ------------------------------------------------------------------
    def has_stereotype(self, name: str) -> bool:
        """True when the element carries the stereotype."""
        return name in self.stereotypes

    def add_stereotype(self, name: str) -> "UmlElement":
        """Attach a stereotype; returns self for chaining."""
        self.stereotypes.add(name)
        return self

    def tag(self, key: str) -> str | None:
        """The value of a tagged value, or None."""
        return self.tagged_values.get(key)

    def set_tag(self, key: str, value: str) -> "UmlElement":
        """Set a tagged value (stringified); returns self for chaining."""
        self.tagged_values[key] = str(value)
        return self

    @property
    def is_move(self) -> bool:
        return self.has_stereotype(STEREOTYPE_MOVE)

    @property
    def atloc(self) -> str | None:
        return self.tag(TAG_ATLOC)


@dataclass
class UmlModel(UmlElement):
    """A UML model: a named container of diagrams.

    ``activity_graphs`` and ``state_machines`` are the two diagram kinds
    Choreographer analyses (Sections 3 and 5 of the paper).
    """

    activity_graphs: list = field(default_factory=list)
    state_machines: list = field(default_factory=list)

    def add_activity_graph(self, graph) -> None:
        """Attach an activity graph; duplicate names are rejected."""
        if any(g.name == graph.name for g in self.activity_graphs):
            raise UmlModelError(f"activity graph {graph.name!r} already in model")
        self.activity_graphs.append(graph)

    def add_state_machine(self, machine) -> None:
        """Attach a state machine; duplicate names are rejected."""
        if any(m.name == machine.name for m in self.state_machines):
            raise UmlModelError(f"state machine {machine.name!r} already in model")
        self.state_machines.append(machine)

    def activity_graph(self, name: str):
        """Look up an activity graph by name; raises when absent."""
        for g in self.activity_graphs:
            if g.name == name:
                return g
        raise UmlModelError(f"no activity graph named {name!r}")

    def state_machine(self, name: str):
        """Look up a state machine by name; raises when absent."""
        for m in self.state_machines:
            if m.name == name:
                return m
        raise UmlModelError(f"no state machine named {name!r}")

    def all_elements(self) -> list[UmlElement]:
        """Every element of the model, diagrams included."""
        out: list[UmlElement] = [self]
        for g in self.activity_graphs:
            out.extend(g.all_elements())
        for m in self.state_machines:
            out.extend(m.all_elements())
        return out

    def element_by_id(self, xmi_id: str) -> UmlElement:
        """Look up any element by xmi.id; raises when absent."""
        for el in self.all_elements():
            if el.xmi_id == xmi_id:
                return el
        raise UmlModelError(f"no element with xmi.id {xmi_id!r}")
