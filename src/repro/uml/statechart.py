"""UML state diagrams (Harel statechart variant, paper Figures 8/9).

A state machine records the behaviour of one class: simple states in
rounded boxes, transitions labelled by the activity that causes them,
each with an (optional, tool-supplied) exponential rate.  The
Choreographer maps state machines to PEPA sequential components and
reflects steady-state probabilities back onto the states.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import UmlModelError
from repro.uml.model import TAG_RATE, UmlElement

__all__ = ["State", "StateTransition", "StateMachine"]


@dataclass
class State(UmlElement):
    """A state: ``kind`` is ``"initial"`` (pseudostate) or ``"simple"``."""

    kind: str = "simple"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.kind not in ("initial", "simple"):
            raise UmlModelError(f"unknown state kind {self.kind!r}")


@dataclass
class StateTransition(UmlElement):
    """A transition labelled by its triggering activity.

    The ``rate`` tagged value (if present) carries the exponential rate
    estimate; the paper notes "A rate (not shown) is associated with
    every activity".
    """

    source: str = ""
    target: str = ""
    trigger: str = ""

    @property
    def rate(self) -> float | None:
        raw = self.tag(TAG_RATE)
        return float(raw) if raw is not None else None


class StateMachine:
    """A state diagram for one class."""

    def __init__(self, name: str, context_class: str = ""):
        self.name = name
        self.context_class = context_class or name
        self.xmi_id = State(name=name).xmi_id
        self.states: dict[str, State] = {}
        self.transitions: list[StateTransition] = []

    # ------------------------------------------------------------------
    def add_initial(self, name: str = "Initial_State") -> State:
        """Add the initial pseudostate."""
        state = State(name=name, kind="initial")
        self.states[state.xmi_id] = state
        return state

    def add_state(self, name: str) -> State:
        """Add a simple state; duplicate names are rejected."""
        if any(s.name == name for s in self.states.values()):
            raise UmlModelError(f"state {name!r} already in {self.name!r}")
        state = State(name=name, kind="simple")
        self.states[state.xmi_id] = state
        return state

    def add_transition(
        self,
        source: State | str,
        target: State | str,
        trigger: str,
        *,
        rate: float | None = None,
    ) -> StateTransition:
        """Add a trigger-labelled transition, optionally rate-tagged."""
        src = source.xmi_id if isinstance(source, State) else source
        tgt = target.xmi_id if isinstance(target, State) else target
        for ref in (src, tgt):
            if ref not in self.states:
                raise UmlModelError(f"transition endpoint {ref!r} is not a state")
        tr = StateTransition(source=src, target=tgt, trigger=trigger)
        if rate is not None:
            tr.set_tag(TAG_RATE, str(rate))
        self.transitions.append(tr)
        return tr

    # ------------------------------------------------------------------
    def state(self, xmi_id: str) -> State:
        """Look up a state by xmi.id; raises when absent."""
        try:
            return self.states[xmi_id]
        except KeyError:
            raise UmlModelError(f"no state {xmi_id!r} in {self.name!r}") from None

    def state_by_name(self, name: str) -> State:
        """Look up a state by name; raises when absent."""
        for s in self.states.values():
            if s.name == name:
                return s
        raise UmlModelError(f"no state named {name!r} in {self.name!r}")

    def simple_states(self) -> list[State]:
        """All simple (non-pseudo) states, in insertion order."""
        return [s for s in self.states.values() if s.kind == "simple"]

    def initial_state(self) -> State:
        """The unique initial pseudostate; raises otherwise."""
        initials = [s for s in self.states.values() if s.kind == "initial"]
        if len(initials) != 1:
            raise UmlModelError(
                f"state machine {self.name!r} has {len(initials)} initial "
                "pseudostates; exactly one is required"
            )
        return initials[0]

    def outgoing(self, state: State | str) -> list[StateTransition]:
        """The transitions leaving a state."""
        ref = state.xmi_id if isinstance(state, State) else state
        return [t for t in self.transitions if t.source == ref]

    def start_state(self) -> State:
        """The simple state the initial pseudostate points at."""
        initial = self.initial_state()
        targets = self.outgoing(initial)
        if len(targets) != 1:
            raise UmlModelError(
                f"the initial pseudostate of {self.name!r} must have exactly "
                f"one outgoing transition, found {len(targets)}"
            )
        return self.state(targets[0].target)

    def triggers(self) -> list[str]:
        """Distinct trigger names in first-appearance order."""
        seen: list[str] = []
        for t in self.transitions:
            if t.trigger and t.trigger not in seen:
                seen.append(t.trigger)
        return seen

    def all_elements(self) -> list[UmlElement]:
        """Every state and transition, for id lookups."""
        out: list[UmlElement] = list(self.states.values())
        out.extend(self.transitions)
        return out
