"""Stochastic simulation of PEPA/PEPA-net models (substrate S10)."""

from repro.sim.estimators import (
    Estimate,
    estimate_probability,
    estimate_throughput,
    estimate_transient_probability,
    replicate,
)
from repro.sim.ssa import (
    SimulationResult,
    net_transition_fn,
    pepa_transition_fn,
    simulate,
    simulate_net,
    simulate_pepa,
)

__all__ = [
    "simulate",
    "simulate_pepa",
    "simulate_net",
    "pepa_transition_fn",
    "net_transition_fn",
    "SimulationResult",
    "replicate",
    "Estimate",
    "estimate_throughput",
    "estimate_probability",
    "estimate_transient_probability",
]
