"""Stochastic simulation (Gillespie SSA) of PEPA models and PEPA nets.

The paper positions simulation as the complementary analysis route
("approximate solutions require the calculation of confidence
intervals, but large state-space size is tolerated" — §1.1, discussing
UML-Ψ).  This engine executes the *same* operational semantics the
numerical route uses — it draws successor states from
:func:`repro.pepa.semantics.derivatives` / :func:`repro.pepanets.semantics.net_arcs`
— so agreement between the two routes is a genuine end-to-end check of
the whole stack, which the benchmark suite performs.

States are visited lazily, so models far beyond the numerical
state-space bound still simulate in bounded memory (transition lists
are memoised per visited state only).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable

import numpy as np

from repro.exceptions import SimulationError
from repro.pepa.environment import PepaModel
from repro.pepa.semantics import derivatives
from repro.pepanets.firing import DerivativeSets
from repro.pepanets.semantics import net_arcs
from repro.pepanets.syntax import PepaNet

__all__ = [
    "TransitionFn",
    "SimulationResult",
    "simulate",
    "pepa_transition_fn",
    "net_transition_fn",
    "simulate_pepa",
    "simulate_net",
]

#: A transition function: state → list of (action, rate, successor).
TransitionFn = Callable[[Hashable], list[tuple[str, float, Hashable]]]


@dataclass
class SimulationResult:
    """Counts and time-weighted occupancies from one trajectory."""

    t_end: float
    action_counts: dict[str, int] = field(default_factory=dict)
    #: state → total time spent there (only states actually visited)
    residence: dict[Hashable, float] = field(default_factory=dict)
    #: snapshot time → the state occupied then (when requested)
    snapshots: dict[float, Hashable] = field(default_factory=dict)
    n_events: int = 0
    deadlocked: bool = False

    def throughput(self, action: str) -> float:
        """Completions per time unit over the horizon."""
        return self.action_counts.get(action, 0) / self.t_end

    def probability(self, predicate: Callable[[Hashable], bool]) -> float:
        """Fraction of time spent in states satisfying ``predicate``."""
        total = sum(t for s, t in self.residence.items() if predicate(s))
        return total / self.t_end


def simulate(
    transitions: TransitionFn,
    initial: Hashable,
    t_end: float,
    *,
    seed: int | np.random.Generator = 0,
    warmup: float = 0.0,
    max_events: int = 50_000_000,
    snapshot_times: list[float] | None = None,
) -> SimulationResult:
    """One Gillespie trajectory over ``[0, t_end]`` (after ``warmup``).

    A deadlocked state ends the trajectory early (remaining time is
    attributed to the deadlock state and ``deadlocked`` is set).
    ``snapshot_times`` (measured from the end of warmup) record the
    state occupied at those instants — the raw material for estimating
    transient distributions across replications.
    """
    if t_end <= 0:
        raise SimulationError("t_end must be positive")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    cache: dict[Hashable, list[tuple[str, float, Hashable]]] = {}
    pending_snapshots = sorted(snapshot_times or [])
    if pending_snapshots and (pending_snapshots[0] < 0 or pending_snapshots[-1] > t_end):
        raise SimulationError("snapshot times must lie within [0, t_end]")

    state = initial
    now = -warmup
    result = SimulationResult(t_end=t_end)

    def take_snapshots(upto: float) -> None:
        while pending_snapshots and pending_snapshots[0] <= upto:
            result.snapshots[pending_snapshots.pop(0)] = state

    while now < t_end:
        outgoing = cache.get(state)
        if outgoing is None:
            outgoing = transitions(state)
            for _, rate, _ in outgoing:
                if rate <= 0:
                    raise SimulationError(f"non-positive rate in state {state!r}")
            cache[state] = outgoing
        if not outgoing:
            if now < t_end:
                dwell = t_end - max(now, 0.0)
                if dwell > 0:
                    result.residence[state] = result.residence.get(state, 0.0) + dwell
            take_snapshots(t_end)
            result.deadlocked = True
            return result
        rates = np.fromiter((r for _, r, _ in outgoing), dtype=float, count=len(outgoing))
        total = rates.sum()
        dwell = rng.exponential(1.0 / total)
        segment_start = max(now, 0.0)
        segment_end = min(now + dwell, t_end)
        if segment_end > segment_start:
            result.residence[state] = (
                result.residence.get(state, 0.0) + (segment_end - segment_start)
            )
        take_snapshots(min(now + dwell, t_end))
        now += dwell
        if now >= t_end:
            break
        choice = rng.choice(len(outgoing), p=rates / total)
        action, _, successor = outgoing[choice]
        if now >= 0.0:
            result.action_counts[action] = result.action_counts.get(action, 0) + 1
            result.n_events += 1
            if result.n_events >= max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events before t_end; "
                    "lower t_end or raise max_events"
                )
        state = successor
    return result


# ----------------------------------------------------------------------
# Adapters
# ----------------------------------------------------------------------
def pepa_transition_fn(model: PepaModel) -> TransitionFn:
    """Lazy transition function over a PEPA model's derivatives."""
    env = model.environment

    def fn(state):
        out = []
        for tr in derivatives(state, env):
            if tr.rate.is_passive():
                raise SimulationError(
                    f"passive activity ({tr.action}) at the top level of {state}"
                )
            out.append((tr.action, tr.rate.value, tr.target))
        return out

    return fn


def net_transition_fn(net: PepaNet) -> TransitionFn:
    """Lazy transition function over a PEPA net's markings."""
    ds = DerivativeSets(net.environment)

    def fn(marking):
        return net_arcs(net, marking, ds)

    return fn


def simulate_pepa(model: PepaModel, t_end: float, **kwargs) -> SimulationResult:
    """Simulate a PEPA model from its system equation."""
    return simulate(pepa_transition_fn(model), model.system, t_end, **kwargs)


def simulate_net(net: PepaNet, t_end: float, **kwargs) -> SimulationResult:
    """Simulate a PEPA net from its initial marking."""
    return simulate(net_transition_fn(net), net.initial_marking(), t_end, **kwargs)
