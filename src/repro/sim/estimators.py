"""Replication-based estimators with confidence intervals.

"Approximate solutions require the calculation of confidence
intervals" — these helpers run independent replications (distinct
seeds) of an SSA experiment and report mean, half-width and interval
at the requested confidence level, using the Student-t quantile from
scipy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable

import numpy as np
from scipy import stats

from repro.exceptions import SimulationError
from repro.sim.ssa import SimulationResult, TransitionFn, simulate

__all__ = ["Estimate", "replicate", "estimate_throughput", "estimate_probability"]


@dataclass(frozen=True)
class Estimate:
    """A replicated point estimate with its confidence interval."""

    mean: float
    half_width: float
    confidence: float
    n_replications: int

    @property
    def interval(self) -> tuple[float, float]:
        return (self.mean - self.half_width, self.mean + self.half_width)

    def covers(self, value: float) -> bool:
        """True when the confidence interval contains the value."""
        low, high = self.interval
        return low <= value <= high

    def __str__(self) -> str:
        return (
            f"{self.mean:.6g} ± {self.half_width:.3g} "
            f"({self.confidence:.0%}, n={self.n_replications})"
        )


def replicate(
    transitions: TransitionFn,
    initial: Hashable,
    t_end: float,
    *,
    n_replications: int = 10,
    warmup: float = 0.0,
    base_seed: int = 0,
    snapshot_times: list[float] | None = None,
) -> list[SimulationResult]:
    """Run independent replications with distinct, reproducible seeds."""
    if n_replications < 2:
        raise SimulationError("need at least 2 replications for an interval")
    seeds = np.random.SeedSequence(base_seed).spawn(n_replications)
    return [
        simulate(transitions, initial, t_end,
                 seed=np.random.default_rng(s), warmup=warmup,
                 snapshot_times=list(snapshot_times) if snapshot_times else None)
        for s in seeds
    ]


def _interval(samples: np.ndarray, confidence: float) -> Estimate:
    n = len(samples)
    mean = float(samples.mean())
    if n < 2:
        raise SimulationError("need at least 2 samples")
    sem = float(samples.std(ddof=1)) / np.sqrt(n)
    t_quantile = float(stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return Estimate(mean, t_quantile * sem, confidence, n)


def estimate_throughput(
    results: list[SimulationResult], action: str, *, confidence: float = 0.95
) -> Estimate:
    """Replication-mean throughput of one action, with a t-interval."""
    samples = np.array([r.throughput(action) for r in results])
    return _interval(samples, confidence)


def estimate_probability(
    results: list[SimulationResult],
    predicate: Callable[[Hashable], bool],
    *,
    confidence: float = 0.95,
) -> Estimate:
    """Replication-mean time-fraction in matching states, with a t-interval."""
    samples = np.array([r.probability(predicate) for r in results])
    return _interval(samples, confidence)


def estimate_transient_probability(
    results: list[SimulationResult],
    time: float,
    predicate: Callable[[Hashable], bool],
    *,
    confidence: float = 0.95,
) -> Estimate:
    """``P[predicate(X_t)]`` from per-replication snapshots.

    Every replication must have been run with ``snapshot_times``
    including ``time``; the estimate is the replication mean of the 0/1
    indicator (a Bernoulli proportion with a t-interval).
    """
    samples = []
    for r in results:
        if time not in r.snapshots:
            raise SimulationError(
                f"replication has no snapshot at t={time}; pass "
                "snapshot_times to simulate()"
            )
        samples.append(1.0 if predicate(r.snapshots[time]) else 0.0)
    return _interval(np.array(samples), confidence)
