"""Ready-made workload models: every example in the paper plus the
parameterised families the benchmarks sweep (substrate S11)."""

from repro.workloads.fileactivity import FILE_PEPA_SOURCE, FILE_RATES, build_file_activity_diagram
from repro.workloads.instantmessage import (
    IM_PEPANET_SOURCE,
    IM_RATES,
    build_instant_message_diagram,
)
from repro.workloads.meeting import MEETING_RATES, build_meeting_diagram
from repro.workloads.pda import PDA_ACTIVITIES, PDA_RATES, build_pda_activity_diagram
from repro.workloads.scaling import (
    client_server_model,
    courier_ring_net,
    roaming_fleet_net,
    symmetric_branches_model,
    tandem_queue_model,
)
from repro.workloads.webserver import (
    CLIENT_STATES,
    SERVER_STATES,
    TOMCAT_RATES,
    build_client_statechart,
    build_server_statechart,
    build_web_model,
)

__all__ = [
    "build_file_activity_diagram",
    "FILE_RATES",
    "FILE_PEPA_SOURCE",
    "build_instant_message_diagram",
    "IM_RATES",
    "IM_PEPANET_SOURCE",
    "build_pda_activity_diagram",
    "PDA_RATES",
    "PDA_ACTIVITIES",
    "build_meeting_diagram",
    "MEETING_RATES",
    "build_client_statechart",
    "build_server_statechart",
    "build_web_model",
    "TOMCAT_RATES",
    "CLIENT_STATES",
    "SERVER_STATES",
    "client_server_model",
    "courier_ring_net",
    "roaming_fleet_net",
    "symmetric_branches_model",
    "tandem_queue_model",
]
