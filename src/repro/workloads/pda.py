"""Figure 5 workload: the PDA user on a moving train.

A PDA downloads dynamically-generated pages over a connection to a
stationary transmitter.  As the train moves the signal weakens, other
transmitters are searched for, and the connection is handed over — a
``<<move>>`` activity from ``transmitter_1`` to ``transmitter_2``.  The
handover must happen but is not certain to succeed: with equal
probability the download continues or is aborted (the paper sets the
two outcomes equiprobable).

The session object ``s: SESSION`` flows through every activity, so the
extracted PEPA net has two places (the transmitters), one ``handover``
net transition, and — because throughput is a steady-state measure — a
synthetic ``reset_s`` firing that starts the next handover cycle (the
train keeps moving, so transmitter_2 plays the role of transmitter_1
for the following cell).
"""

from __future__ import annotations

from repro.uml.activity import ActivityGraph

__all__ = ["PDA_RATES", "build_pda_activity_diagram", "PDA_ACTIVITIES"]

#: Synthetic rates (events/second) for the PDA scenario: downloading a
#: file takes ~2 s, noticing a weak signal ~0.2 s, scanning ~0.5 s, the
#: handover ~1 s; the post-handover bookkeeping is fast.  ``reset_s``
#: paces how soon the next cell boundary arrives.
PDA_RATES: dict[str, float] = {
    "download_file": 0.5,
    "detect_weak_signal": 5.0,
    "search_for_other_transmitters": 2.0,
    "handover": 1.0,
    "abort_download": 4.0,
    "continue_download": 4.0,
    "reset_s": 1.0,
}

#: The activity names of Figure 5, in diagram order.
PDA_ACTIVITIES = (
    "download file",
    "detect weak signal",
    "search for other transmitters",
    "handover",
    "abort download",
    "continue download",
)


def build_pda_activity_diagram() -> ActivityGraph:
    """The diagram of Figure 5."""
    g = ActivityGraph("pda-handover")
    init = g.add_initial("Initial_State_1")
    download = g.add_action("download file")
    detect = g.add_action("detect weak signal")
    search = g.add_action("search for other transmitters")
    handover = g.add_action("handover", move=True)
    abort = g.add_action("abort download")
    cont = g.add_action("continue download")

    g.connect(init, download)
    g.connect(download, detect)
    g.connect(detect, search)
    g.connect(search, handover)
    # two possible outcomes, equally likely (equal rates below)
    g.connect(handover, abort)
    g.connect(handover, cont)

    s0 = g.add_object("s: SESSION", atloc="transmitter_1")
    s1 = g.add_object("s*: SESSION", atloc="transmitter_1")
    s2 = g.add_object("s**: SESSION", atloc="transmitter_1")
    s3 = g.add_object("s***: SESSION", atloc="transmitter_1")
    g.connect(s0, download)
    g.connect(download, s1)
    g.connect(s1, detect)
    g.connect(detect, s2)
    g.connect(s2, search)
    g.connect(search, s3)
    g.connect(s3, handover)

    t0 = g.add_object("s: SESSION", atloc="transmitter_2")
    g.connect(handover, t0)
    g.connect(t0, abort)
    g.connect(t0, cont)
    ta = g.add_object("s*: SESSION", atloc="transmitter_2")
    tc = g.add_object("s**: SESSION", atloc="transmitter_2")
    g.connect(abort, ta)
    g.connect(cont, tc)
    return g
