"""Parameterised model families for the scaling/ablation benchmarks.

The paper names state-space explosion as the cost of exact numerical
solution; these families let the benchmarks measure exactly that —
state-space growth, per-solver scaling, and the payoff of exact
lumping on symmetric nets.
"""

from __future__ import annotations

from repro.exceptions import WellFormednessError
from repro.pepa.environment import Environment, PepaModel
from repro.pepa.parser import parse_model
from repro.pepa.rates import ActiveRate, PassiveRate
from repro.pepa.syntax import Cell, Const, Cooperation, Expression, Prefix
from repro.pepanets.syntax import NetTransitionSpec, PepaNet, PlaceDef

__all__ = [
    "client_server_model",
    "courier_ring_net",
    "roaming_fleet_net",
    "symmetric_branches_model",
    "tandem_queue_model",
]


def client_server_model(n_clients: int, *, think_rate: float = 1.0,
                        request_rate: float = 2.0,
                        serve_rate: float = 5.0) -> PepaModel:
    """``n`` clients sharing one single-request server.

    Each client thinks *independently* (a local ``think`` stage) before
    requesting, so client phases interleave freely and the state space
    grows as ``2^(n-1)·(n+2)`` — the explosion the paper warns about.
    """
    if n_clients < 1:
        raise WellFormednessError("need at least one client")
    env = Environment()
    env.define("Think", Prefix("think", ActiveRate(think_rate), Const("Ready")))
    env.define("Ready", Prefix("request", ActiveRate(request_rate), Const("Wait")))
    env.define("Wait", Prefix("response", PassiveRate(), Const("Think")))
    env.define("Idle", Prefix("request", PassiveRate(), Const("Serve")))
    env.define("Serve", Prefix("response", ActiveRate(serve_rate), Const("Idle")))
    clients: Expression = Const("Think")
    for _ in range(n_clients - 1):
        clients = Cooperation(clients, Const("Think"), frozenset())
    system = Cooperation(clients, Const("Idle"), frozenset({"request", "response"}))
    return PepaModel(env, system)


def courier_ring_net(n_places: int, n_couriers: int = 1, *, hop_rate: float = 2.0) -> PepaNet:
    """``n_couriers`` identical tokens hopping around ``n_places``
    locations: marking count grows combinatorially in both parameters.

    Every place carries ``n_couriers`` cells so any token distribution
    is representable.
    """
    if n_places < 2:
        raise WellFormednessError("a ring needs at least two places")
    if n_couriers < 1:
        raise WellFormednessError("need at least one courier")
    env = Environment()
    env.define("Courier", Prefix("hop", ActiveRate(hop_rate), Const("Courier")))
    net = PepaNet(environment=env)
    for i in range(n_places):
        template: Expression = Cell("Courier", None)
        for _ in range(n_couriers - 1):
            template = Cooperation(template, Cell("Courier", None), frozenset())
        contents = tuple(
            Const("Courier") if (i == 0 and k < n_couriers) else None
            for k in range(n_couriers)
        )
        net.add_place(PlaceDef(f"L{i}", template, contents))
    for i in range(n_places):
        net.add_transition(
            NetTransitionSpec(
                name=f"hop_{i}",
                action="hop",
                rate=ActiveRate(hop_rate),
                inputs=(f"L{i}",),
                outputs=(f"L{(i + 1) % n_places}",),
            )
        )
    return net


def symmetric_branches_model(n_branches: int, *, out_rate: float = 1.0,
                             back_rate: float = 3.0) -> PepaModel:
    """A hub with ``n`` interchangeable branches — fully lumpable, so
    the lumping ablation can demonstrate ``n+1 → 2`` state reduction."""
    if n_branches < 1:
        raise WellFormednessError("need at least one branch")
    lines = [f"Hub = " + " + ".join(
        f"(out{i}, {out_rate}).Branch{i}" for i in range(n_branches)
    ) + ";"]
    for i in range(n_branches):
        lines.append(f"Branch{i} = (back{i}, {back_rate}).Hub;")
    lines.append("Hub")
    return parse_model("\n".join(lines))


def roaming_fleet_net(n_sessions: int, n_transmitters: int, *,
                      download_rate: float = 1.0, handover_rate: float = 0.5) -> PepaNet:
    """A fleet of PDA sessions roaming a ring of transmitters — the
    paper's Figure 5 scenario scaled in both dimensions.

    Each transmitter hosts up to ``n_sessions`` concurrent sessions
    (cells); each session alternates downloading with handing over to
    the next transmitter.  Used by the PEPA-net scaling benchmark.
    """
    if n_sessions < 1 or n_transmitters < 2:
        raise WellFormednessError("need >= 1 session and >= 2 transmitters")
    env = Environment()
    env.define(
        "Session",
        Prefix("download", ActiveRate(download_rate), Const("Roaming")),
    )
    env.define("Roaming", Prefix("handover", ActiveRate(handover_rate), Const("Session")))
    net = PepaNet(environment=env)
    for i in range(n_transmitters):
        template: Expression = Cell("Session", None)
        for _ in range(n_sessions - 1):
            template = Cooperation(template, Cell("Session", None), frozenset())
        contents = tuple(
            Const("Session") if (i == 0) else None for _ in range(n_sessions)
        )
        net.add_place(PlaceDef(f"T{i}", template, contents))
    for i in range(n_transmitters):
        net.add_transition(
            NetTransitionSpec(
                name=f"handover_{i}",
                action="handover",
                rate=ActiveRate(handover_rate),
                inputs=(f"T{i}",),
                outputs=(f"T{(i + 1) % n_transmitters}",),
            )
        )
    return net


def tandem_queue_model(stages: int, capacity: int, *, arrival: float = 1.0,
                       service: float = 2.0) -> PepaModel:
    """A tandem of finite queues expressed in PEPA: stage ``k`` passes
    jobs to stage ``k+1``; each stage is a birth-death component of the
    given capacity.  State count is ``(capacity+1)^stages``."""
    if stages < 1 or capacity < 1:
        raise WellFormednessError("stages and capacity must be >= 1")
    lines: list[str] = []
    for s in range(stages):
        take = f"mv{s}"            # action that fills stage s
        give = f"mv{s + 1}"        # action that drains stage s
        take_rate = str(arrival) if s == 0 else "T"
        for level in range(capacity + 1):
            terms = []
            if level < capacity:
                terms.append(f"({take}, {take_rate}).S{s}_{level + 1}")
            if level > 0:
                terms.append(f"({give}, {service}).S{s}_{level - 1}")
            lines.append(f"S{s}_{level} = " + " + ".join(terms) + ";")
    # sink consumes the final stage's output at full speed
    lines.append(f"Sink = (mv{stages}, T).Sink;")
    system_parts = [f"S{s}_0" for s in range(stages)] + ["Sink"]
    system = system_parts[0]
    for s in range(1, len(system_parts)):
        shared = f"mv{s}"
        system = f"({system}) <{shared}> {system_parts[s]}"
    lines.append(system)
    return parse_model("\n".join(lines))
