"""Figure 2 workload: the instant-message activity diagram with mobility.

The file is first written at location ``p1``, transmitted (a
``<<move>>`` activity) to ``p2``, and read there.  Extraction produces
a two-place PEPA net whose single net-level transition is ``transmit``
— the paper's Section 2.2 net.
"""

from __future__ import annotations

from repro.uml.activity import ActivityGraph

__all__ = ["IM_RATES", "build_instant_message_diagram", "IM_PEPANET_SOURCE"]

#: Rates: composition is slower than transmission; reading is fast.
IM_RATES: dict[str, float] = {
    "openwrite": 2.0,
    "write": 4.0,
    "close": 1.0,
    "transmit": 1.0,
    "openread": 2.0,
    "read": 10.0,
    # the synthetic return firing (recurrence; see extractor docs)
    "reset_f": 1.0,
}


def build_instant_message_diagram() -> ActivityGraph:
    """The diagram of Figure 2."""
    g = ActivityGraph("instant-message")
    init = g.add_initial()
    openwrite = g.add_action("openwrite")
    write = g.add_action("write")
    close_w = g.add_action("close")
    transmit = g.add_action("transmit", move=True)
    openread = g.add_action("openread")
    read = g.add_action("read")
    close_r = g.add_action("close")

    g.connect(init, openwrite)
    g.connect(openwrite, write)
    g.connect(write, close_w)
    g.connect(close_w, transmit)
    g.connect(transmit, openread)
    g.connect(openread, read)
    g.connect(read, close_r)

    # object flow at p1 (stars track the file's successive states)
    f0 = g.add_object("f: FILE", atloc="p1")
    f1 = g.add_object("f*: FILE", atloc="p1")
    f2 = g.add_object("f**: FILE", atloc="p1")
    f3 = g.add_object("f***: FILE", atloc="p1")
    g.connect(f0, openwrite)
    g.connect(openwrite, f1)
    g.connect(f1, write)
    g.connect(write, f2)
    g.connect(f2, close_w)
    g.connect(close_w, f3)
    g.connect(f3, transmit)

    # object flow at p2 (variants restart after the move, as in Figure 2)
    g0 = g.add_object("f: FILE", atloc="p2")
    g1 = g.add_object("f*: FILE", atloc="p2")
    g2 = g.add_object("f**: FILE", atloc="p2")
    g3 = g.add_object("f***: FILE", atloc="p2")
    g.connect(transmit, g0)
    g.connect(g0, openread)
    g.connect(openread, g1)
    g.connect(g1, read)
    g.connect(read, g2)
    g.connect(g2, close_r)
    g.connect(close_r, g3)
    return g


#: The paper's hand-written PEPA net for the same scenario (Section
#: 2.2), in our textual syntax; tests cross-check the extracted net
#: against it.
IM_PEPANET_SOURCE = """
r_t = 1.0; r_o = 2.0; r_r = 10.0; r_w = 4.0; r_c = 1.0;
IM = (transmit, r_t).File;
File = (openread, r_o).InStream + (openwrite, r_o).OutStream;
InStream = (read, r_r).InStream + (close, r_c).File;
OutStream = (write, r_w).OutStream + (close, r_c).File;
FileReader = (openread, T).Reading + (openwrite, T).Writing;
Reading = (read, T).Reading + (close, T).FileReader;
Writing = (write, T).Writing + (close, T).FileReader;

P1[IM] = IM[_];
P2[_] = File[_] <openread, openwrite, read, write, close> FileReader;

transmit = (transmit, r_t) : P1 -> P2;
"""
