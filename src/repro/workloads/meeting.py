"""A multi-token rendezvous workload (extension beyond the paper's
examples).

The paper's Section 6 notes the current extractor handles one mobile
component per place and lists richer configurations as future work; the
formalism itself supports them, and so does our extractor.  This
workload exercises exactly those paths:

* **two mobile objects** (agents ``a`` and ``b``) with their own cells;
* a **shared activity** (``exchange_data``) both objects participate
  in — the extractor must put it in the cooperation set between their
  cells at the meeting place;
* a **joint move** (``travel_home``): one ``<<move>>`` activity with
  two input and two output object flows, compiling to a net transition
  with two input and two output places, fired synchronously.

Scenario: agent *a* prepares at the lab, travels to the hub; agent *b*
prepares at the office, travels to the hub; at the hub they exchange
data (a genuinely synchronised activity); then both travel home
together in one joint move (back to the lab, where the cycle restarts
for *a*, while *b* is reset to the office by the synthetic recurrence
firing).
"""

from __future__ import annotations

from repro.uml.activity import ActivityGraph

__all__ = ["MEETING_RATES", "build_meeting_diagram"]

MEETING_RATES: dict[str, float] = {
    "prepare_a": 2.0,
    "prepare_b": 2.0,
    "travel_a": 1.0,
    "travel_b": 1.0,
    "exchange_data": 4.0,
    "travel_home": 1.0,
    "reset_a": 8.0,
    "reset_b": 8.0,
}


def build_meeting_diagram() -> ActivityGraph:
    """The rendezvous diagram described in the module docstring."""
    g = ActivityGraph("meeting")
    init = g.add_initial()

    prepare_a = g.add_action("prepare_a")
    travel_a = g.add_action("travel_a", move=True)
    prepare_b = g.add_action("prepare_b")
    travel_b = g.add_action("travel_b", move=True)
    exchange = g.add_action("exchange_data")
    home = g.add_action("travel_home", move=True)

    # control flow: a's leg, then b's leg, then the rendezvous.  (The
    # sequential control order only fixes each token's own activity
    # order; the tokens still interleave at run time.)
    g.connect(init, prepare_a)
    g.connect(prepare_a, travel_a)
    g.connect(travel_a, prepare_b)
    g.connect(prepare_b, travel_b)
    g.connect(travel_b, exchange)
    g.connect(exchange, home)

    # agent a: lab -> hub
    a0 = g.add_object("a: AGENT", atloc="lab")
    a1 = g.add_object("a*: AGENT", atloc="lab")
    a2 = g.add_object("a: AGENT", atloc="hub")
    g.connect(a0, prepare_a)
    g.connect(prepare_a, a1)
    g.connect(a1, travel_a)
    g.connect(travel_a, a2)

    # agent b: office -> hub
    b0 = g.add_object("b: AGENT", atloc="office")
    b1 = g.add_object("b*: AGENT", atloc="office")
    b2 = g.add_object("b: AGENT", atloc="hub")
    g.connect(b0, prepare_b)
    g.connect(prepare_b, b1)
    g.connect(b1, travel_b)
    g.connect(travel_b, b2)

    # the rendezvous: both objects flow through exchange_data at the hub
    a3 = g.add_object("a*: AGENT", atloc="hub")
    b3 = g.add_object("b*: AGENT", atloc="hub")
    g.connect(a2, exchange)
    g.connect(b2, exchange)
    g.connect(exchange, a3)
    g.connect(exchange, b3)

    # the joint move home: one <<move>> with two object flows in and out
    a4 = g.add_object("a: AGENT", atloc="lab")
    b4 = g.add_object("b: AGENT", atloc="lab")
    g.connect(a3, home)
    g.connect(b3, home)
    g.connect(home, a4)
    g.connect(home, b4)
    return g
