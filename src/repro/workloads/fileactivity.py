"""Figure 1 workload: the file-operations activity diagram (no mobility).

A text file may be opened for reading or for writing (an explicit
decision diamond), the matching operation happens, then the file is
closed.  The file object ``f: FILE`` is required for every activity; no
location tags appear, so the extraction yields a one-place PEPA net —
the degenerate case in which a PEPA net *is* a PEPA model.
"""

from __future__ import annotations

from repro.uml.activity import ActivityGraph

__all__ = ["FILE_RATES", "build_file_activity_diagram", "FILE_PEPA_SOURCE"]

#: Synthetic but plausible exponential rates (events per second):
#: opening is fast, reads are faster than writes, closing flushes.
FILE_RATES: dict[str, float] = {
    "openread": 2.0,
    "openwrite": 2.0,
    "read": 10.0,
    "write": 4.0,
    "close": 1.0,
}


def build_file_activity_diagram() -> ActivityGraph:
    """The diagram of Figure 1, with the decision diamond made explicit."""
    g = ActivityGraph("file-operations")
    init = g.add_initial()
    decision = g.add_decision("open-mode")
    openread = g.add_action("openread")
    openwrite = g.add_action("openwrite")
    read = g.add_action("read")
    write = g.add_action("write")
    close_r = g.add_action("close")
    close_w = g.add_action("close")

    g.connect(init, decision)
    g.connect(decision, openread)
    g.connect(decision, openwrite)
    g.connect(openread, read)
    g.connect(read, close_r)
    g.connect(openwrite, write)
    g.connect(write, close_w)

    # The file object flows through every activity (Figure 1's boxes).
    f0 = g.add_object("f: FILE")
    g.connect(f0, openread)
    g.connect(f0, openwrite)

    fr1 = g.add_object("f*: FILE")
    g.connect(openread, fr1)
    g.connect(fr1, read)
    fr2 = g.add_object("f*: FILE")
    g.connect(read, fr2)
    g.connect(fr2, close_r)
    fr3 = g.add_object("f**: FILE")
    g.connect(close_r, fr3)

    fw1 = g.add_object("f*: FILE")
    g.connect(openwrite, fw1)
    g.connect(fw1, write)
    fw2 = g.add_object("f**: FILE")
    g.connect(write, fw2)
    g.connect(fw2, close_w)
    fw3 = g.add_object("f***: FILE")
    g.connect(close_w, fw3)
    return g


#: The hand-written PEPA image of the same protocol (Section 2.2 of the
#: paper), used by tests to cross-check the extractor against the
#: published model.
FILE_PEPA_SOURCE = """
r_o = 2.0; r_r = 10.0; r_w = 4.0; r_c = 1.0;
File = (openread, r_o).InStream + (openwrite, r_o).OutStream;
InStream = (read, r_r).InStream + (close, r_c).File;
OutStream = (write, r_w).OutStream + (close, r_c).File;
File
"""
