"""Figures 8/9 workload: the request/response view of the mobile PDA
user — a client talking to a Tomcat web server serving JSP pages.

* **Client** (Figure 8): generates HTTP requests, waits for the
  response, then does local processing before the next request.
* **Server** (Figure 9): accepts a request, locates the JSP source,
  translates it to Java, compiles it to a servlet, executes the servlet
  and returns the generated HTML.

The paper's closing experiment compares the server **with and without
Tomcat's resident-servlet optimisation**: after the first
locate-translate-compile-execute cycle the servlet stays in memory and
subsequent requests bypass translation and compilation.  The authors
estimated rates "by timing a range of JSP pages"; lacking their
measurements we use synthetic, order-of-magnitude-plausible estimates
(documented below and in EXPERIMENTS.md) — the *shape* of the result
(a large reduction in response waiting delay, growing with
compilation cost) does not depend on the exact numbers.

Rates are attached to individual transitions (not a global table)
because ``request``/``response`` must be active on one side and passive
on the other.
"""

from __future__ import annotations

from repro.extract.statechart2pepa import StatechartExtraction, compose_state_machines
from repro.pepa.environment import PepaModel
from repro.uml.model import TAG_RATE
from repro.uml.statechart import StateMachine

__all__ = [
    "TOMCAT_RATES",
    "build_client_statechart",
    "build_server_statechart",
    "build_web_model",
    "CLIENT_STATES",
    "SERVER_STATES",
]

#: Synthetic rate estimates (events/second), standing in for the
#: authors' Tomcat timings:
#:
#: ===============  ======  =============================================
#: activity          rate   interpretation
#: ===============  ======  =============================================
#: request            2.0   client issues a request every ~0.5 s
#: offlineprocessing  1.0   ~1 s of local processing per page
#: locatejsp        200.0   finding the JSP source: ~5 ms
#: translate          0.5   JSP → Java source: ~2 s
#: compile            1.0   Java → servlet: ~1 s
#: execute           50.0   servlet run: ~20 ms
#: response         100.0   shipping the HTML: ~10 ms
#: servlethit       190.0   cache lookup, hit (95 % of lookups)
#: servletmiss       10.0   cache lookup, miss (5 %)
#: ===============  ======  =============================================
TOMCAT_RATES: dict[str, float] = {
    "request": 2.0,
    "offlineprocessing": 1.0,
    "locatejsp": 200.0,
    "translate": 0.5,
    "compile": 1.0,
    "execute": 50.0,
    "response": 100.0,
    "servlethit": 190.0,
    "servletmiss": 10.0,
}

CLIENT_STATES = ("GenerateRequest", "WaitForResponse", "ProcessResponse")
SERVER_STATES = (
    "ServerIdle",
    "ProcessRequest",
    "AccessJSPFile",
    "GeneratedJavaCode",
    "CompiledJavaCode",
    "SendHTTPResponse",
)


def build_client_statechart(rates: dict[str, float] | None = None) -> StateMachine:
    """Figure 8.  The client is active on ``request`` and
    ``offlineprocessing`` and passively accepts the ``response``."""
    r = {**TOMCAT_RATES, **(rates or {})}
    sm = StateMachine("Client")
    init = sm.add_initial()
    generate = sm.add_state("GenerateRequest")
    wait = sm.add_state("WaitForResponse")
    process = sm.add_state("ProcessResponse")
    sm.add_transition(init, generate, "")
    sm.add_transition(generate, wait, "request", rate=r["request"])
    sm.add_transition(wait, process, "response").set_tag(TAG_RATE, "T")
    sm.add_transition(process, generate, "offlineprocessing", rate=r["offlineprocessing"])
    return sm


def build_server_statechart(
    *, cached: bool = False, rates: dict[str, float] | None = None
) -> StateMachine:
    """Figure 9 (``cached=False``), or the same server with Tomcat's
    resident-servlet optimisation (``cached=True``).

    The optimised server resolves each request through a servlet
    lookup: a hit (weight ``servlethit``) goes straight to execution;
    a miss (weight ``servletmiss``) pays the full
    locate-translate-compile cycle.
    """
    r = {**TOMCAT_RATES, **(rates or {})}
    name = "ServerCached" if cached else "Server"
    sm = StateMachine(name, context_class="Server")
    init = sm.add_initial()
    idle = sm.add_state("ServerIdle")
    processing = sm.add_state("ProcessRequest")
    access = sm.add_state("AccessJSPFile")
    generated = sm.add_state("GeneratedJavaCode")
    compiled = sm.add_state("CompiledJavaCode")
    sending = sm.add_state("SendHTTPResponse")

    sm.add_transition(init, idle, "")
    sm.add_transition(idle, processing, "request").set_tag(TAG_RATE, "T")
    if cached:
        resident = sm.add_state("ExecuteResidentServlet")
        sm.add_transition(processing, resident, "servlethit", rate=r["servlethit"])
        sm.add_transition(processing, access, "servletmiss", rate=r["servletmiss"])
        sm.add_transition(resident, sending, "execute", rate=r["execute"])
    else:
        sm.add_transition(processing, access, "locatejsp", rate=r["locatejsp"])
    sm.add_transition(access, generated, "translate", rate=r["translate"])
    sm.add_transition(generated, compiled, "compile", rate=r["compile"])
    sm.add_transition(compiled, sending, "execute", rate=r["execute"])
    sm.add_transition(sending, idle, "response", rate=r["response"])
    return sm


def build_web_model(
    *, cached: bool = False, rates: dict[str, float] | None = None
) -> tuple[PepaModel, list[StatechartExtraction]]:
    """The composed client ⋈ server PEPA model.

    Client and server cooperate on their shared triggers, ``request``
    and ``response`` — the coupling of Section 5.
    """
    client = build_client_statechart(rates)
    server = build_server_statechart(cached=cached, rates=rates)
    return compose_state_machines([client, server])
