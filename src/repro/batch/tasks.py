"""Task runners: what each :class:`~repro.batch.engine.BatchTask` kind does.

Every runner takes the task's JSON-able ``payload`` plus the
worker-materialised :class:`~repro.resilience.budget.ExecutionBudget`
and returns a JSON-able *measures* dict.  Measures must be functions of
the payload alone — no clocks, no pids, no paths — because the batch
contract compares them byte-for-byte between serial and parallel runs.

Kinds:

``xmi``
    The full Figure 4 Choreographer pipeline over a Poseidon document:
    ``{"text": ..., "rates": {...}, "loop": true, "reset_rate": 1.0,
    "solver": "direct", "solver_policy": null, "strict": false}``;
    ``rates_text`` (raw ``.rates`` file content) may replace ``rates``.
``pepa`` / ``net``
    Parse-and-solve of a textual PEPA model / PEPA net:
    ``{"source": ..., "solver": "direct"}``.  A PEPA payload with
    ``{"fluid": true, "replicas": N}`` is solved on the mean-field
    fluid route instead of the exact CTMC.
``experiment``
    One EXPERIMENTS.md row by id: ``{"experiment": "E1"}``.
``call``
    Any importable callable returning a JSON-able dict:
    ``{"target": "module:function", "kwargs": {...}}`` — how the bench
    harness feeds its workload records through the engine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.core.keys import stable_digest

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.batch.engine import BatchTask
    from repro.resilience.budget import ExecutionBudget

__all__ = ["TASK_KINDS", "run_task"]


def _round_map(values: dict[str, float]) -> dict[str, float]:
    """Floats passed through exactly; ordering canonicalised by name."""
    return {name: float(values[name]) for name in sorted(values)}


def _rate_table(payload: dict[str, Any]):
    """Rebuild the rate table from its JSON-able payload form."""
    if "rates_text" in payload:
        from repro.extract.rates import parse_rates

        return parse_rates(payload["rates_text"])
    if "rates" in payload and payload["rates"] is not None:
        from repro.extract.rates import RateTable

        return RateTable.from_numbers(payload["rates"])
    return None


def _run_xmi(payload: dict[str, Any], budget: "ExecutionBudget | None") -> dict[str, Any]:
    from repro.choreographer.platform import Choreographer

    platform = Choreographer(
        solver=payload.get("solver", "direct"),
        max_states=payload.get("max_states", 1_000_000),
        solver_policy=payload.get("solver_policy"),
        strict=payload.get("strict", False),
        budget=budget,
    )
    result = platform.process_xmi(
        payload["text"],
        _rate_table(payload),
        loop=payload.get("loop", True),
        reset_rate=payload.get("reset_rate", 1.0),
    )
    diagrams: list[dict[str, Any]] = []
    for outcome in result.activity_outcomes:
        diagrams.append({
            "diagram": outcome.graph.name,
            "type": "activity",
            "n_states": outcome.analysis.n_states,
            "throughputs": _round_map(outcome.analysis.all_throughputs()),
        })
    for outcome in result.statechart_outcomes:
        diagrams.append({
            "diagram": ",".join(m.name for m in outcome.machines),
            "type": "statecharts",
            "n_states": outcome.analysis.n_states,
            "throughputs": _round_map(outcome.analysis.all_throughputs()),
        })
    return {
        "diagrams": diagrams,
        "failures": [
            {"diagram": f.diagram, "stage": f.stage,
             "error": f"{type(f.error).__name__}: {f.error}"}
            for f in result.report.failures
        ],
        "document_sha256": stable_digest(result.document),
    }


def _run_pepa(payload: dict[str, Any], budget: "ExecutionBudget | None") -> dict[str, Any]:
    from repro.choreographer.workbench import PepaWorkbench

    if payload.get("fluid"):
        workbench = PepaWorkbench(fluid=True, replicas=payload.get("replicas"))
        analysis = workbench.solve_source(payload["source"])
        return {
            "dimension": analysis.dimension,
            "replicas": analysis.replicas,
            "method": analysis.solver,
            "throughputs": _round_map(analysis.all_throughputs()),
            "occupancies": _round_map(analysis.occupancies()),
        }
    workbench = PepaWorkbench(
        solver=payload.get("solver", "direct"),
        max_states=payload.get("max_states", 1_000_000),
        policy=payload.get("solver_policy"),
        budget=budget,
        generator=payload.get("generator", "csr"),
    )
    analysis = workbench.solve_source(payload["source"])
    return {
        "n_states": analysis.n_states,
        "solver": analysis.solver,
        "throughputs": _round_map(analysis.all_throughputs()),
    }


def _run_net(payload: dict[str, Any], budget: "ExecutionBudget | None") -> dict[str, Any]:
    from repro.choreographer.workbench import PepaNetWorkbench

    workbench = PepaNetWorkbench(
        solver=payload.get("solver", "direct"),
        max_states=payload.get("max_states", 1_000_000),
        policy=payload.get("solver_policy"),
        budget=budget,
    )
    analysis = workbench.solve_source(payload["source"])
    return {
        "n_states": analysis.n_states,
        "solver": analysis.solver,
        "throughputs": _round_map(analysis.all_throughputs()),
        "locations": _round_map(analysis.location_distribution()),
    }


def _run_experiment(payload: dict[str, Any], budget: "ExecutionBudget | None") -> dict[str, Any]:
    from repro.choreographer.experiments import run_experiment
    from repro.choreographer.platform import Choreographer

    record = run_experiment(
        payload["experiment"], Choreographer(budget=budget)
    )
    return {
        "experiment": record.experiment,
        "description": record.description,
        "metrics": _round_map(record.metrics),
        "checks": {name: bool(record.checks[name]) for name in sorted(record.checks)},
        "ok": record.ok,
    }


def _run_call(payload: dict[str, Any], budget: "ExecutionBudget | None") -> dict[str, Any]:
    import importlib

    target = payload["target"]
    module_name, _, attr = target.partition(":")
    if not module_name or not attr:
        raise ValueError(f"call target must be 'module:function', got {target!r}")
    function = getattr(importlib.import_module(module_name), attr)
    result = function(**payload.get("kwargs", {}))
    if not isinstance(result, dict):
        raise TypeError(
            f"call target {target!r} returned {type(result).__name__}, "
            "expected a JSON-able dict"
        )
    return result


#: kind → runner; extend here to teach the engine new work shapes.
TASK_KINDS: dict[str, Callable[[dict[str, Any], "ExecutionBudget | None"], dict[str, Any]]] = {
    "xmi": _run_xmi,
    "pepa": _run_pepa,
    "net": _run_net,
    "experiment": _run_experiment,
    "call": _run_call,
}


def run_task(task: "BatchTask", *, budget: "ExecutionBudget | None" = None) -> dict[str, Any]:
    """Dispatch ``task`` to its kind's runner; returns the measures dict."""
    try:
        runner = TASK_KINDS[task.kind]
    except KeyError:
        raise ValueError(
            f"unknown task kind {task.kind!r}; choose from {sorted(TASK_KINDS)}"
        ) from None
    return runner(task.payload, budget)
