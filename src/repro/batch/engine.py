"""The multiprocess batch engine: N workers, one coherent report.

A :class:`BatchTask` names a unit of pipeline work (an XMI document, a
textual PEPA model or net, one experiment of EXPERIMENTS.md, or any
importable callable); a :class:`BatchEngine` runs a list of them across
``jobs`` worker processes and folds the outcomes into a
:class:`BatchReport`.

Design contract — **parallel runs are deterministic**: the report's
content (per-task measures, merged metrics totals, event order) depends
only on the task list, never on worker scheduling.  Three mechanisms
enforce this:

* results are collected in task-submission order (``Executor.map``),
  not completion order;
* each task runs under its *own* fresh tracer/metrics/events, so
  concurrent tasks cannot interleave writes; the engine merges the
  per-task snapshots afterwards in task order via
  :mod:`repro.obs.merge`;
* worker processes start from a clean slate: the pool initialiser calls
  :func:`repro.obs.reset_ambient` (a forked worker must not record into
  an inherited parent snapshot) and installs the worker's own ambient
  :class:`~repro.batch.cache.DerivationCache`.

``jobs=1`` executes inline in the calling process through exactly the
same per-task code path, so serial and parallel runs produce identical
measures documents — the property the CI batch smoke step pins
byte-for-byte.

Budgets: a :class:`~repro.resilience.budget.BudgetSpec` attached to a
task (or the engine-wide default) is *materialised in the worker as the
task starts*, so the deadline clock never charges queueing time.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import multiprocessing

from repro.batch.cache import DerivationCache, get_cache, set_cache, use_cache
from repro.obs import (
    EventStream,
    MetricsRegistry,
    Tracer,
    merge_events,
    merge_metrics,
    merge_traces,
    reset_ambient,
    use_events,
    use_metrics,
    use_tracer,
)
from repro.resilience.budget import BudgetSpec
from repro.utils.formatting import format_table

__all__ = ["BatchTask", "BatchResult", "BatchReport", "BatchEngine", "run_batch"]

#: Environment override for the multiprocessing start method
#: (``fork``/``spawn``/``forkserver``); default prefers ``fork`` where
#: the platform offers it — workers inherit the warm interpreter — and
#: falls back to ``spawn`` elsewhere.  ``reset_ambient`` makes both safe.
MP_START_ENV = "REPRO_MP_START"


@dataclass(frozen=True)
class BatchTask:
    """One unit of batch work.

    ``kind`` selects the runner (see :mod:`repro.batch.tasks`);
    ``payload`` is its JSON-able argument dict; ``budget`` optionally
    bounds the task (materialised in the worker at task start).
    """

    id: str
    kind: str
    payload: dict[str, Any] = field(default_factory=dict)
    budget: BudgetSpec | None = None


@dataclass
class BatchResult:
    """Everything one task produced, measures and observability alike.

    ``measures`` is the deterministic, JSON-able outcome; ``trace`` /
    ``metrics`` / ``events`` are the worker's observability snapshots
    for this task; ``cache`` is the task's hit/miss delta.  Timing
    (``duration_s``) is reported but deliberately excluded from
    :meth:`BatchReport.measures_document`.
    """

    task_id: str
    kind: str
    ok: bool
    measures: dict[str, Any] = field(default_factory=dict)
    error: str | None = None
    duration_s: float = 0.0
    trace: dict[str, Any] = field(default_factory=lambda: {"schema": "repro-trace/1", "traces": []})
    metrics: dict[str, Any] = field(default_factory=lambda: {"schema": "repro-metrics/1", "metrics": {}})
    events: list[dict[str, Any]] = field(default_factory=list)
    cache: dict[str, int] = field(default_factory=dict)


def _cache_delta(before: dict[str, int] | None, after: dict[str, int] | None) -> dict[str, int]:
    if not after:
        return {}
    before = before or {}
    return {name: after[name] - before.get(name, 0) for name in after}


def execute_task(task: BatchTask) -> BatchResult:
    """Run one task under fresh ambient collectors; never raises.

    This is the single execution path shared by inline (``jobs=1``) and
    pooled runs: fresh tracer/metrics/events installed for the duration
    of the task, the task's budget materialised here (worker-side), and
    any exception captured into the result so one poisoned task degrades
    itself only.
    """
    from repro.batch.tasks import run_task

    tracer, metrics, events = Tracer(), MetricsRegistry(), EventStream()
    ambient_cache = get_cache()
    stats_before = ambient_cache.stats.as_dict() if ambient_cache else None
    budget = task.budget.materialise() if task.budget is not None else None
    measures: dict[str, Any] = {}
    error: str | None = None
    start = time.perf_counter()
    with use_tracer(tracer), use_metrics(metrics), use_events(events):
        try:
            measures = run_task(task, budget=budget)
        except Exception as exc:  # captured, not raised: the batch goes on
            error = f"{type(exc).__name__}: {exc}"
    duration = time.perf_counter() - start
    stats_after = ambient_cache.stats.as_dict() if ambient_cache else None
    return BatchResult(
        task_id=task.id,
        kind=task.kind,
        ok=error is None,
        measures=measures,
        error=error,
        duration_s=duration,
        trace=tracer.to_dict(),
        metrics=metrics.as_dict(),
        events=events.to_dicts(),
        cache=_cache_delta(stats_before, stats_after),
    )


def _worker_init(cache_dir: str | None) -> None:
    """Pool initialiser: clean ambient slate, then this worker's cache."""
    reset_ambient()
    set_cache(DerivationCache(cache_dir) if cache_dir else None)


@dataclass
class BatchReport:
    """The merged outcome of one batch run."""

    results: list[BatchResult]
    jobs: int
    duration_s: float
    cache_dir: str | None = None

    @property
    def ok(self) -> bool:
        """True when every task succeeded."""
        return all(result.ok for result in self.results)

    @property
    def failures(self) -> list[BatchResult]:
        return [result for result in self.results if not result.ok]

    # ------------------------------------------------------------------
    # Merged observability views (task order ⇒ deterministic)
    # ------------------------------------------------------------------
    def merged_trace(self) -> dict[str, Any]:
        """One ``repro-trace/1`` forest over every task, in task order."""
        return merge_traces(result.trace for result in self.results)

    def merged_metrics(self) -> dict[str, Any]:
        """One ``repro-metrics/1`` snapshot summed over every task."""
        return merge_metrics(result.metrics for result in self.results)

    def merged_events(self) -> list[dict[str, Any]]:
        """Every task's events, tagged with the task id, in task order."""
        return merge_events(
            [(result.task_id, result.events) for result in self.results]
        )

    def cache_totals(self) -> dict[str, int]:
        """Hit/miss/store/corrupt totals summed over every task."""
        totals: dict[str, int] = {}
        for result in self.results:
            for name, value in result.cache.items():
                totals[name] = totals.get(name, 0) + value
        return totals

    # ------------------------------------------------------------------
    # Deterministic content
    # ------------------------------------------------------------------
    def measures_document(self) -> dict[str, Any]:
        """The schedule-independent content of the run.

        Identical for serial and parallel executions of the same task
        list — no timings, no worker identities, no cache traffic (a
        warm cache changes speed, never results).
        """
        return {
            "schema": "repro-batch/1",
            "tasks": [
                {
                    "id": result.task_id,
                    "kind": result.kind,
                    "ok": result.ok,
                    "measures": result.measures,
                    "error": result.error,
                }
                for result in self.results
            ],
        }

    def measures_json(self) -> str:
        """Canonical JSON of :meth:`measures_document` (byte-comparable)."""
        return json.dumps(self.measures_document(), sort_keys=True, indent=2) + "\n"

    def summary(self) -> str:
        """Aligned per-task status table plus the run's vital signs."""
        rows = [
            [
                result.task_id,
                result.kind,
                "ok" if result.ok else "FAILED",
                f"{result.duration_s:.3f}s",
                result.error or "",
            ]
            for result in self.results
        ]
        table = format_table(["task", "kind", "status", "time", "error"], rows)
        totals = self.cache_totals()
        cache_line = (
            f"cache: {totals.get('hits', 0)} hits, "
            f"{totals.get('misses', 0)} misses, "
            f"{totals.get('corrupt', 0)} corrupt"
            if totals
            else "cache: off"
        )
        status = "ok" if self.ok else f"{len(self.failures)} task(s) FAILED"
        return (
            f"{table}\n{len(self.results)} tasks on {self.jobs} worker(s) "
            f"in {self.duration_s:.3f}s — {status}\n{cache_line}"
        )


class BatchEngine:
    """Run batches of tasks across worker processes.

    ``jobs=1`` runs inline (no pool); ``jobs>1`` uses a process pool
    whose workers are initialised with a clean ambient slate and their
    own :class:`~repro.batch.cache.DerivationCache` over the shared
    ``cache_dir``.  ``default_budget`` applies to tasks without one.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache_dir: str | os.PathLike | None = None,
        default_budget: BudgetSpec | None = None,
        mp_start: str | None = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.default_budget = default_budget
        self.mp_start = mp_start

    def _context(self) -> multiprocessing.context.BaseContext:
        method = self.mp_start or os.environ.get(MP_START_ENV)
        if method is None:
            method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        return multiprocessing.get_context(method)

    def _with_budgets(self, tasks: Sequence[BatchTask]) -> list[BatchTask]:
        if self.default_budget is None:
            return list(tasks)
        return [
            task if task.budget is not None
            else BatchTask(id=task.id, kind=task.kind, payload=task.payload,
                           budget=self.default_budget)
            for task in tasks
        ]

    def run(self, tasks: Iterable[BatchTask]) -> BatchReport:
        """Execute every task; returns the merged report.

        Task ids must be unique — they key the per-task results and tag
        the merged event stream.
        """
        todo = self._with_budgets(list(tasks))
        ids = [task.id for task in todo]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate task ids in batch: {ids}")
        start = time.perf_counter()
        if self.jobs == 1 or len(todo) <= 1:
            cache = DerivationCache(self.cache_dir) if self.cache_dir else None
            with use_cache(cache):
                results = [execute_task(task) for task in todo]
        else:
            context = self._context()
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(todo)),
                mp_context=context,
                initializer=_worker_init,
                initargs=(self.cache_dir,),
            ) as pool:
                results = list(pool.map(execute_task, todo, chunksize=1))
        duration = time.perf_counter() - start
        return BatchReport(
            results=results, jobs=self.jobs, duration_s=duration,
            cache_dir=self.cache_dir,
        )


def run_batch(
    tasks: Iterable[BatchTask],
    *,
    jobs: int = 1,
    cache_dir: str | os.PathLike | None = None,
    default_budget: BudgetSpec | None = None,
) -> BatchReport:
    """One-call convenience over :class:`BatchEngine`."""
    engine = BatchEngine(jobs=jobs, cache_dir=cache_dir, default_budget=default_budget)
    return engine.run(tasks)
