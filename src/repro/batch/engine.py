"""The multiprocess batch engine: N workers, one coherent report.

A :class:`BatchTask` names a unit of pipeline work (an XMI document, a
textual PEPA model or net, one experiment of EXPERIMENTS.md, or any
importable callable); a :class:`BatchEngine` runs a list of them across
``jobs`` worker processes and folds the outcomes into a
:class:`BatchReport`.

Design contract — **parallel runs are deterministic**: the report's
content (per-task measures, merged metrics totals, event order) depends
only on the task list, never on worker scheduling.  Three mechanisms
enforce this:

* results are collected in task-submission order, not completion order;
* each task runs under its *own* fresh tracer/metrics/events, so
  concurrent tasks cannot interleave writes; the engine merges the
  per-task snapshots afterwards in task order via
  :mod:`repro.obs.merge`;
* worker processes start from a clean slate: the pool initialiser calls
  :func:`repro.obs.reset_ambient` (a forked worker must not record into
  an inherited parent snapshot) and installs the worker's own ambient
  :class:`~repro.batch.cache.DerivationCache`.

``jobs=1`` executes inline in the calling process through exactly the
same per-task code path, so serial and parallel runs produce identical
measures documents — the property the CI batch smoke step pins
byte-for-byte.

**Supervision** — the engine assumes the real world: workers segfault,
solves hang, tasks throw.  Every task runs under a
:class:`RetryPolicy`: a failed attempt is retried with exponential
backoff (the :class:`~repro.resilience.fallback.FallbackPolicy`
idiom), a worker that dies abruptly (``BrokenProcessPool``) poisons
only the tasks it was running — the pool is rebuilt, unstarted tasks
are re-queued without losing an attempt, and crash suspects are
re-tried in *isolation* (a one-worker pool) so a repeat crash blames
exactly one task — and a task that exceeds ``task_timeout`` has its
pool torn down and is likewise retried in isolation.  A task that
exhausts its attempts crashing or hanging is **quarantined**: marked
failed with a structured error, never blocking the rest of the run.
Per-task wall-clock timeouts require a pool (``jobs >= 2``); inline
runs bound tasks cooperatively via budgets instead.

**Checkpointing** — give the engine a journal path and every final
per-task result is appended (one fsync'd JSONL line, schema
``repro-journal/1``) as it lands; :meth:`BatchEngine.resume` replays
the recorded results and runs only what's missing, producing a report
byte-identical to an uninterrupted run.  See
:mod:`repro.batch.journal`.

Budgets: a :class:`~repro.resilience.budget.BudgetSpec` attached to a
task (or the engine-wide default) is *materialised in the worker as the
task starts*, so the deadline clock never charges queueing time.
"""

from __future__ import annotations

import concurrent.futures
import json
import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

import multiprocessing

from repro.batch.cache import DerivationCache, get_cache, set_cache, use_cache
from repro.batch.journal import RunJournal, tasks_fingerprint
from repro.obs import (
    EventStream,
    MetricsRegistry,
    ProfileConfig,
    SamplingProfiler,
    SpanResourceProbe,
    Tracer,
    get_events,
    get_metrics,
    get_profile_config,
    merge_events,
    merge_metrics,
    merge_profiles,
    merge_traces,
    reset_ambient,
    set_profile_config,
    use_events,
    use_metrics,
    use_profile_config,
    use_profiler,
    use_resource_probe,
    use_tracer,
)
from repro.resilience.budget import BudgetSpec
from repro.resilience.faultinject import (
    BatchFaultPlan,
    InjectedWorkerCrash,
    current_task,
    get_batch_faults,
    set_batch_faults,
    use_batch_faults,
)
from repro.utils.formatting import format_table

__all__ = [
    "BatchTask",
    "BatchResult",
    "BatchReport",
    "BatchEngine",
    "RetryPolicy",
    "run_batch",
]

#: Environment override for the multiprocessing start method
#: (``fork``/``spawn``/``forkserver``); default prefers ``fork`` where
#: the platform offers it — workers inherit the warm interpreter — and
#: falls back to ``spawn`` elsewhere.  ``reset_ambient`` makes both safe.
MP_START_ENV = "REPRO_MP_START"


@dataclass(frozen=True)
class RetryPolicy:
    """How the engine supervises one task's attempts.

    ``retries`` extra attempts follow a failed first one (so
    ``retries=2`` means at most three executions); before attempt *k*
    the supervisor sleeps ``backoff * 2**(k-2)`` seconds, capped at
    ``max_backoff`` — the :class:`~repro.resilience.fallback.FallbackPolicy`
    idiom.  ``task_timeout`` bounds one attempt's wall clock in pooled
    runs (``None`` = unbounded); a timed-out attempt counts as failed
    and its worker pool is rebuilt, since a running task cannot be
    cancelled, only outlived.
    """

    retries: int = 2
    backoff: float = 0.1
    max_backoff: float = 2.0
    task_timeout: float | None = None

    def __post_init__(self):
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(f"task_timeout must be > 0, got {self.task_timeout}")

    @property
    def max_attempts(self) -> int:
        return self.retries + 1

    def backoff_before(self, attempt: int) -> float:
        """Seconds to sleep before ``attempt`` (1-based; 0 for the first)."""
        if attempt <= 1 or self.backoff == 0:
            return 0.0
        return min(self.backoff * 2.0 ** (attempt - 2), self.max_backoff)


@dataclass(frozen=True)
class BatchTask:
    """One unit of batch work.

    ``kind`` selects the runner (see :mod:`repro.batch.tasks`);
    ``payload`` is its JSON-able argument dict; ``budget`` optionally
    bounds the task (materialised in the worker at task start).
    """

    id: str
    kind: str
    payload: dict[str, Any] = field(default_factory=dict)
    budget: BudgetSpec | None = None


@dataclass
class BatchResult:
    """Everything one task produced, measures and observability alike.

    ``measures`` is the deterministic, JSON-able outcome; ``trace`` /
    ``metrics`` / ``events`` are the worker's observability snapshots
    for this task; ``cache`` is the task's hit/miss delta.
    ``attempts`` counts executions (1 in a healthy run);
    ``quarantined`` marks a task that exhausted its attempts crashing
    or hanging; ``error_context`` carries the structured
    :attr:`repro.exceptions.ReproError.context` of a captured failure.
    Timing (``duration_s``), attempts and error context are reported
    but deliberately excluded from :meth:`BatchReport.measures_document`
    — they can vary run to run without the *results* differing.
    """

    task_id: str
    kind: str
    ok: bool
    measures: dict[str, Any] = field(default_factory=dict)
    error: str | None = None
    duration_s: float = 0.0
    trace: dict[str, Any] = field(default_factory=lambda: {"schema": "repro-trace/1", "traces": []})
    metrics: dict[str, Any] = field(default_factory=lambda: {"schema": "repro-metrics/1", "metrics": {}})
    events: list[dict[str, Any]] = field(default_factory=list)
    cache: dict[str, int] = field(default_factory=dict)
    attempts: int = 1
    quarantined: bool = False
    error_context: dict[str, Any] = field(default_factory=dict)
    #: ``repro-profile/1`` samples for this task; ``{}`` unless the run
    #: was profiled (an ambient :class:`~repro.obs.ProfileConfig`).
    profile: dict[str, Any] = field(default_factory=dict)


def _cache_delta(before: dict[str, int] | None, after: dict[str, int] | None) -> dict[str, int]:
    if not after:
        return {}
    before = before or {}
    return {name: after[name] - before.get(name, 0) for name in after}


def _jsonable_context(context: dict[str, Any], *, limit: int = 200) -> dict[str, Any]:
    """A JSON-able, size-bounded copy of an exception's context dict."""
    safe: dict[str, Any] = {}
    for key, value in context.items():
        if isinstance(value, str):
            safe[str(key)] = value[:limit]
        elif isinstance(value, (int, float, bool)) or value is None:
            safe[str(key)] = value
        else:
            safe[str(key)] = repr(value)[:limit]
    return safe


@contextmanager
def _profiled(config: ProfileConfig | None) -> Iterator[SamplingProfiler | None]:
    """Install a per-task profiler + resource probe when profiling is on.

    Each task gets its *own* sampler (fresh sample set, fresh clock) so
    per-task profiles stay attributable and merge deterministically in
    task order; the probe stamps the task's spans with cpu/memory.
    """
    if config is None:
        yield None
        return
    profiler = SamplingProfiler(config.interval)
    probe = SpanResourceProbe(memory=config.memory)
    with use_profiler(profiler), use_resource_probe(probe), profiler:
        yield profiler


def execute_task(task: BatchTask, attempt: int = 1, *, inline: bool = False) -> BatchResult:
    """Run one task attempt under fresh ambient collectors.

    This is the single execution path shared by inline (``jobs=1``) and
    pooled runs: fresh tracer/metrics/events installed for the duration
    of the task, the task's budget materialised here (worker-side), and
    failures captured into the result so one poisoned task degrades
    itself only.  The capture is deliberate about *which* failures
    degrade gracefully:

    * ``Exception`` — captured; a :class:`~repro.exceptions.ReproError`
      additionally contributes its structured ``.context`` dict;
    * ``MemoryError`` — captured with truncated context (the worker may
      be too starved to format a full message);
    * ``SystemExit`` — captured (a task calling ``sys.exit`` must not
      silently take a worker down);
    * ``KeyboardInterrupt`` — **re-raised**: the user's Ctrl-C stops
      the run, it is not a task failure;
    * :class:`~repro.resilience.faultinject.InjectedWorkerCrash` —
      propagates: it stands in for a dead worker and must reach the
      supervisor, never a result.

    An ambient :class:`~repro.resilience.faultinject.BatchFaultPlan`
    fires its task-level faults here, at attempt start.
    """
    from repro.batch.tasks import run_task

    plan = get_batch_faults()
    tracer, metrics, events = Tracer(), MetricsRegistry(), EventStream()
    ambient_cache = get_cache()
    stats_before = ambient_cache.stats.as_dict() if ambient_cache else None
    budget = task.budget.materialise() if task.budget is not None else None
    measures: dict[str, Any] = {}
    error: str | None = None
    error_context: dict[str, Any] = {}
    start = time.perf_counter()
    with current_task(task.id, attempt), \
            use_tracer(tracer), use_metrics(metrics), use_events(events), \
            _profiled(get_profile_config()) as profiler:
        try:
            if plan is not None:
                plan.apply_task_start(task.id, attempt, inline=inline)
            measures = run_task(task, budget=budget)
        except KeyboardInterrupt:
            raise
        except MemoryError as exc:
            measures = {}
            error = f"MemoryError: {str(exc)[:120]}"
            error_context = {"truncated": True, "attempt": attempt}
        except SystemExit as exc:
            error = f"SystemExit: {exc.code!r}"
            error_context = {"exit_code": repr(exc.code), "attempt": attempt}
        except Exception as exc:  # captured, not raised: the batch goes on
            error = f"{type(exc).__name__}: {exc}"
            raw_context = getattr(exc, "context", None)
            if isinstance(raw_context, dict):
                error_context = _jsonable_context(raw_context)
    duration = time.perf_counter() - start
    stats_after = ambient_cache.stats.as_dict() if ambient_cache else None
    return BatchResult(
        task_id=task.id,
        kind=task.kind,
        ok=error is None,
        measures=measures,
        error=error,
        duration_s=duration,
        trace=tracer.to_dict(),
        metrics=metrics.as_dict(),
        events=events.to_dicts(),
        cache=_cache_delta(stats_before, stats_after),
        attempts=attempt,
        error_context=error_context,
        profile=profiler.to_dict() if profiler is not None else {},
    )


def _worker_init(
    cache_dir: str | None,
    cache_max_bytes: int | None = None,
    faults: BatchFaultPlan | None = None,
    profile: ProfileConfig | None = None,
) -> None:
    """Pool initialiser: clean ambient slate, cache, fault plan, profiling.

    ``profile`` is the (picklable) :class:`~repro.obs.ProfileConfig`
    the parent wants applied; installing it ambiently makes every
    :func:`execute_task` in this worker start its own sampler.
    """
    reset_ambient()
    set_cache(
        DerivationCache(cache_dir, max_bytes=cache_max_bytes) if cache_dir else None
    )
    set_batch_faults(faults)
    set_profile_config(profile)


def _supervised_entry(task: BatchTask, attempt: int, marker_path: str) -> BatchResult:
    """Worker-side wrapper: drop a start marker, then execute.

    The marker file is touched *before* any task code (or injected
    fault) runs, so when a pool breaks the supervisor can separate the
    tasks that had started — crash suspects — from the ones still
    queued, which are requeued without being charged an attempt.
    """
    Path(marker_path).touch()
    return execute_task(task, attempt)


@dataclass
class BatchReport:
    """The merged outcome of one batch run."""

    results: list[BatchResult]
    jobs: int
    duration_s: float
    cache_dir: str | None = None
    #: Supervision audit trail: retries, quarantines, pool rebuilds.
    incidents: list[dict[str, Any]] = field(default_factory=list)
    journal_path: str | None = None

    @property
    def ok(self) -> bool:
        """True when every task succeeded."""
        return all(result.ok for result in self.results)

    @property
    def failures(self) -> list[BatchResult]:
        return [result for result in self.results if not result.ok]

    @property
    def quarantined(self) -> list[BatchResult]:
        """Tasks that exhausted their attempts crashing or hanging."""
        return [result for result in self.results if result.quarantined]

    @property
    def retries(self) -> int:
        """Extra attempts spent across the whole run (0 when healthy)."""
        return sum(result.attempts - 1 for result in self.results)

    # ------------------------------------------------------------------
    # Merged observability views (task order ⇒ deterministic)
    # ------------------------------------------------------------------
    def merged_trace(self) -> dict[str, Any]:
        """One ``repro-trace/1`` forest over every task, in task order."""
        return merge_traces(result.trace for result in self.results)

    def merged_metrics(self) -> dict[str, Any]:
        """One ``repro-metrics/1`` snapshot summed over every task."""
        return merge_metrics(result.metrics for result in self.results)

    def merged_events(self) -> list[dict[str, Any]]:
        """Every task's events, tagged with the task id, in task order."""
        return merge_events(
            [(result.task_id, result.events) for result in self.results]
        )

    def merged_profile(self) -> dict[str, Any]:
        """One ``repro-profile/1`` document summed over every profiled task."""
        return merge_profiles(
            result.profile for result in self.results if result.profile
        )

    def cache_totals(self) -> dict[str, int]:
        """Hit/miss/store/corrupt/eviction totals over every task."""
        totals: dict[str, int] = {}
        for result in self.results:
            for name, value in result.cache.items():
                totals[name] = totals.get(name, 0) + value
        return totals

    # ------------------------------------------------------------------
    # Deterministic content
    # ------------------------------------------------------------------
    def measures_document(self) -> dict[str, Any]:
        """The schedule-independent content of the run.

        Identical for serial and parallel executions of the same task
        list — no timings, no worker identities, no cache traffic (a
        warm cache changes speed, never results), no attempt counts or
        error contexts (a retried-then-recovered task *is* a healthy
        task, and contexts may carry wall-clock values).
        """
        return {
            "schema": "repro-batch/1",
            "tasks": [
                {
                    "id": result.task_id,
                    "kind": result.kind,
                    "ok": result.ok,
                    "measures": result.measures,
                    "error": result.error,
                }
                for result in self.results
            ],
        }

    def measures_json(self) -> str:
        """Canonical JSON of :meth:`measures_document` (byte-comparable)."""
        return json.dumps(self.measures_document(), sort_keys=True, indent=2) + "\n"

    def summary(self) -> str:
        """Aligned per-task status table plus the run's vital signs."""
        rows = [
            [
                result.task_id,
                result.kind,
                (
                    "QUARANTINED" if result.quarantined
                    else "ok" if result.ok
                    else "FAILED"
                ),
                f"{result.duration_s:.3f}s",
                result.error or "",
            ]
            for result in self.results
        ]
        table = format_table(["task", "kind", "status", "time", "error"], rows)
        totals = self.cache_totals()
        cache_line = (
            f"cache: {totals.get('hits', 0)} hits, "
            f"{totals.get('misses', 0)} misses, "
            f"{totals.get('corrupt', 0)} corrupt"
            if totals
            else "cache: off"
        )
        if totals and totals.get("evictions"):
            cache_line += f", {totals['evictions']} evicted"
        if self.ok:
            status = "ok"
        else:
            # Name the casualties inline: corpus tasks carry their seed
            # in the id, so a truncated CI log alone says what to replay.
            named = ", ".join(r.task_id for r in self.failures[:5])
            if len(self.failures) > 5:
                named += f", +{len(self.failures) - 5} more"
            status = f"{len(self.failures)} task(s) FAILED ({named})"
        lines = (
            f"{table}\n{len(self.results)} tasks on {self.jobs} worker(s) "
            f"in {self.duration_s:.3f}s — {status}\n{cache_line}"
        )
        if self.retries or self.quarantined:
            lines += (
                f"\nsupervision: {self.retries} retried attempt(s), "
                f"{len(self.quarantined)} quarantined"
            )
        return lines


class _WaveOutcome:
    """What one pool wave produced, sorted by fate."""

    def __init__(self):
        self.finished: list[tuple[BatchTask, int, BatchResult]] = []
        self.casualties: list[tuple[BatchTask, int, str]] = []  # crash | timeout
        self.innocent: list[BatchTask] = []  # requeue, attempt not consumed


class BatchEngine:
    """Run batches of tasks across supervised worker processes.

    ``jobs=1`` runs inline (no pool); ``jobs>1`` uses a process pool
    whose workers are initialised with a clean ambient slate and their
    own :class:`~repro.batch.cache.DerivationCache` over the shared
    ``cache_dir`` (bounded by ``cache_max_bytes``).  ``default_budget``
    applies to tasks without one; ``retry`` governs supervision;
    ``journal`` enables checkpointing; ``faults`` installs a chaos plan
    (engine-wide and in every worker).
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache_dir: str | os.PathLike | None = None,
        default_budget: BudgetSpec | None = None,
        mp_start: str | None = None,
        retry: RetryPolicy | None = None,
        journal: str | os.PathLike | None = None,
        cache_max_bytes: int | None = None,
        faults: BatchFaultPlan | None = None,
        profile: ProfileConfig | None = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.default_budget = default_budget
        self.mp_start = mp_start
        self.retry = retry if retry is not None else RetryPolicy()
        self.journal_path = str(journal) if journal is not None else None
        self.cache_max_bytes = cache_max_bytes
        self.faults = faults
        self.profile = profile

    def _context(self) -> multiprocessing.context.BaseContext:
        method = self.mp_start or os.environ.get(MP_START_ENV)
        if method is None:
            method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        return multiprocessing.get_context(method)

    def _with_budgets(self, tasks: Sequence[BatchTask]) -> list[BatchTask]:
        if self.default_budget is None:
            return list(tasks)
        return [
            task if task.budget is not None
            else BatchTask(id=task.id, kind=task.kind, payload=task.payload,
                           budget=self.default_budget)
            for task in tasks
        ]

    def _effective_faults(self) -> BatchFaultPlan | None:
        return self.faults if self.faults is not None else get_batch_faults()

    def _effective_profile(self) -> ProfileConfig | None:
        return self.profile if self.profile is not None else get_profile_config()

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def run(self, tasks: Iterable[BatchTask]) -> BatchReport:
        """Execute every task; returns the merged report.

        Task ids must be unique — they key the per-task results, tag
        the merged event stream and address the journal.
        """
        todo = self._with_budgets(list(tasks))
        ids = [task.id for task in todo]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate task ids in batch: {ids}")
        journal = (
            RunJournal.create(self.journal_path, todo)
            if self.journal_path else None
        )
        return self._execute(todo, journal=journal, replay={})

    def resume(
        self,
        journal: str | os.PathLike,
        tasks: Iterable[BatchTask] | None = None,
    ) -> BatchReport:
        """Continue a journalled run: replay what finished, run the rest.

        The journal header carries the full task list, so ``tasks`` is
        optional; when given, it must fingerprint-match the journal
        (same ids, kinds, payloads, budgets, order) or ``ValueError``
        is raised — resuming a *different* batch from an old journal
        would silently splice unrelated results.  Quarantined results
        are not replayed: the crashed tasks get a fresh chance.
        """
        loaded = RunJournal.load(journal)
        if tasks is not None:
            supplied = self._with_budgets(list(tasks))
            if tasks_fingerprint(supplied) != loaded.fingerprint:
                raise ValueError(
                    f"journal {loaded.path} does not match the supplied task "
                    "list (fingerprint mismatch); resume with the original "
                    "inputs or none at all"
                )
        return self._execute(loaded.tasks, journal=loaded, replay=loaded.replayable())

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    def _execute(
        self,
        todo: list[BatchTask],
        *,
        journal: RunJournal | None,
        replay: dict[str, BatchResult],
    ) -> BatchReport:
        start = time.perf_counter()
        pending = [task for task in todo if task.id not in replay]
        incidents: list[dict[str, Any]] = []
        plan = self._effective_faults()
        if self.jobs == 1 or len(pending) <= 1:
            fresh = self._run_inline(pending, plan, journal, incidents)
        else:
            fresh = self._run_pool(pending, plan, journal, incidents)
        by_id = dict(replay)
        by_id.update(fresh)
        results = [by_id[task.id] for task in todo]
        duration = time.perf_counter() - start
        return BatchReport(
            results=results,
            jobs=self.jobs,
            duration_s=duration,
            cache_dir=self.cache_dir,
            incidents=(list(journal.incidents) if journal is not None else incidents),
            journal_path=str(journal.path) if journal is not None else None,
        )

    def _incident(
        self,
        incidents: list[dict[str, Any]],
        journal: RunJournal | None,
        **fields: Any,
    ) -> None:
        incidents.append(fields)
        if journal is not None:
            journal.append_incident(fields)
        name = f"batch.{fields.get('incident', 'incident')}"
        get_events().emit(name, **{k: v for k, v in fields.items() if k != "incident"})
        get_metrics().counter(
            "batch.retries" if fields.get("incident") == "retry"
            else "batch.quarantined" if fields.get("incident") == "quarantine"
            else "batch.pool_rebuilds"
        ).inc()

    def _finalize(
        self,
        result: BatchResult,
        journal: RunJournal | None,
        results: dict[str, BatchResult],
    ) -> None:
        results[result.task_id] = result
        if journal is not None:
            journal.append_result(result)

    def _quarantine_result(
        self, task: BatchTask, attempt: int, reason: str
    ) -> BatchResult:
        if reason == "timeout":
            error = (
                f"TaskTimeout: exceeded {self.retry.task_timeout}s wall clock "
                f"(after {attempt} attempt(s))"
            )
        else:
            error = (
                "WorkerCrash: worker process died while executing this task "
                f"(after {attempt} attempt(s))"
            )
        return BatchResult(
            task_id=task.id,
            kind=task.kind,
            ok=False,
            error=error,
            error_context={"reason": reason, "attempts": attempt},
            attempts=attempt,
            quarantined=True,
        )

    # -- inline ---------------------------------------------------------
    def _run_inline(
        self,
        pending: list[BatchTask],
        plan: BatchFaultPlan | None,
        journal: RunJournal | None,
        incidents: list[dict[str, Any]],
    ) -> dict[str, BatchResult]:
        cache = (
            DerivationCache(self.cache_dir, max_bytes=self.cache_max_bytes)
            if self.cache_dir else None
        )
        results: dict[str, BatchResult] = {}
        with use_cache(cache), use_batch_faults(plan), \
                use_profile_config(self._effective_profile()):
            for task in pending:
                self._finalize(
                    self._supervise_inline(task, journal, incidents),
                    journal, results,
                )
        return results

    def _supervise_inline(
        self,
        task: BatchTask,
        journal: RunJournal | None,
        incidents: list[dict[str, Any]],
    ) -> BatchResult:
        policy = self.retry
        attempt = 0
        while True:
            attempt += 1
            if attempt > 1:
                time.sleep(policy.backoff_before(attempt))
            try:
                result = execute_task(task, attempt, inline=True)
            except InjectedWorkerCrash:
                if attempt >= policy.max_attempts:
                    self._incident(incidents, journal, incident="quarantine",
                                   task=task.id, attempt=attempt, reason="crash")
                    return self._quarantine_result(task, attempt, "crash")
                self._incident(incidents, journal, incident="retry",
                               task=task.id, attempt=attempt, reason="crash")
                continue
            if result.ok or attempt >= policy.max_attempts:
                return result
            self._incident(incidents, journal, incident="retry",
                           task=task.id, attempt=attempt, reason="task-error",
                           error=result.error)

    # -- pooled ---------------------------------------------------------
    def _run_pool(
        self,
        pending: list[BatchTask],
        plan: BatchFaultPlan | None,
        journal: RunJournal | None,
        incidents: list[dict[str, Any]],
    ) -> dict[str, BatchResult]:
        policy = self.retry
        results: dict[str, BatchResult] = {}
        attempts_used: dict[str, int] = {task.id: 0 for task in pending}
        shared: list[BatchTask] = list(pending)
        isolated: list[BatchTask] = []
        wave_no = 0
        stalled = 0
        with tempfile.TemporaryDirectory(prefix="repro-batch-") as markers:
            marker_root = Path(markers)
            while shared or isolated:
                if isolated:
                    batch, workers = [isolated.pop(0)], 1
                else:
                    batch, shared = shared, []
                    workers = min(self.jobs, len(batch))
                wave_no += 1
                wave = [(task, attempts_used[task.id] + 1) for task in batch]
                for task, attempt in wave:
                    if attempt > 1:
                        time.sleep(policy.backoff_before(attempt))
                outcome = self._execute_wave(
                    wave, workers, marker_root / f"w{wave_no}", plan,
                    journal, incidents,
                )
                if not outcome.finished and not outcome.casualties:
                    stalled += 1
                    if stalled >= 3:
                        raise RuntimeError(
                            "batch pool keeps dying before executing any "
                            "task; giving up after 3 fruitless rebuilds"
                        )
                else:
                    stalled = 0
                for task, attempt, result in outcome.finished:
                    attempts_used[task.id] = attempt
                    result.attempts = attempt
                    if result.ok or attempt >= policy.max_attempts:
                        self._finalize(result, journal, results)
                    else:
                        self._incident(incidents, journal, incident="retry",
                                       task=task.id, attempt=attempt,
                                       reason="task-error", error=result.error)
                        shared.append(task)
                for task, attempt, reason in outcome.casualties:
                    attempts_used[task.id] = attempt
                    if attempt >= policy.max_attempts:
                        self._incident(incidents, journal, incident="quarantine",
                                       task=task.id, attempt=attempt, reason=reason)
                        self._finalize(
                            self._quarantine_result(task, attempt, reason),
                            journal, results,
                        )
                    else:
                        self._incident(incidents, journal, incident="retry",
                                       task=task.id, attempt=attempt, reason=reason)
                        # Crash suspects and hangers retry in isolation: a
                        # one-worker pool makes any repeat crash exactly
                        # attributable and keeps a repeat hang from
                        # stalling healthy neighbours.
                        isolated.append(task)
                shared.extend(outcome.innocent)
        return results

    def _execute_wave(
        self,
        wave: list[tuple[BatchTask, int]],
        workers: int,
        marker_dir: Path,
        plan: BatchFaultPlan | None,
        journal: RunJournal | None,
        incidents: list[dict[str, Any]],
    ) -> _WaveOutcome:
        marker_dir.mkdir(parents=True, exist_ok=True)
        outcome = _WaveOutcome()
        pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=self._context(),
            initializer=_worker_init,
            initargs=(self.cache_dir, self.cache_max_bytes, plan,
                      self._effective_profile()),
        )
        futures = [
            pool.submit(_supervised_entry, task, attempt,
                        str(marker_dir / f"{index}.started"))
            for index, (task, attempt) in enumerate(wave)
        ]
        harvested: set[int] = set()
        broken = False
        timed_out = False
        try:
            for index, (task, attempt) in enumerate(wave):
                try:
                    result = futures[index].result(timeout=self.retry.task_timeout)
                except concurrent.futures.TimeoutError:
                    # A running task cannot be cancelled; outlive it.
                    outcome.casualties.append((task, attempt, "timeout"))
                    harvested.add(index)
                    timed_out = True
                    break
                except BrokenProcessPool:
                    broken = True
                    break
                except Exception as exc:
                    # execute_task never raises Exception; reaching here
                    # means the *transport* failed (e.g. an unpicklable
                    # result).  Degrade it to a failed result.
                    outcome.finished.append((task, attempt, BatchResult(
                        task_id=task.id, kind=task.kind, ok=False,
                        error=f"{type(exc).__name__}: {exc}",
                        error_context={"reason": "transport"},
                        attempts=attempt,
                    )))
                    harvested.add(index)
                else:
                    outcome.finished.append((task, attempt, result))
                    harvested.add(index)
        finally:
            if broken or timed_out:
                self._terminate_pool(pool)
            else:
                pool.shutdown(wait=True)
        if not (broken or timed_out):
            return outcome
        self._incident(
            incidents, journal, incident="pool-rebuild",
            reason="crash" if broken else "timeout", wave=marker_dir.name,
        )
        # Post-mortem: pick through the wreckage in submission order.
        for index, (task, attempt) in enumerate(wave):
            if index in harvested:
                continue
            future = futures[index]
            if future.done():
                try:
                    outcome.finished.append((task, attempt, future.result(timeout=0)))
                    continue
                except BaseException:
                    pass  # cancelled or poisoned future: classify below
            started = (marker_dir / f"{index}.started").exists()
            if broken and started:
                # Started but never finished in a broken pool: a crash
                # suspect (the dead worker's task, or a co-victim).
                outcome.casualties.append((task, attempt, "crash"))
            else:
                # Never started (still queued), or torn down by our own
                # timeout teardown: innocent, requeue without charge.
                outcome.innocent.append(task)
        return outcome

    @staticmethod
    def _terminate_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down *now*: hung or orphaned workers included."""
        for process in list(getattr(pool, "_processes", {}).values()):
            try:
                process.kill()
            except Exception:
                pass
        pool.shutdown(wait=True, cancel_futures=True)


def run_batch(
    tasks: Iterable[BatchTask],
    *,
    jobs: int = 1,
    cache_dir: str | os.PathLike | None = None,
    default_budget: BudgetSpec | None = None,
    retry: RetryPolicy | None = None,
    journal: str | os.PathLike | None = None,
    cache_max_bytes: int | None = None,
    faults: BatchFaultPlan | None = None,
    profile: ProfileConfig | None = None,
) -> BatchReport:
    """One-call convenience over :class:`BatchEngine`."""
    engine = BatchEngine(
        jobs=jobs, cache_dir=cache_dir, default_budget=default_budget,
        retry=retry, journal=journal, cache_max_bytes=cache_max_bytes,
        faults=faults, profile=profile,
    )
    return engine.run(tasks)
