"""Content-addressed on-disk cache of derived state spaces and CTMCs.

State-space derivation and generator assembly dominate the tool chain's
wall-clock cost (Ding & Hillston, arXiv:1012.3040 — the machine-side
cost of numerically representing the process algebra), and batch
workloads repeat them: a sweep re-analyses the same model under the
same parameters, a re-run re-derives yesterday's state spaces.  This
cache makes the second derivation a file read.

Entries are addressed by :class:`repro.core.keys.DerivationKey` — a
stable SHA-256 over (model source, formalism, derivation parameters) —
so the address *is* the content identity: a changed rate value, a
different ``max_states``, a different formalism each hash to a
different entry, and stale hits are impossible by construction.

The store is a plain directory of entry files, two-level fanned-out by
digest prefix.  Each entry is a ``repro-cache/2`` record: a magic line,
the SHA-256 of the payload bytes, then the pickled payload — so
integrity is checkable without unpickling foreign bytes, both at fetch
time and by an explicit :meth:`DerivationCache.verify` sweep.  Writes
are atomic (payload serialised to bytes *first*, then temp file +
``os.replace``), so a crashed or concurrent writer can never publish a
half-written entry and a serialisation failure leaves nothing on disk.
Readers that encounter a corrupt file (truncation, bit rot, foreign
bytes, checksum mismatch) treat it as a miss, emit a ``cache.corrupt``
event, delete the carcass best-effort and re-derive; writers that hit
filesystem trouble (``ENOSPC``, permissions) degrade to not caching —
the cache can lose time, never correctness, and never a run.

``max_bytes`` bounds the store: after every publication the least
recently *used* entries (hits refresh an entry's mtime) are evicted
until the directory fits the budget, counted in
:attr:`CacheStats.evictions` and as ``cache.evict`` events, so a
long-running batch service cannot fill the disk.

Instrumented code reaches the cache the same way it reaches the tracer:
:func:`get_cache` returns the ambient instance installed by
:func:`set_cache`/:func:`use_cache`, defaulting to ``None`` (caching
off).  Hits/misses/corruption/evictions are counted on the instance, on
the ambient metrics registry (``cache.hits``/``cache.misses``/
``cache.corrupt``/``cache.evictions``, plus a ``cache.hit_rate`` gauge)
and as ``cache.hit``/``cache.miss``/``cache.corrupt``/``cache.evict``
events, so a batch report shows exactly how much exploration was
skipped and how much history was aged out.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.core.keys import DerivationKey
from repro.obs import get_events, get_metrics

__all__ = [
    "CacheStats",
    "DerivationCache",
    "get_cache",
    "set_cache",
    "use_cache",
]

#: On-disk pickle protocol; pinned so caches are portable across the
#: Python versions the CI matrix exercises (3.10 is the floor).
PICKLE_PROTOCOL = 4

#: Entry header: magic line, then the payload's SHA-256 hex digest on
#: its own line, then the pickled payload bytes.  Entries without the
#: magic (including any ``repro-cache/1`` era raw pickles) read as
#: corrupt and are purged — the cache self-heals across format bumps.
MAGIC = b"repro-cache/2\n"
_DIGEST_LEN = 64  # SHA-256 hex

#: Errors that mean "this entry is unreadable", not "this is a bug":
#: truncated pickles raise EOFError/UnpicklingError, foreign bytes can
#: raise almost anything from the pickle VM, missing classes raise
#: AttributeError/ImportError, filesystem trouble raises OSError.
_CORRUPTION_ERRORS = (
    EOFError,
    OSError,
    pickle.UnpicklingError,
    AttributeError,
    ImportError,
    IndexError,
    KeyError,
    ValueError,
    TypeError,
    MemoryError,
)


@dataclass
class CacheStats:
    """In-process tally of one cache instance's traffic."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    evictions: int = 0
    store_errors: int = 0

    def as_dict(self) -> dict[str, int]:
        """Return the counters as a plain dict (stable key order)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "evictions": self.evictions,
            "store_errors": self.store_errors,
        }


class DerivationCache:
    """A content-addressed, integrity-checked store under one directory.

    ``fetch``/``store`` are the whole protocol; payloads are plain
    dicts assembled by the call sites (state-space payloads in the
    derivation layers, CTMC payloads via
    :func:`repro.ctmc.serialize.ctmc_to_payload`).  Instances are safe
    to share between the processes of a batch run: the filesystem is
    the coordination point, and atomic publication makes concurrent
    writers idempotent (same key ⇒ same bytes).  ``max_bytes`` bounds
    the store with least-recently-used eviction (``None`` = unbounded).
    """

    def __init__(self, root: str | Path, *, max_bytes: int | None = None):
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.stats = CacheStats()

    def path_of(self, key: DerivationKey) -> Path:
        """Where ``key``'s entry lives (two-level digest fan-out)."""
        digest = key.digest
        return self.root / digest[:2] / f"{digest}.pkl"

    # ------------------------------------------------------------------
    # Entry codec: checksum header + pickle body
    # ------------------------------------------------------------------
    @staticmethod
    def _encode(payload: dict[str, Any]) -> bytes:
        """Serialise ``payload`` fully in memory (nothing touches disk)."""
        body = pickle.dumps(payload, protocol=PICKLE_PROTOCOL)
        digest = hashlib.sha256(body).hexdigest().encode("ascii")
        return MAGIC + digest + b"\n" + body

    @staticmethod
    def _decode(blob: bytes) -> dict[str, Any]:
        """Verify a record's checksum and unpickle its payload.

        Raises :class:`pickle.UnpicklingError` on any integrity
        problem, so corruption funnels into one handling path.
        """
        if not blob.startswith(MAGIC):
            raise pickle.UnpicklingError("cache entry has no repro-cache/2 header")
        header_end = len(MAGIC) + _DIGEST_LEN + 1
        digest = blob[len(MAGIC):len(MAGIC) + _DIGEST_LEN]
        body = blob[header_end:]
        if hashlib.sha256(body).hexdigest().encode("ascii") != digest:
            raise pickle.UnpicklingError("cache entry checksum mismatch")
        payload = pickle.loads(body)
        if not isinstance(payload, dict):
            raise pickle.UnpicklingError(
                f"cache entry is a {type(payload).__name__}, not a payload dict"
            )
        return payload

    def _record_hit_rate(self, metrics) -> None:
        seen = self.stats.hits + self.stats.misses
        if seen:
            metrics.gauge("cache.hit_rate").set(self.stats.hits / seen)

    # ------------------------------------------------------------------
    def fetch(self, key: DerivationKey) -> dict[str, Any] | None:
        """The stored payload for ``key``, or ``None`` on miss.

        A corrupt entry counts and reports as ``cache.corrupt`` (and as
        a miss), is deleted best-effort, and the caller re-derives.  A
        hit refreshes the entry's recency for LRU eviction.
        """
        path = self.path_of(key)
        metrics = get_metrics()
        try:
            payload = self._decode(path.read_bytes())
        except FileNotFoundError:
            self.stats.misses += 1
            metrics.counter("cache.misses").inc()
            self._record_hit_rate(metrics)
            get_events().emit("cache.miss", key=key.describe())
            return None
        except _CORRUPTION_ERRORS as exc:
            self.stats.corrupt += 1
            self.stats.misses += 1
            metrics.counter("cache.corrupt").inc()
            metrics.counter("cache.misses").inc()
            self._record_hit_rate(metrics)
            get_events().emit(
                "cache.corrupt", key=key.describe(), path=str(path),
                error=type(exc).__name__,
            )
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        metrics.counter("cache.hits").inc()
        self._record_hit_rate(metrics)
        get_events().emit("cache.hit", key=key.describe())
        try:
            os.utime(path)  # refresh recency: hits survive LRU eviction
        except OSError:
            pass
        return payload

    def store(self, key: DerivationKey, payload: dict[str, Any]) -> Path | None:
        """Atomically publish ``payload`` under ``key``.

        The payload is serialised to bytes *before* any file is
        created, so a serialisation failure raises without leaving a
        temp file (or anything else) behind.  Filesystem failures
        (``ENOSPC``, permissions) degrade gracefully: the entry simply
        isn't cached — counted in :attr:`CacheStats.store_errors` and
        reported as a ``cache.store_error`` event — and ``None`` is
        returned; the derivation result itself is unaffected.
        """
        from repro.resilience.faultinject import (
            maybe_fault_cache_bitflip, maybe_fault_cache_store,
        )

        record = self._encode(payload)  # may raise: nothing on disk yet
        path = self.path_of(key)
        tmp_name = None
        try:
            maybe_fault_cache_store(key)  # chaos drills: injected ENOSPC
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=f".{path.stem}.", suffix=".tmp"
            )
            with os.fdopen(fd, "wb") as fh:
                fh.write(record)
            os.replace(tmp_name, path)
        except OSError as exc:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            self.stats.store_errors += 1
            metrics = get_metrics()
            metrics.counter("cache.store_errors").inc()
            get_events().emit(
                "cache.store_error", key=key.describe(),
                error=type(exc).__name__, detail=str(exc),
            )
            return None
        self.stats.stores += 1
        get_metrics().counter("cache.stores").inc()
        get_events().emit("cache.store", key=key.describe())
        maybe_fault_cache_bitflip(path)  # chaos drills: corrupt the entry
        if self.max_bytes is not None:
            self._evict_to_budget()
        return path

    # ------------------------------------------------------------------
    # Hygiene: size budget and integrity sweep
    # ------------------------------------------------------------------
    def _entries(self) -> list[tuple[Path, os.stat_result]]:
        entries = []
        for entry in self.root.glob("*/*.pkl"):
            try:
                entries.append((entry, entry.stat()))
            except OSError:
                pass  # raced with a concurrent eviction/unlink
        return entries

    def total_bytes(self) -> int:
        """Current on-disk size of every entry, in bytes."""
        return sum(st.st_size for _, st in self._entries())

    def _evict_to_budget(self) -> int:
        """Unlink least-recently-used entries until the budget holds."""
        entries = self._entries()
        total = sum(st.st_size for _, st in entries)
        evicted = 0
        metrics = get_metrics()
        # Oldest mtime first; path as tie-break keeps the order stable.
        for path, st in sorted(entries, key=lambda e: (e[1].st_mtime, str(e[0]))):
            if total <= self.max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= st.st_size
            evicted += 1
            self.stats.evictions += 1
            metrics.counter("cache.evictions").inc()
            get_events().emit(
                "cache.evict", entry=path.stem[:12], bytes=st.st_size,
            )
        metrics.gauge("cache.bytes").set(total)
        return evicted

    def verify(self) -> dict[str, int]:
        """Integrity sweep: re-hash every entry, purge the corrupt ones.

        Each entry's checksum header is re-verified against its payload
        bytes (and the payload unpickled), so bit rot, torn writes and
        foreign files are all caught.  Corrupt entries count into
        :attr:`CacheStats.corrupt` (plus the ``cache.corrupt`` metric
        and event, tagged ``sweep=True``) and are deleted.  Returns
        ``{"checked", "ok", "corrupt", "purged"}``.
        """
        checked = ok = corrupt = purged = 0
        metrics = get_metrics()
        for path, _ in sorted(self._entries(), key=lambda e: str(e[0])):
            checked += 1
            try:
                self._decode(path.read_bytes())
            except _CORRUPTION_ERRORS as exc:
                corrupt += 1
                self.stats.corrupt += 1
                metrics.counter("cache.corrupt").inc()
                get_events().emit(
                    "cache.corrupt", path=str(path),
                    error=type(exc).__name__, sweep=True,
                )
                try:
                    path.unlink()
                    purged += 1
                except OSError:
                    pass
            else:
                ok += 1
        return {"checked": checked, "ok": ok, "corrupt": corrupt, "purged": purged}

    # ------------------------------------------------------------------
    def __contains__(self, key: DerivationKey) -> bool:
        return self.path_of(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for entry in self.root.glob("*/*.pkl"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:
        return f"DerivationCache({str(self.root)!r}, {self.stats.as_dict()})"


_active_cache: DerivationCache | None = None


def get_cache() -> DerivationCache | None:
    """The ambient cache the derivation layers consult (``None`` = off)."""
    return _active_cache


def set_cache(cache: DerivationCache | None) -> DerivationCache | None:
    """Install ``cache`` (``None`` = disable); returns the previous one."""
    global _active_cache
    previous = _active_cache
    _active_cache = cache
    return previous


@contextmanager
def use_cache(cache: DerivationCache | None) -> Iterator[DerivationCache | None]:
    """Scoped installation: the previous cache is restored on exit."""
    previous = set_cache(cache)
    try:
        yield cache
    finally:
        set_cache(previous)
