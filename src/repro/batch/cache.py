"""Content-addressed on-disk cache of derived state spaces and CTMCs.

State-space derivation and generator assembly dominate the tool chain's
wall-clock cost (Ding & Hillston, arXiv:1012.3040 — the machine-side
cost of numerically representing the process algebra), and batch
workloads repeat them: a sweep re-analyses the same model under the
same parameters, a re-run re-derives yesterday's state spaces.  This
cache makes the second derivation a file read.

Entries are addressed by :class:`repro.core.keys.DerivationKey` — a
stable SHA-256 over (model source, formalism, derivation parameters) —
so the address *is* the content identity: a changed rate value, a
different ``max_states``, a different formalism each hash to a
different entry, and stale hits are impossible by construction.

The store is a plain directory of pickle files, two-level fanned-out by
digest prefix.  Writes are atomic (temp file + ``os.replace``), so a
crashed or concurrent writer can never publish a half-written entry;
readers that still encounter a corrupt file (truncation, bit rot,
foreign bytes) treat it as a miss, emit a ``cache.corrupt`` event,
delete the carcass best-effort and re-derive — the cache can lose time,
never correctness.

Instrumented code reaches the cache the same way it reaches the tracer:
:func:`get_cache` returns the ambient instance installed by
:func:`set_cache`/:func:`use_cache`, defaulting to ``None`` (caching
off).  Hits/misses/corruption are counted on the instance, on the
ambient metrics registry (``cache.hits``/``cache.misses``/
``cache.corrupt``) and as ``cache.hit``/``cache.miss``/``cache.corrupt``
events, so a batch report shows exactly how much exploration was
skipped.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.core.keys import DerivationKey
from repro.obs import get_events, get_metrics

__all__ = [
    "CacheStats",
    "DerivationCache",
    "get_cache",
    "set_cache",
    "use_cache",
]

#: On-disk pickle protocol; pinned so caches are portable across the
#: Python versions the CI matrix exercises (3.10 is the floor).
PICKLE_PROTOCOL = 4

#: Errors that mean "this entry is unreadable", not "this is a bug":
#: truncated pickles raise EOFError/UnpicklingError, foreign bytes can
#: raise almost anything from the pickle VM, missing classes raise
#: AttributeError/ImportError, filesystem trouble raises OSError.
_CORRUPTION_ERRORS = (
    EOFError,
    OSError,
    pickle.UnpicklingError,
    AttributeError,
    ImportError,
    IndexError,
    KeyError,
    ValueError,
    TypeError,
    MemoryError,
)


@dataclass
class CacheStats:
    """In-process tally of one cache instance's traffic."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0

    def as_dict(self) -> dict[str, int]:
        """Return the four counters as a plain dict (stable key order)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
        }


class DerivationCache:
    """A content-addressed pickle store under one directory.

    ``fetch``/``store`` are the whole protocol; payloads are plain
    dicts assembled by the call sites (state-space payloads in the
    derivation layers, CTMC payloads via
    :func:`repro.ctmc.serialize.ctmc_to_payload`).  Instances are safe
    to share between the processes of a batch run: the filesystem is
    the coordination point, and atomic publication makes concurrent
    writers idempotent (same key ⇒ same bytes).
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def path_of(self, key: DerivationKey) -> Path:
        """Where ``key``'s entry lives (two-level digest fan-out)."""
        digest = key.digest
        return self.root / digest[:2] / f"{digest}.pkl"

    # ------------------------------------------------------------------
    def fetch(self, key: DerivationKey) -> dict[str, Any] | None:
        """The stored payload for ``key``, or ``None`` on miss.

        A corrupt entry counts and reports as ``cache.corrupt`` (and as
        a miss), is deleted best-effort, and the caller re-derives.
        """
        path = self.path_of(key)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            if not isinstance(payload, dict):
                raise pickle.UnpicklingError(
                    f"cache entry is a {type(payload).__name__}, not a payload dict"
                )
        except FileNotFoundError:
            self.stats.misses += 1
            get_metrics().counter("cache.misses").inc()
            get_events().emit("cache.miss", key=key.describe())
            return None
        except _CORRUPTION_ERRORS as exc:
            self.stats.corrupt += 1
            self.stats.misses += 1
            metrics = get_metrics()
            metrics.counter("cache.corrupt").inc()
            metrics.counter("cache.misses").inc()
            get_events().emit(
                "cache.corrupt", key=key.describe(), path=str(path),
                error=type(exc).__name__,
            )
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        get_metrics().counter("cache.hits").inc()
        get_events().emit("cache.hit", key=key.describe())
        return payload

    def store(self, key: DerivationKey, payload: dict[str, Any]) -> Path:
        """Atomically publish ``payload`` under ``key``; returns the path."""
        path = self.path_of(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.stem}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=PICKLE_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        get_metrics().counter("cache.stores").inc()
        get_events().emit("cache.store", key=key.describe())
        return path

    # ------------------------------------------------------------------
    def __contains__(self, key: DerivationKey) -> bool:
        return self.path_of(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for entry in self.root.glob("*/*.pkl"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:
        return f"DerivationCache({str(self.root)!r}, {self.stats.as_dict()})"


_active_cache: DerivationCache | None = None


def get_cache() -> DerivationCache | None:
    """The ambient cache the derivation layers consult (``None`` = off)."""
    return _active_cache


def set_cache(cache: DerivationCache | None) -> DerivationCache | None:
    """Install ``cache`` (``None`` = disable); returns the previous one."""
    global _active_cache
    previous = _active_cache
    _active_cache = cache
    return previous


@contextmanager
def use_cache(cache: DerivationCache | None) -> Iterator[DerivationCache | None]:
    """Scoped installation: the previous cache is restored on exit."""
    previous = set_cache(cache)
    try:
        yield cache
    finally:
        set_cache(previous)
