"""``repro.batch`` — parallel batch execution and derivation caching.

Two cooperating pieces turn the one-diagram-at-a-time Choreographer
into a throughput machine:

* :mod:`repro.batch.cache` — a content-addressed on-disk cache of
  derived state spaces and generator matrices, keyed by
  :class:`repro.core.keys.DerivationKey` (a stable hash of model
  source, formalism and derivation parameters), consulted ambiently by
  the derivation layers so *any* repeated derivation — same diagram
  twice in a document, the same model across sweep runs — is a file
  read instead of a BFS;
* :mod:`repro.batch.engine` — a multiprocess work-queue engine running
  Choreographer pipelines, experiment sweeps and bench workloads
  across N workers, each with its own ambient observability and
  per-task :class:`~repro.resilience.budget.BudgetSpec`, merging the
  workers' traces/metrics/events back into the single documents the
  analysis tooling consumes — under supervision (retry with backoff,
  pool rebuild on worker death, per-task timeouts, quarantine) so one
  crashed worker never takes the batch down;
* :mod:`repro.batch.journal` — the append-only ``repro-journal/1``
  checkpoint file a supervised run writes per completed task, and the
  resume path that replays it.

This module eagerly exposes only the cache layer; the engine (which
pulls in the whole tool chain via its task runners) loads on first
attribute access, so low-level modules may import
``repro.batch.cache`` without dragging the Choreographer along.
"""

from __future__ import annotations

from typing import Any

from repro.batch.cache import (
    CacheStats,
    DerivationCache,
    get_cache,
    set_cache,
    use_cache,
)

__all__ = [
    "BatchEngine",
    "BatchReport",
    "BatchResult",
    "BatchTask",
    "CacheStats",
    "DerivationCache",
    "RetryPolicy",
    "RunJournal",
    "get_cache",
    "run_batch",
    "set_cache",
    "use_cache",
]

_ENGINE_EXPORTS = {
    "BatchEngine", "BatchReport", "BatchResult", "BatchTask", "RetryPolicy",
    "run_batch",
}
_JOURNAL_EXPORTS = {"RunJournal"}


def __getattr__(name: str) -> Any:
    if name in _ENGINE_EXPORTS:
        from repro.batch import engine

        return getattr(engine, name)
    if name in _JOURNAL_EXPORTS:
        from repro.batch import journal

        return getattr(journal, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
