"""The append-only run journal: checkpoint/resume for batch runs.

A long analysis batch is exactly the workload that dies at 90%: the
machine reboots, the OOM killer strikes, someone hits Ctrl-C.  The
journal makes that survivable.  As a supervised run proceeds, every
*final* per-task outcome (and every supervision incident along the
way) is appended to a JSONL file, one fsync'd line per record, so the
journal on disk is always a consistent prefix of the run — at worst
the line being written when the process died is torn, and a torn
trailing line is tolerated and ignored on load.

File layout (schema ``repro-journal/1``)::

    {"schema": "repro-journal/1", "fingerprint": "…", "tasks": [...]}
    {"record": "result", "result": {…}}
    {"record": "incident", "incident": {…}}
    ...

The header embeds the *full serialised task list* — ids, kinds,
payloads, budgets — so ``choreographer batch --resume JOURNAL`` needs
no other input: the journal alone reconstructs the run.  The
``fingerprint`` is :func:`repro.core.keys.stable_digest` over that
task list, letting :meth:`BatchEngine.resume` refuse a journal that
does not match a caller-supplied task list.

Resume semantics: completed results recorded in the journal are
*replayed* verbatim (the task is not re-run), tasks without a recorded
result are executed, and the merged report is assembled in original
task order — so a kill-resume-run produces measures JSON byte-identical
to an uninterrupted run, the property the chaos battery pins.
Quarantined results are deliberately *not* replayed: a resume is a
fresh chance for the tasks that crashed out.  If the same task
completes twice across resumed runs, the last record wins.

Incident records (retries, quarantines, pool rebuilds) are an audit
trail only — they never influence replay, and they accumulate across
resumed runs so the full failure history of a batch stays in one file.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.core.keys import stable_digest
from repro.resilience.budget import BudgetSpec

__all__ = ["JOURNAL_SCHEMA", "RunJournal", "task_to_dict", "task_from_dict",
           "result_to_dict", "result_from_dict"]

JOURNAL_SCHEMA = "repro-journal/1"


# ---------------------------------------------------------------------------
# Task / result (de)serialisation
# ---------------------------------------------------------------------------
def task_to_dict(task) -> dict[str, Any]:
    """A JSON-able description of a :class:`~repro.batch.engine.BatchTask`."""
    document: dict[str, Any] = {
        "id": task.id, "kind": task.kind, "payload": task.payload,
    }
    if task.budget is not None:
        document["budget"] = {
            "deadline_seconds": task.budget.deadline_seconds,
            "max_states": task.budget.max_states,
            "check_every": task.budget.check_every,
        }
    return document


def task_from_dict(document: dict[str, Any]):
    """Rebuild a :class:`~repro.batch.engine.BatchTask` from its journal form."""
    from repro.batch.engine import BatchTask

    budget = document.get("budget")
    return BatchTask(
        id=document["id"],
        kind=document["kind"],
        payload=document.get("payload", {}),
        budget=BudgetSpec(
            deadline_seconds=budget.get("deadline_seconds"),
            max_states=budget.get("max_states"),
            check_every=budget.get("check_every", 64),
        ) if budget is not None else None,
    )


def result_to_dict(result) -> dict[str, Any]:
    """A JSON-able description of a :class:`~repro.batch.engine.BatchResult`."""
    return {
        "task_id": result.task_id,
        "kind": result.kind,
        "ok": result.ok,
        "measures": result.measures,
        "error": result.error,
        "error_context": result.error_context,
        "duration_s": result.duration_s,
        "attempts": result.attempts,
        "quarantined": result.quarantined,
        "trace": result.trace,
        "metrics": result.metrics,
        "events": result.events,
        "cache": result.cache,
        "profile": result.profile,
    }


def result_from_dict(document: dict[str, Any]):
    """Rebuild a :class:`~repro.batch.engine.BatchResult` from its journal form."""
    from repro.batch.engine import BatchResult

    return BatchResult(
        task_id=document["task_id"],
        kind=document["kind"],
        ok=document["ok"],
        measures=document.get("measures", {}),
        error=document.get("error"),
        error_context=document.get("error_context", {}),
        duration_s=document.get("duration_s", 0.0),
        attempts=document.get("attempts", 1),
        quarantined=document.get("quarantined", False),
        trace=document.get("trace", {"schema": "repro-trace/1", "traces": []}),
        metrics=document.get("metrics", {"schema": "repro-metrics/1", "metrics": {}}),
        events=document.get("events", []),
        cache=document.get("cache", {}),
        profile=document.get("profile", {}),
    )


def tasks_fingerprint(tasks: Iterable) -> str:
    """A stable digest over a task list (order-sensitive, budget-inclusive)."""
    return stable_digest({"tasks": [task_to_dict(task) for task in tasks]})


# ---------------------------------------------------------------------------
# The journal itself
# ---------------------------------------------------------------------------
@dataclass
class RunJournal:
    """One batch run's append-only checkpoint file.

    Create with :meth:`create` (writes the header) or :meth:`load` (an
    existing journal, for resume).  :meth:`append_result` /
    :meth:`append_incident` each write one line and fsync, so every
    completed task survives any subsequent crash.
    """

    path: Path
    tasks: list = field(default_factory=list)
    fingerprint: str = ""
    #: Final per-task results on record, keyed by task id (last wins).
    results: dict[str, Any] = field(default_factory=dict)
    #: Supervision incidents (retries, quarantines, pool rebuilds), in order.
    incidents: list[dict[str, Any]] = field(default_factory=list)

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, path: str | os.PathLike, tasks: Iterable) -> "RunJournal":
        """Start a fresh journal: write the header line, fsync, return."""
        task_list = list(tasks)
        journal = cls(
            path=Path(path),
            tasks=task_list,
            fingerprint=tasks_fingerprint(task_list),
        )
        journal.path.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "schema": JOURNAL_SCHEMA,
            "fingerprint": journal.fingerprint,
            "tasks": [task_to_dict(task) for task in task_list],
        }
        with open(journal.path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(header, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        return journal

    @classmethod
    def load(cls, path: str | os.PathLike) -> "RunJournal":
        """Read a journal back, tolerating a torn trailing line.

        Raises :class:`ValueError` on a missing/foreign header; a
        malformed *last* line (the one being written when the previous
        run died) is silently dropped; a malformed line anywhere else
        is real corruption and raises.
        """
        path = Path(path)
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        if not lines:
            raise ValueError(f"journal {path} is empty")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise ValueError(f"journal {path} has an unreadable header") from exc
        if not isinstance(header, dict) or header.get("schema") != JOURNAL_SCHEMA:
            raise ValueError(
                f"journal {path} is not a {JOURNAL_SCHEMA} file "
                f"(got schema {header.get('schema') if isinstance(header, dict) else None!r})"
            )
        journal = cls(
            path=path,
            tasks=[task_from_dict(doc) for doc in header.get("tasks", [])],
            fingerprint=header.get("fingerprint", ""),
        )
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines):
                    break  # torn trailing line: the crash we exist to survive
                raise ValueError(
                    f"journal {path} line {lineno} is corrupt (not trailing)"
                )
            kind = record.get("record")
            if kind == "result":
                result = result_from_dict(record["result"])
                journal.results[result.task_id] = result
            elif kind == "incident":
                journal.incidents.append(record["incident"])
            # Unknown record kinds are skipped: forward compatibility.
        return journal

    # ------------------------------------------------------------------
    def _append(self, record: dict[str, Any]) -> None:
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def append_result(self, result) -> None:
        """Checkpoint one final per-task result (one fsync'd line)."""
        self._append({"record": "result", "result": result_to_dict(result)})
        self.results[result.task_id] = result

    def append_incident(self, incident: dict[str, Any]) -> None:
        """Record a supervision incident (retry/quarantine/pool rebuild)."""
        self._append({"record": "incident", "incident": incident})
        self.incidents.append(incident)

    # ------------------------------------------------------------------
    def replayable(self) -> dict[str, Any]:
        """Results safe to replay on resume: everything not quarantined.

        A quarantined task crashed out of its previous run; resume gives
        it a fresh chance rather than replaying the failure.
        """
        return {
            task_id: result
            for task_id, result in self.results.items()
            if not result.quarantined
        }

    def pending(self) -> list:
        """Tasks with no replayable result, in original task order."""
        done = self.replayable()
        return [task for task in self.tasks if task.id not in done]
