"""Merging per-worker observability snapshots into one coherent view.

The batch engine (:mod:`repro.batch.engine`) runs each task in its own
process under a fresh tracer, metrics registry and event stream; what
comes back over the pipe are their JSON-ready snapshots.  These
functions fold any number of such snapshots into the single documents
the rest of the tool chain already understands — ``repro-trace/1`` for
``choreographer analyze-trace``/``diff-trace``, ``repro-metrics/1`` for
the metrics table, flat event dicts for ``repro-events/1`` JSONL — so
parallel runs are analysed with exactly the tools serial runs use.

Merging is deterministic: snapshots are folded in the order given
(task-submission order, not completion order), counters and histograms
are commutative sums, and gauges resolve to the last non-``None`` value
in fold order.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["merge_metrics", "merge_traces", "merge_events", "merge_profiles"]


def _merge_instrument(into: dict[str, Any], snap: dict[str, Any], name: str) -> None:
    kind = snap.get("type")
    have = into.get(name)
    if have is None:
        into[name] = dict(snap)
        return
    if have.get("type") != kind:
        raise ValueError(
            f"metric {name!r} is a {have.get('type')} in one snapshot and a "
            f"{kind} in another; refusing to merge"
        )
    if kind == "counter":
        have["value"] = have["value"] + snap["value"]
    elif kind == "gauge":
        if snap.get("value") is not None:
            have["value"] = snap["value"]
    elif kind == "histogram":
        have["count"] = have["count"] + snap["count"]
        have["sum"] = have["sum"] + snap["sum"]
        for bound, pick in (("min", min), ("max", max)):
            values = [v for v in (have.get(bound), snap.get(bound)) if v is not None]
            have[bound] = pick(values) if values else None
        have["mean"] = have["sum"] / have["count"] if have["count"] else None
    else:
        raise ValueError(f"metric {name!r} has unknown type {kind!r}")


def merge_metrics(snapshots: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Fold ``repro-metrics/1`` snapshots into one combined snapshot.

    Counters sum, histograms combine count/sum/min/max (mean is
    recomputed), gauges keep the last non-``None`` value in fold order.
    """
    merged: dict[str, Any] = {}
    for snapshot in snapshots:
        schema = snapshot.get("schema")
        if schema != "repro-metrics/1":
            raise ValueError(f"not a repro-metrics/1 snapshot: schema={schema!r}")
        for name, instrument in snapshot.get("metrics", {}).items():
            _merge_instrument(merged, instrument, name)
    return {
        "schema": "repro-metrics/1",
        "metrics": {name: merged[name] for name in sorted(merged)},
    }


def merge_traces(documents: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Concatenate ``repro-trace/1`` documents into one span forest.

    Each worker's roots (one per diagram/task) are appended in fold
    order, so the merged document reads like one long serial run and
    ``analyze-trace`` aggregates across every worker.
    """
    traces: list[dict[str, Any]] = []
    for document in documents:
        schema = document.get("schema")
        if schema != "repro-trace/1":
            raise ValueError(f"not a repro-trace/1 document: schema={schema!r}")
        traces.extend(document.get("traces", []))
    return {"schema": "repro-trace/1", "traces": traces}


def merge_profiles(documents: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Fold ``repro-profile/1`` documents into one combined profile.

    Per-stack sample counts are commutative sums, so the merged
    ``samples``/``collapsed`` view is exact.  Per-sample *timelines* are
    not mergeable — each worker's clock starts at its own task — so the
    merged document carries an empty timeline and accounts every
    dropped entry in ``timeline_dropped``.  The sampling interval is
    taken from the first enabled document (workers share one
    :class:`~repro.obs.profile.ProfileConfig`, so they agree).
    """
    samples: dict[str, int] = {}
    sample_count = 0
    timeline_dropped = 0
    interval = 0.0
    for document in documents:
        schema = document.get("schema")
        if schema != "repro-profile/1":
            raise ValueError(f"not a repro-profile/1 document: schema={schema!r}")
        if not interval and document.get("interval_s"):
            interval = float(document["interval_s"])
        for stack, count in document.get("samples", {}).items():
            samples[stack] = samples.get(stack, 0) + int(count)
        sample_count += int(document.get("sample_count", 0))
        timeline_dropped += (len(document.get("timeline", []))
                             + int(document.get("timeline_dropped", 0)))
    return {
        "schema": "repro-profile/1",
        "interval_s": interval,
        "sample_count": sample_count,
        "samples": {stack: samples[stack] for stack in sorted(samples)},
        "timeline": [],
        "timeline_dropped": timeline_dropped,
    }


def merge_events(
    streams: Sequence[tuple[str, Sequence[dict[str, Any]]]],
) -> list[dict[str, Any]]:
    """Concatenate per-task event lists, tagging each with its task id.

    ``streams`` is ``[(task_id, events), ...]`` in task order; within a
    task the worker's own emission order is preserved, so the merged
    list is deterministic under any worker scheduling.
    """
    merged: list[dict[str, Any]] = []
    for task_id, events in streams:
        for event in events:
            tagged = dict(event)
            tagged.setdefault("task", task_id)
            merged.append(tagged)
    return merged
