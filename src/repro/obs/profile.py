"""Low-overhead wall-clock sampling profiler + per-span resource probe.

Spans say which *stage* the time went to; the profiler says where
*inside* a stage it went.  A :class:`SamplingProfiler` runs a daemon
thread that wakes every ``interval`` seconds, snapshots the target
thread's Python stack via ``sys._current_frames()``, prefixes it with
the ambient span stack (:meth:`repro.obs.tracing.Tracer.stack_names`),
and folds the sample into a counter keyed by the collapsed stack — the
format flamegraph.pl and speedscope load directly::

    profiler = SamplingProfiler(interval=0.005)
    with profiler:
        run_pipeline(...)
    Path("profile.folded").write_text(profiler.collapsed())

Sampling is statistical and cheap: the profiled thread is never
stopped, traced or patched, so enabled overhead stays inside the
documented <15% envelope (measured low single digits at the default
5 ms interval) and *disabled* overhead is one ambient lookup returning
the shared :data:`NULL_PROFILER` — the same zero-cost-when-off
contract as :mod:`repro.obs.tracing`.

Deterministic per-span resource accounting is separate from sampling:
a :class:`SpanResourceProbe` installed via :func:`use_resource_probe`
stamps every closed span with its ``cpu_s`` (``time.process_time``
delta) and, when built with ``memory=True`` (the ``--profile-memory``
flag), ``mem_peak_kib``/``mem_alloc_kib`` from ``tracemalloc`` — exact
measurements, not samples, so they are stable run to run.

Fork safety mirrors the other collectors: :func:`repro.obs.reset_ambient`
clears the ambient profiler and profile config, so a batch worker
never inherits the parent's sampler; each worker starts its own
profiler per task (driven by the :class:`ProfileConfig` the pool
initialiser installs) and the per-task sample sets merge through
:func:`repro.obs.merge.merge_profiles`.
"""

from __future__ import annotations

import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

from repro.obs.tracing import get_tracer, set_resource_probe

__all__ = [
    "PROFILE_SCHEMA",
    "DEFAULT_INTERVAL",
    "ProfileConfig",
    "SamplingProfiler",
    "NullProfiler",
    "NULL_PROFILER",
    "SpanResourceProbe",
    "get_profiler",
    "set_profiler",
    "use_profiler",
    "get_profile_config",
    "set_profile_config",
    "use_profile_config",
    "use_resource_probe",
    "collapsed_text",
]

PROFILE_SCHEMA = "repro-profile/1"

#: Default sampling period: 5 ms ≈ 200 Hz, enough resolution to split a
#: 100 ms stage while keeping the sampler thread mostly asleep.
DEFAULT_INTERVAL = 0.005

#: Bound on the per-sample timeline kept for the Chrome-trace sampled
#: track; the aggregated counters are unbounded (their cardinality is
#: the number of distinct stacks, not the number of samples).
TIMELINE_CAPACITY = 10_000


@dataclass(frozen=True)
class ProfileConfig:
    """How an entrypoint wants its run profiled.

    Carried into batch workers through the pool initialiser (it is
    picklable), so ``--profile`` on the CLI profiles every worker
    independently.  ``memory=True`` additionally installs a
    ``tracemalloc``-backed :class:`SpanResourceProbe` (measurably
    slower; keep it opt-in behind ``--profile-memory``).
    """

    interval: float = DEFAULT_INTERVAL
    memory: bool = False

    def __post_init__(self):
        if self.interval <= 0:
            raise ValueError(f"profile interval must be > 0, got {self.interval}")


class SamplingProfiler:
    """Wall-clock stack sampler attributed to the ambient span stack.

    ``target_thread`` is the thread ident to sample (default: the
    creating thread); ``tracer`` the tracer whose span stack prefixes
    every sample (default: resolved via ``get_tracer()`` at sample
    time, so the profiler composes with scoped ``use_tracer`` blocks).
    """

    enabled = True

    def __init__(self, interval: float = DEFAULT_INTERVAL, *,
                 target_thread: int | None = None, tracer=None):
        if interval <= 0:
            raise ValueError(f"profile interval must be > 0, got {interval}")
        self.interval = interval
        self.samples: dict[tuple[str, ...], int] = {}
        self.sample_count = 0
        self.timeline: list[tuple[float, str]] = []
        self.timeline_dropped = 0
        self._target = target_thread if target_thread is not None else threading.get_ident()
        self._tracer = tracer
        self._epoch = 0.0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        """Spawn the sampling daemon thread (idempotent); returns self."""
        if self._thread is None:
            self._epoch = time.perf_counter()
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-profiler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        """Stop sampling and join the daemon thread; returns self."""
        thread = self._thread
        if thread is not None:
            self._stop.set()
            thread.join()
            self._thread = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self._sample()
            except Exception:  # pragma: no cover — sampling must never kill a run
                pass

    def _sample(self) -> None:
        frame = sys._current_frames().get(self._target)
        if frame is None:
            return
        stack: list[str] = []
        while frame is not None:
            code = frame.f_code
            filename = code.co_filename.rsplit("/", 1)[-1]
            stack.append(f"{code.co_name} ({filename}:{code.co_firstlineno})")
            frame = frame.f_back
        stack.reverse()  # root first, collapsed-stack order
        tracer = self._tracer if self._tracer is not None else get_tracer()
        key = tuple(tracer.stack_names()) + tuple(stack)
        self.record(key)

    def record(self, stack: tuple[str, ...],
               count: int = 1, t: float | None = None) -> None:
        """Fold one (or ``count``) sample(s) of ``stack`` into the counters.

        Exposed so tests and replays can inject deterministic samples;
        the daemon thread is just a repeated caller.
        """
        self.samples[stack] = self.samples.get(stack, 0) + count
        self.sample_count += count
        when = time.perf_counter() - self._epoch if t is None else t
        if len(self.timeline) < TIMELINE_CAPACITY:
            self.timeline.append((when, ";".join(stack)))
        else:
            self.timeline_dropped += count

    # ------------------------------------------------------------------
    def collapsed(self) -> str:
        """The samples in collapsed-stack format (one ``a;b;c N`` line
        per distinct stack, sorted), loadable by flamegraph/speedscope."""
        lines = [
            f"{';'.join(stack)} {count}"
            for stack, count in sorted(self.samples.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready rendering: schema, interval, aggregated samples,
        and the (bounded) per-sample timeline for the Chrome exporter."""
        return {
            "schema": PROFILE_SCHEMA,
            "interval_s": self.interval,
            "sample_count": self.sample_count,
            "samples": {
                ";".join(stack): count
                for stack, count in sorted(self.samples.items())
            },
            "timeline": [[round(t, 6), stack] for t, stack in self.timeline],
            "timeline_dropped": self.timeline_dropped,
        }


class NullProfiler:
    """The disabled profiler: no thread, no samples, queries see empty."""

    enabled = False
    interval = 0.0
    sample_count = 0
    samples: dict[tuple[str, ...], int] = {}
    timeline: list[tuple[float, str]] = []
    timeline_dropped = 0

    def start(self) -> "NullProfiler":
        """No-op: nothing is ever sampled."""
        return self

    def stop(self) -> "NullProfiler":
        """No-op: there is nothing to stop."""
        return self

    def __enter__(self) -> "NullProfiler":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def record(self, stack: tuple[str, ...],
               count: int = 1, t: float | None = None) -> None:
        """No-op: samples vanish."""
        pass

    def collapsed(self) -> str:
        """Always empty: nothing is ever sampled."""
        return ""

    def to_dict(self) -> dict[str, Any]:
        """An empty but schema-valid profile document."""
        return {
            "schema": PROFILE_SCHEMA,
            "interval_s": 0.0,
            "sample_count": 0,
            "samples": {},
            "timeline": [],
            "timeline_dropped": 0,
        }


#: The process-wide default: profiling off.
NULL_PROFILER = NullProfiler()

_active_profiler: SamplingProfiler | NullProfiler = NULL_PROFILER
_active_config: ProfileConfig | None = None


def get_profiler() -> SamplingProfiler | NullProfiler:
    """The ambient profiler (the shared no-op one unless installed)."""
    return _active_profiler


def set_profiler(
    profiler: SamplingProfiler | NullProfiler | None,
) -> SamplingProfiler | NullProfiler:
    """Install ``profiler`` (``None`` = disable); returns the previous one."""
    global _active_profiler
    previous = _active_profiler
    _active_profiler = NULL_PROFILER if profiler is None else profiler
    return previous


@contextmanager
def use_profiler(
    profiler: SamplingProfiler | NullProfiler,
) -> Iterator[SamplingProfiler | NullProfiler]:
    """Scoped installation: the previous profiler is restored on exit."""
    previous = set_profiler(profiler)
    try:
        yield profiler
    finally:
        set_profiler(previous)


def get_profile_config() -> ProfileConfig | None:
    """The ambient profiling request (``None`` = profiling off)."""
    return _active_config


def set_profile_config(config: ProfileConfig | None) -> ProfileConfig | None:
    """Install ``config`` (``None`` = off); returns the previous one."""
    global _active_config
    previous = _active_config
    _active_config = config
    return previous


@contextmanager
def use_profile_config(config: ProfileConfig | None) -> Iterator[ProfileConfig | None]:
    """Scoped installation: the previous config is restored on exit."""
    previous = set_profile_config(config)
    try:
        yield config
    finally:
        set_profile_config(previous)


def collapsed_text(document: dict[str, Any]) -> str:
    """A ``repro-profile/1`` document's samples in collapsed-stack format.

    The document-side twin of :meth:`SamplingProfiler.collapsed`, for
    profiles that only exist as JSON (a ledger run document, a merged
    batch profile).
    """
    lines = [
        f"{stack} {count}"
        for stack, count in sorted(document.get("samples", {}).items())
    ]
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# Deterministic per-span resource accounting
# ---------------------------------------------------------------------------
class SpanResourceProbe:
    """Stamps every closed span with exact CPU (and memory) deltas.

    Installed via :func:`use_resource_probe`; :class:`~repro.obs.tracing.Span`
    calls :meth:`begin` at open and :meth:`finish` at close.  CPU is the
    process-wide ``time.process_time`` delta over the span's window —
    nested spans include their children, exactly like wall duration.
    With ``memory=True`` the probe also records the net ``tracemalloc``
    allocation delta (``mem_alloc_kib``) and the traced peak over the
    span window (``mem_peak_kib``; each span open resets the peak, so a
    parent's figure covers the window since its last child opened).
    """

    def __init__(self, memory: bool = False):
        self.memory = memory
        self._started_tracemalloc = False
        if memory:
            import tracemalloc

            self._tracemalloc = tracemalloc
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True

    def close(self) -> None:
        """Stop tracemalloc if this probe started it."""
        if self._started_tracemalloc:
            self._tracemalloc.stop()
            self._started_tracemalloc = False

    def begin(self) -> tuple[float, int]:
        """Called at span open: the CPU/memory baseline to diff against."""
        current = 0
        if self.memory:
            current, _peak = self._tracemalloc.get_traced_memory()
            self._tracemalloc.reset_peak()
        return (time.process_time(), current)

    def finish(self, span, token: tuple[float, int]) -> None:
        """Called at span close: stamp the deltas since :meth:`begin`."""
        cpu0, mem0 = token
        span.attributes["cpu_s"] = round(time.process_time() - cpu0, 9)
        if self.memory:
            current, peak = self._tracemalloc.get_traced_memory()
            span.attributes["mem_alloc_kib"] = round((current - mem0) / 1024, 3)
            span.attributes["mem_peak_kib"] = round(max(0, peak - mem0) / 1024, 3)


@contextmanager
def use_resource_probe(probe: SpanResourceProbe | None) -> Iterator[SpanResourceProbe | None]:
    """Scoped span-resource accounting; restores the previous probe."""
    previous = set_resource_probe(probe)
    try:
        yield probe
    finally:
        set_resource_probe(previous)
        if probe is not None:
            probe.close()
