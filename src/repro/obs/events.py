"""Bounded structured event streams for solver and exploration internals.

Spans say *where* the time went; events say *what the numerics were
doing while it went*.  An :class:`EventStream` is a bounded append-only
recorder of timestamped, named, keyed observations — one event per
solver iteration (``solver.convergence``), one per uniformisation step
(``uniformization.step``), one every N explored states
(``explore.progress``) — so a slow solve can be replayed residual by
residual instead of summarised by its final number (the behaviour Ding
& Hillston, arXiv:1012.3040, argue is the interesting object).

The design mirrors :mod:`repro.obs.tracing` exactly: instrumented code
asks :func:`get_events` for the ambient stream, which defaults to the
shared no-op :data:`NULL_EVENTS`, so disabled runs pay one method call
per *potential* event and nothing else.  Emitters that must compute a
value just to record it (an extra residual norm, a clock read) guard on
``get_events().enabled`` first.

The buffer is bounded (default :data:`DEFAULT_CAPACITY`): when full,
the oldest events are evicted and counted in :attr:`EventStream.dropped`
— a long power-iteration solve cannot grow memory without bound, and
the tail (the interesting part of a convergence history) is what
survives.

Serialisation is JSON Lines, one event per line, so streams concatenate
and stream through standard tooling::

    stream = EventStream()
    with use_events(stream):
        steady_state(chain, method="gmres")
    write_events_jsonl("events.jsonl", stream)
    # {"event": "solver.convergence", "t_s": 0.0012, "solver": "gmres",
    #  "iteration": 1, "residual": 3.2e-05}
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "Event",
    "EventStream",
    "NullEventStream",
    "NULL_EVENTS",
    "DEFAULT_CAPACITY",
    "get_events",
    "set_events",
    "use_events",
    "write_events_jsonl",
    "read_events_jsonl",
]

#: Default bound on buffered events; old events are evicted (and
#: counted) past this, so even a million-iteration solve stays flat.
DEFAULT_CAPACITY = 10_000


class Event:
    """One named, timestamped observation with arbitrary scalar fields."""

    __slots__ = ("name", "t", "fields")

    def __init__(self, name: str, t: float, fields: dict[str, Any]):
        self.name = name
        self.t = t
        self.fields = fields

    def to_dict(self) -> dict[str, Any]:
        """Flat JSON-ready rendering: ``event``, ``t_s``, then fields."""
        out: dict[str, Any] = {"event": self.name, "t_s": round(self.t, 9)}
        out.update(self.fields)
        return out

    def __repr__(self) -> str:
        kv = ", ".join(f"{k}={v!r}" for k, v in self.fields.items())
        return f"Event({self.name!r}, t={self.t:.6f}{', ' + kv if kv else ''})"


class EventStream:
    """A bounded, append-only recorder of structured events.

    Timestamps are seconds since the stream was created (monotonic), so
    events from one run line up with the run's span tree without any
    wall-clock coupling.
    """

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError(f"event stream capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.dropped = 0
        self._epoch = time.perf_counter()
        self._events: deque[Event] = deque()

    def emit(self, name: str, **fields: Any) -> None:
        """Append one event, evicting (and counting) the oldest if full."""
        if len(self._events) >= self.capacity:
            self._events.popleft()
            self.dropped += 1
        self._events.append(Event(name, time.perf_counter() - self._epoch, fields))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def by_name(self, name: str) -> list[Event]:
        """Every buffered event called ``name``, oldest first."""
        return [e for e in self._events if e.name == name]

    def names(self) -> list[str]:
        """The distinct event names seen, sorted."""
        return sorted({e.name for e in self._events})

    def clear(self) -> None:
        """Drop every buffered event and reset the eviction count."""
        self._events.clear()
        self.dropped = 0

    def to_dicts(self) -> list[dict[str, Any]]:
        """Every buffered event as a flat JSON-ready dict, oldest first."""
        return [e.to_dict() for e in self._events]


class NullEventStream:
    """The disabled stream: emits vanish, queries see an empty stream."""

    enabled = False
    capacity = 0
    dropped = 0

    def emit(self, name: str, **fields: Any) -> None:
        """No-op: nothing is ever recorded."""
        pass

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[Event]:
        return iter(())

    def by_name(self, name: str) -> list[Event]:
        """Always empty: nothing is ever recorded."""
        return []

    def names(self) -> list[str]:
        """Always empty: nothing is ever recorded."""
        return []

    def clear(self) -> None:
        """No-op: there is nothing to drop."""
        pass

    def to_dicts(self) -> list[dict[str, Any]]:
        """Always empty: nothing is ever recorded."""
        return []


#: The process-wide default: event recording off.
NULL_EVENTS = NullEventStream()

_active_events: EventStream | NullEventStream = NULL_EVENTS


def get_events() -> EventStream | NullEventStream:
    """The ambient stream instrumented code should emit events to."""
    return _active_events


def set_events(stream: EventStream | NullEventStream | None) -> EventStream | NullEventStream:
    """Install ``stream`` (``None`` = disable); returns the previous one."""
    global _active_events
    previous = _active_events
    _active_events = NULL_EVENTS if stream is None else stream
    return previous


@contextmanager
def use_events(stream: EventStream | NullEventStream) -> Iterator[EventStream | NullEventStream]:
    """Scoped installation: the previous stream is restored on exit."""
    previous = set_events(stream)
    try:
        yield stream
    finally:
        set_events(previous)


def write_events_jsonl(path, stream: EventStream | NullEventStream) -> int:
    """Serialise the stream as JSON Lines; returns the event count.

    A header line records the schema and how many events were evicted
    from the bounded buffer, so a truncated history is never mistaken
    for a complete one.
    """
    dicts = stream.to_dicts()
    with open(path, "w") as fh:
        header = {"schema": "repro-events/1", "events": len(dicts),
                  "dropped": stream.dropped}
        fh.write(json.dumps(header) + "\n")
        for record in dicts:
            fh.write(json.dumps(record, default=str) + "\n")
    return len(dicts)


def read_events_jsonl(path) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Parse a JSONL event file back into ``(header, events)``."""
    with open(path) as fh:
        lines = [json.loads(line) for line in fh if line.strip()]
    if not lines or lines[0].get("schema") != "repro-events/1":
        raise ValueError(f"{path}: not a repro-events/1 JSONL file")
    return lines[0], lines[1:]
