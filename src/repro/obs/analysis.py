"""Trace analysis: critical paths, per-name aggregation, trace diffs.

A raw span forest answers "where did the time go" only after staring at
it; this module turns a trace — a live :class:`~repro.obs.tracing.Tracer`,
a single :class:`~repro.obs.tracing.Span`, or a ``repro-trace/1`` JSON
document loaded from disk — into three directly actionable views:

* :func:`critical_path` — the chain of heaviest spans from the heaviest
  root down, with per-span self time, i.e. "the one stack that bounds
  the run";
* :func:`aggregate_spans` — per-span-name count / total / mean / p95 /
  max over the whole forest, the profile view;
* :func:`diff_traces` — per-span-name total-time deltas between two
  traces of the same pipeline, the "what changed since the last PR"
  view (the bench regression gate in :mod:`repro.obs.regress` does the
  same at bench-suite granularity).

All three accept any trace form and return plain data; the ``render_*``
companions format them for terminals, and the Choreographer CLI exposes
them as ``analyze-trace`` / ``diff-trace``.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.metrics import nearest_rank
from repro.obs.tracing import NullTracer, Span, Tracer
from repro.utils.formatting import format_table

__all__ = [
    "critical_path",
    "aggregate_spans",
    "diff_traces",
    "load_trace",
    "render_critical_path",
    "render_aggregate",
    "render_trace_diff",
]

TRACE_SCHEMA = "repro-trace/1"


def load_trace(path) -> dict[str, Any]:
    """Read and schema-check a ``repro-trace/1`` JSON document."""
    with open(path) as fh:
        document = json.load(fh)
    if not isinstance(document, dict) or document.get("schema") != TRACE_SCHEMA:
        raise ValueError(f"{path}: not a {TRACE_SCHEMA} trace document")
    return document


def _roots_of(trace) -> list[dict[str, Any]]:
    """Normalise any accepted trace form to a list of span dicts."""
    if isinstance(trace, (Tracer, NullTracer)):
        return [root.to_dict() for root in trace.roots]
    if isinstance(trace, Span):
        return [trace.to_dict()]
    if isinstance(trace, dict):
        if "traces" in trace:
            return list(trace["traces"])
        if "name" in trace:  # a bare span dict
            return [trace]
    raise TypeError(f"cannot interpret {type(trace).__name__} as a trace")


def _duration(span: dict[str, Any]) -> float:
    return float(span.get("duration_s", 0.0))


def critical_path(trace) -> list[dict[str, Any]]:
    """The heaviest root-to-leaf chain of the trace.

    Starting from the longest root, repeatedly descend into the longest
    child.  Each entry carries ``name``, ``duration_s``, ``self_s``
    (duration minus children — the time the span itself is responsible
    for) and ``share`` of the root's duration.  Empty trace → ``[]``.
    """
    roots = _roots_of(trace)
    if not roots:
        return []
    node = max(roots, key=_duration)
    total = _duration(node) or 1e-12
    path: list[dict[str, Any]] = []
    while node is not None:
        children = node.get("children", [])
        child_time = sum(_duration(c) for c in children)
        path.append({
            "name": node["name"],
            "duration_s": _duration(node),
            "self_s": max(0.0, _duration(node) - child_time),
            "share": _duration(node) / total,
            "attributes": dict(node.get("attributes", {})),
        })
        node = max(children, key=_duration) if children else None
    return path


def aggregate_spans(trace) -> dict[str, dict[str, Any]]:
    """Per-span-name summary over the whole forest.

    Returns ``{name: {count, total_s, mean_s, p95_s, max_s}}`` sorted by
    descending total time.  p95 is the nearest-rank percentile of the
    individual span durations.
    """
    samples: dict[str, list[float]] = {}
    stack = list(_roots_of(trace))
    while stack:
        span = stack.pop()
        samples.setdefault(span["name"], []).append(_duration(span))
        stack.extend(span.get("children", []))
    out: dict[str, dict[str, Any]] = {}
    for name, durations in samples.items():
        durations.sort()
        out[name] = {
            "count": len(durations),
            "total_s": sum(durations),
            "mean_s": sum(durations) / len(durations),
            "p95_s": nearest_rank(durations, 95),
            "max_s": durations[-1],
        }
    return dict(sorted(out.items(), key=lambda kv: -kv[1]["total_s"]))


def diff_traces(base, new) -> list[dict[str, Any]]:
    """Per-span-name total-time deltas between two traces.

    Each row has ``name``, ``base_s``, ``new_s``, ``delta_s`` and
    ``ratio`` (``new/base``; ``None`` when the name is absent from one
    side).  Rows are sorted by descending absolute delta, so the first
    line is the biggest mover.
    """
    base_agg = aggregate_spans(base)
    new_agg = aggregate_spans(new)
    rows = []
    for name in sorted(set(base_agg) | set(new_agg)):
        base_s = base_agg.get(name, {}).get("total_s")
        new_s = new_agg.get(name, {}).get("total_s")
        delta = (new_s or 0.0) - (base_s or 0.0)
        ratio = new_s / base_s if base_s and new_s is not None else None
        rows.append({
            "name": name,
            "base_s": base_s,
            "new_s": new_s,
            "delta_s": delta,
            "ratio": ratio,
        })
    rows.sort(key=lambda r: -abs(r["delta_s"]))
    return rows


def _ms(seconds: float | None) -> str:
    return "-" if seconds is None else f"{seconds * 1e3:.3f}"


def render_critical_path(path: list[dict[str, Any]]) -> str:
    """The critical path as an indented chain with ms and % columns."""
    if not path:
        return "(empty trace)"
    lines = ["critical path (heaviest chain):"]
    for depth, entry in enumerate(path):
        lines.append(
            f"  {'  ' * depth}{entry['name']}  {_ms(entry['duration_s'])} ms "
            f"(self {_ms(entry['self_s'])} ms, {entry['share'] * 100:.1f}%)"
        )
    return "\n".join(lines)


def render_aggregate(aggregate: dict[str, dict[str, Any]]) -> str:
    """The per-name aggregation as an aligned table (times in ms)."""
    if not aggregate:
        return "(empty trace)"
    rows = [
        [name, s["count"], _ms(s["total_s"]), _ms(s["mean_s"]),
         _ms(s["p95_s"]), _ms(s["max_s"])]
        for name, s in aggregate.items()
    ]
    return format_table(
        ["span", "count", "total ms", "mean ms", "p95 ms", "max ms"], rows
    )


def render_trace_diff(rows: list[dict[str, Any]]) -> str:
    """The trace diff as an aligned table, biggest mover first."""
    if not rows:
        return "(both traces empty)"
    table = [
        [r["name"], _ms(r["base_s"]), _ms(r["new_s"]),
         f"{r['delta_s'] * 1e3:+.3f}",
         "-" if r["ratio"] is None else f"{r['ratio']:.2f}x"]
        for r in rows
    ]
    return format_table(
        ["span", "base ms", "new ms", "delta ms", "ratio"], table
    )
