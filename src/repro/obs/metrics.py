"""A lightweight metrics registry: counters, gauges, histograms.

The numerical pipeline's vital signs — ``states_explored``,
``transitions``, ``solver_iterations``, ``spmv_count``, ``residual`` —
are recorded here by the instrumented layers.  The design mirrors the
tracer: library code asks :func:`get_metrics` for the ambient registry,
which defaults to the no-op :data:`NULL_METRICS`, so a pipeline run
with metrics disabled pays one method call returning a shared
singleton per instrument lookup and nothing per update.

Instruments are created on first use and aggregate in-process::

    metrics = MetricsRegistry()
    with use_metrics(metrics):
        run_pipeline(...)
    metrics.counter("states_explored").value
    metrics.as_dict()   # JSON-ready snapshot

Labels are deliberately out of scope (one process, one pipeline run at
a time); encode a dimension in the name (``solve.gmres.iterations``)
when needed.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Any, Iterator, Sequence

__all__ = [
    "nearest_rank",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "get_metrics",
    "set_metrics",
    "use_metrics",
]


def nearest_rank(sorted_values: Sequence[float], q: float) -> float:
    """The nearest-rank ``q``-th percentile of an ascending sequence.

    The one percentile definition used across ``repro.obs`` —
    :meth:`Histogram.percentile` and
    :func:`repro.obs.analysis.aggregate_spans` both call this — so a
    p95 from the metrics registry and a p95 from a trace aggregate mean
    the same thing.  Nearest rank: the smallest value with at least
    ``q``% of the samples at or below it (rank ``ceil(q/100 · n)``,
    clamped to the first value), so the result is always an observed
    sample, never an interpolation.  ``n=1`` → the sample itself;
    ``q=100`` → the maximum.
    """
    if not sorted_values:
        raise ValueError("cannot take a percentile of no samples")
    if not 0 < q <= 100:
        raise ValueError(f"percentile q must be in (0, 100], got {q}")
    rank = max(1, math.ceil(q / 100 * len(sorted_values)))
    return sorted_values[rank - 1]


class Counter:
    """A monotonically increasing count (events, states, iterations)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot: type tag plus current value."""
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value that may go up or down (residual, RSS)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        """Record the latest observed value, replacing any previous one."""
        self.value = value

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot: type tag plus current value."""
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Summary statistics of an observed distribution.

    Keeps count/sum/min/max for the snapshot plus the raw samples for
    :meth:`percentile`/:meth:`summary` — nearest-rank percentiles with
    exactly the semantics of :func:`repro.obs.analysis.aggregate_spans`
    (both go through :func:`nearest_rank`).  Retention is bounded:
    beyond ``sample_limit`` new samples stop being kept (count/sum/
    min/max stay exact; percentiles degrade to the retained prefix and
    :attr:`samples_dropped` says by how much), so a per-iteration
    histogram in a million-step solve cannot grow memory without bound.
    """

    __slots__ = ("name", "count", "total", "min", "max",
                 "_samples", "sample_limit", "samples_dropped")

    #: Samples retained for percentile queries; plenty for per-stage
    #: timings, bounded for per-iteration abuse.
    DEFAULT_SAMPLE_LIMIT = 8192

    def __init__(self, name: str, sample_limit: int = DEFAULT_SAMPLE_LIMIT):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._samples: list[float] = []
        self.sample_limit = sample_limit
        self.samples_dropped = 0

    def observe(self, value: float) -> None:
        """Fold one sample into the summary (and the percentile store)."""
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None or value < self.min else self.min
        self.max = value if self.max is None or value > self.max else self.max
        if len(self._samples) < self.sample_limit:
            self._samples.append(value)
        else:
            self.samples_dropped += 1

    @property
    def mean(self) -> float | None:
        """Arithmetic mean of the samples (``None`` before the first)."""
        return self.total / self.count if self.count else None

    def percentile(self, q: float) -> float | None:
        """Nearest-rank ``q``-th percentile (``None`` before the first
        sample); see :func:`nearest_rank` for the exact semantics."""
        if not self._samples:
            return None
        return nearest_rank(sorted(self._samples), q)

    def summary(self) -> dict[str, Any]:
        """count/sum/min/max/mean plus p50/p90/p95/p99 in one dict."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "samples_dropped": self.samples_dropped,
        }

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot of the summary statistics.

        Deliberately excludes percentiles: snapshots are merged across
        workers by :func:`repro.obs.merge.merge_metrics`, and
        percentiles do not merge (count/sum/min/max do).
        """
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Name → instrument, created on first use, one kind per name."""

    def __init__(self):
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type) -> Any:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``, created on first use."""
        return self._get(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self) -> list[str]:
        """Every registered instrument name, sorted."""
        return sorted(self._instruments)

    def clear(self) -> None:
        """Drop every instrument (a fresh registry is usually better)."""
        self._instruments.clear()

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot of every instrument, sorted by name."""
        return {
            "schema": "repro-metrics/1",
            "metrics": {
                name: self._instruments[name].as_dict() for name in self.names()
            },
        }


class _NullInstrument:
    """Shared sink standing in for every instrument when metrics are off."""

    __slots__ = ()

    value = 0
    count = 0
    total = 0.0
    min = None
    max = None
    mean = None

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> None:
        return None

    def summary(self) -> dict[str, Any]:
        return {}

    def as_dict(self) -> dict[str, Any]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The disabled registry: every lookup returns the shared sink."""

    def counter(self, name: str) -> _NullInstrument:
        """The shared no-op instrument, whatever the name."""
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        """The shared no-op instrument, whatever the name."""
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        """The shared no-op instrument, whatever the name."""
        return _NULL_INSTRUMENT

    def __contains__(self, name: str) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def names(self) -> list[str]:
        """Always empty: nothing is ever registered."""
        return []

    def clear(self) -> None:
        """No-op: there is nothing to drop."""
        pass

    def as_dict(self) -> dict[str, Any]:
        """An empty but schema-valid snapshot."""
        return {"schema": "repro-metrics/1", "metrics": {}}


#: The process-wide default: metrics off.
NULL_METRICS = NullMetrics()

_active_metrics: MetricsRegistry | NullMetrics = NULL_METRICS


def get_metrics() -> MetricsRegistry | NullMetrics:
    """The ambient registry instrumented code should record into."""
    return _active_metrics


def set_metrics(registry: MetricsRegistry | NullMetrics | None) -> MetricsRegistry | NullMetrics:
    """Install ``registry`` (``None`` = disable); returns the previous one."""
    global _active_metrics
    previous = _active_metrics
    _active_metrics = NULL_METRICS if registry is None else registry
    return previous


@contextmanager
def use_metrics(registry: MetricsRegistry | NullMetrics) -> Iterator[MetricsRegistry | NullMetrics]:
    """Scoped installation: the previous registry is restored on exit."""
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)
