"""A lightweight metrics registry: counters, gauges, histograms.

The numerical pipeline's vital signs — ``states_explored``,
``transitions``, ``solver_iterations``, ``spmv_count``, ``residual`` —
are recorded here by the instrumented layers.  The design mirrors the
tracer: library code asks :func:`get_metrics` for the ambient registry,
which defaults to the no-op :data:`NULL_METRICS`, so a pipeline run
with metrics disabled pays one method call returning a shared
singleton per instrument lookup and nothing per update.

Instruments are created on first use and aggregate in-process::

    metrics = MetricsRegistry()
    with use_metrics(metrics):
        run_pipeline(...)
    metrics.counter("states_explored").value
    metrics.as_dict()   # JSON-ready snapshot

Labels are deliberately out of scope (one process, one pipeline run at
a time); encode a dimension in the name (``solve.gmres.iterations``)
when needed.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "get_metrics",
    "set_metrics",
    "use_metrics",
]


class Counter:
    """A monotonically increasing count (events, states, iterations)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot: type tag plus current value."""
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value that may go up or down (residual, RSS)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        """Record the latest observed value, replacing any previous one."""
        self.value = value

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot: type tag plus current value."""
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Summary statistics of an observed distribution.

    Keeps count/sum/min/max — enough for mean and extremes without
    bucket configuration; the bench harness records whole samples
    itself when percentiles matter.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        """Fold one sample into the count/sum/min/max summary."""
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None or value < self.min else self.min
        self.max = value if self.max is None or value > self.max else self.max

    @property
    def mean(self) -> float | None:
        """Arithmetic mean of the samples (``None`` before the first)."""
        return self.total / self.count if self.count else None

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot of the summary statistics."""
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Name → instrument, created on first use, one kind per name."""

    def __init__(self):
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type) -> Any:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``, created on first use."""
        return self._get(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self) -> list[str]:
        """Every registered instrument name, sorted."""
        return sorted(self._instruments)

    def clear(self) -> None:
        """Drop every instrument (a fresh registry is usually better)."""
        self._instruments.clear()

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot of every instrument, sorted by name."""
        return {
            "schema": "repro-metrics/1",
            "metrics": {
                name: self._instruments[name].as_dict() for name in self.names()
            },
        }


class _NullInstrument:
    """Shared sink standing in for every instrument when metrics are off."""

    __slots__ = ()

    value = 0
    count = 0
    total = 0.0
    min = None
    max = None
    mean = None

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def as_dict(self) -> dict[str, Any]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The disabled registry: every lookup returns the shared sink."""

    def counter(self, name: str) -> _NullInstrument:
        """The shared no-op instrument, whatever the name."""
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        """The shared no-op instrument, whatever the name."""
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        """The shared no-op instrument, whatever the name."""
        return _NULL_INSTRUMENT

    def __contains__(self, name: str) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def names(self) -> list[str]:
        """Always empty: nothing is ever registered."""
        return []

    def clear(self) -> None:
        """No-op: there is nothing to drop."""
        pass

    def as_dict(self) -> dict[str, Any]:
        """An empty but schema-valid snapshot."""
        return {"schema": "repro-metrics/1", "metrics": {}}


#: The process-wide default: metrics off.
NULL_METRICS = NullMetrics()

_active_metrics: MetricsRegistry | NullMetrics = NULL_METRICS


def get_metrics() -> MetricsRegistry | NullMetrics:
    """The ambient registry instrumented code should record into."""
    return _active_metrics


def set_metrics(registry: MetricsRegistry | NullMetrics | None) -> MetricsRegistry | NullMetrics:
    """Install ``registry`` (``None`` = disable); returns the previous one."""
    global _active_metrics
    previous = _active_metrics
    _active_metrics = NULL_METRICS if registry is None else registry
    return previous


@contextmanager
def use_metrics(registry: MetricsRegistry | NullMetrics) -> Iterator[MetricsRegistry | NullMetrics]:
    """Scoped installation: the previous registry is restored on exit."""
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)
