"""Observability for the tool chain: span tracing + metrics + exporters.

The numerical representation dominates the cost of the whole pipeline
(Ding & Hillston, arXiv:1012.3040), so this package makes that cost
visible: hierarchical wall-clock spans over every stage (parse, derive,
assemble, solve, reflect), a metrics registry for the vital counts
(``states_explored``, ``transitions``, ``solver_iterations``,
``spmv_count``, ``residual``), and exporters to JSON and terminal
trees.

Everything is off by default and zero-cost when off: instrumented code
routes through :func:`get_tracer` / :func:`get_metrics`, which return
shared no-op singletons unless a caller installed live collectors::

    from repro.obs import Tracer, MetricsRegistry, use_tracer, use_metrics

    tracer, metrics = Tracer(), MetricsRegistry()
    with use_tracer(tracer), use_metrics(metrics):
        analysis = workbench.solve_source(source)
    print(render_trace(tracer))
    print(render_metrics(metrics))

:func:`observe` bundles the two installs for the common case.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.analysis import (
    aggregate_spans,
    critical_path,
    diff_traces,
    load_trace,
    render_aggregate,
    render_critical_path,
    render_trace_diff,
)
from repro.obs.events import (
    DEFAULT_CAPACITY,
    NULL_EVENTS,
    Event,
    EventStream,
    NullEventStream,
    get_events,
    read_events_jsonl,
    set_events,
    use_events,
    write_events_jsonl,
)
from repro.obs.export import (
    chrome_trace_document,
    metrics_to_json,
    prometheus_text,
    render_metrics,
    render_trace,
    trace_to_json,
    write_chrome_trace,
    write_prometheus_file,
    write_trace_file,
)
from repro.obs.ledger import (
    NULL_LEDGER,
    NullLedger,
    RunLedger,
    build_run_document,
    get_ledger,
    set_ledger,
    use_ledger,
)
from repro.obs.merge import merge_events, merge_metrics, merge_profiles, merge_traces
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    get_metrics,
    nearest_rank,
    set_metrics,
    use_metrics,
)
from repro.obs.profile import (
    NULL_PROFILER,
    NullProfiler,
    ProfileConfig,
    SamplingProfiler,
    SpanResourceProbe,
    collapsed_text,
    get_profile_config,
    get_profiler,
    set_profile_config,
    set_profiler,
    use_profile_config,
    use_profiler,
    use_resource_probe,
)
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_resource_probe,
    set_tracer,
    use_tracer,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "get_metrics",
    "set_metrics",
    "use_metrics",
    "Event",
    "EventStream",
    "NullEventStream",
    "NULL_EVENTS",
    "DEFAULT_CAPACITY",
    "get_events",
    "set_events",
    "use_events",
    "write_events_jsonl",
    "read_events_jsonl",
    "observe",
    "reset_ambient",
    "merge_metrics",
    "merge_traces",
    "merge_events",
    "merge_profiles",
    "trace_to_json",
    "metrics_to_json",
    "render_trace",
    "render_metrics",
    "write_trace_file",
    "chrome_trace_document",
    "write_chrome_trace",
    "prometheus_text",
    "write_prometheus_file",
    "nearest_rank",
    "RunLedger",
    "NullLedger",
    "NULL_LEDGER",
    "get_ledger",
    "set_ledger",
    "use_ledger",
    "build_run_document",
    "ProfileConfig",
    "SamplingProfiler",
    "NullProfiler",
    "NULL_PROFILER",
    "SpanResourceProbe",
    "get_profiler",
    "set_profiler",
    "use_profiler",
    "get_profile_config",
    "set_profile_config",
    "use_profile_config",
    "use_resource_probe",
    "set_resource_probe",
    "collapsed_text",
    "critical_path",
    "aggregate_spans",
    "diff_traces",
    "load_trace",
    "render_critical_path",
    "render_aggregate",
    "render_trace_diff",
]


def reset_ambient() -> None:
    """Reset every ambient installation to its disabled default.

    A worker process forked (or spawned) mid-run inherits whatever
    tracer/metrics/events the parent had installed at that moment — a
    snapshot it must never record into, both because the parent keeps
    using the originals and because a fork only copies, so the parent
    would never see the writes anyway.  Worker initialisers (see
    :mod:`repro.batch.engine`) call this first, so every worker starts
    from the same clean slate as a fresh interpreter: tracing, metrics,
    events, profiling and the run ledger all off until the worker
    installs its own collectors.  The ambient profiler is *replaced*,
    not stopped — a forked child holds a copy whose sampler thread does
    not exist in this process, so stopping it would hang on the join.
    """
    set_tracer(None)
    set_metrics(None)
    set_events(None)
    set_profiler(None)
    set_profile_config(None)
    set_resource_probe(None)
    set_ledger(None)


@contextmanager
def observe() -> Iterator[tuple[Tracer, MetricsRegistry]]:
    """Install a fresh tracer + registry for the ``with`` block.

    Yields ``(tracer, metrics)``; both previous ambients are restored
    on exit, so nested observations compose.
    """
    tracer, metrics = Tracer(), MetricsRegistry()
    with use_tracer(tracer), use_metrics(metrics):
        yield tracer, metrics
