"""Exporters: trace/metric state to JSON documents and terminal text.

Three audiences:

* machines — :func:`trace_to_json` / :func:`metrics_to_json` produce
  schema-versioned dicts (``repro-trace/1``, ``repro-metrics/1``) that
  the bench harness and the CLI ``--trace FILE`` flag serialise;
* humans — :func:`render_trace` draws the span forest as an indented
  tree with durations and attributes, :func:`render_metrics` an aligned
  table, both plain ASCII-art suitable for a terminal or a CI log;
* standard tooling — :func:`chrome_trace_document` renders a run as
  Chrome Trace Event Format (load it in Perfetto / ``chrome://tracing``:
  spans as duration events, solver/exploration/batch events as
  instants, profiler samples as a sampled track), and
  :func:`prometheus_text` renders the metrics registry in Prometheus
  text exposition format for scraping or ``promtool`` inspection.
"""

from __future__ import annotations

import json
import re
from typing import Any

from repro.obs.metrics import MetricsRegistry, NullMetrics
from repro.obs.tracing import NullTracer, Span, Tracer
from repro.utils.formatting import format_table

__all__ = [
    "trace_to_json",
    "metrics_to_json",
    "render_trace",
    "render_metrics",
    "write_trace_file",
    "chrome_trace_document",
    "write_chrome_trace",
    "prometheus_text",
    "write_prometheus_file",
]


def trace_to_json(tracer: Tracer | NullTracer) -> dict[str, Any]:
    """The tracer's span forest as a schema-versioned JSON-ready dict."""
    return tracer.to_dict()


def metrics_to_json(registry: MetricsRegistry | NullMetrics) -> dict[str, Any]:
    """The registry's snapshot as a schema-versioned JSON-ready dict."""
    return registry.as_dict()


def write_trace_file(path, tracer: Tracer | NullTracer,
                     metrics: MetricsRegistry | NullMetrics | None = None) -> None:
    """Serialise the trace (and optional metrics) to one JSON file."""
    document: dict[str, Any] = trace_to_json(tracer)
    if metrics is not None:
        document["metrics"] = metrics_to_json(metrics)["metrics"]
    with open(path, "w") as fh:
        json.dump(document, fh, indent=2, default=str)
        fh.write("\n")


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _render_span(span: Span, prefix: str, is_last: bool, lines: list[str]) -> None:
    connector = "`- " if is_last else "|- "
    attrs = ", ".join(
        f"{k}={_format_value(v)}" for k, v in sorted(span.attributes.items())
    )
    suffix = f"  [{attrs}]" if attrs else ""
    lines.append(f"{prefix}{connector}{span.name}  {span.duration * 1e3:.3f} ms{suffix}")
    child_prefix = prefix + ("   " if is_last else "|  ")
    for i, child in enumerate(span.children):
        _render_span(child, child_prefix, i == len(span.children) - 1, lines)


def render_trace(tracer: Tracer | NullTracer) -> str:
    """The span forest as a human-readable tree with millisecond timings."""
    roots = tracer.roots
    if not roots:
        return "(no spans recorded)"
    lines: list[str] = []
    for root in roots:
        attrs = ", ".join(
            f"{k}={_format_value(v)}" for k, v in sorted(root.attributes.items())
        )
        suffix = f"  [{attrs}]" if attrs else ""
        lines.append(f"{root.name}  {root.duration * 1e3:.3f} ms{suffix}")
        for i, child in enumerate(root.children):
            _render_span(child, "", i == len(root.children) - 1, lines)
    return "\n".join(lines)


def render_metrics(registry: MetricsRegistry | NullMetrics) -> str:
    """The registry as an aligned name/type/value table."""
    snapshot = registry.as_dict()["metrics"]
    if not snapshot:
        return "(no metrics recorded)"
    rows = []
    for name, data in snapshot.items():
        kind = data.get("type", "?")
        if kind == "histogram":
            value = (
                f"count={data['count']} sum={_format_value(data['sum'])} "
                f"min={_format_value(data['min'])} max={_format_value(data['max'])}"
            )
        else:
            value = _format_value(data.get("value"))
        rows.append([name, kind, value])
    return format_table(["metric", "type", "value"], rows)


# ---------------------------------------------------------------------------
# Chrome Trace Event Format (Perfetto / chrome://tracing / speedscope)
# ---------------------------------------------------------------------------
def _roots_of_trace(trace) -> list[dict[str, Any]]:
    if isinstance(trace, (Tracer, NullTracer)):
        return [root.to_dict() for root in trace.roots]
    if isinstance(trace, dict) and "traces" in trace:
        return list(trace["traces"])
    raise TypeError(f"cannot interpret {type(trace).__name__} as a trace")


def _span_chrome_events(span: dict[str, Any], fallback_start: float,
                        out: list[dict[str, Any]]) -> None:
    """One ``ph: "X"`` complete event per span, depth-first.

    ``start_unix`` anchors the event on the wall clock; pre-epoch trace
    documents (before the field existed) fall back to a synthesized
    timeline where siblings are laid out back to back from their
    parent's start — proportions survive, absolute time does not.
    """
    start = float(span.get("start_unix", fallback_start))
    duration = float(span.get("duration_s", 0.0))
    out.append({
        "name": span.get("name", "?"),
        "cat": "span",
        "ph": "X",
        "ts": round(start * 1e6, 3),
        "dur": round(duration * 1e6, 3),
        "pid": int(span.get("pid", 0)),
        "tid": int(span.get("tid", 0)),
        "args": dict(span.get("attributes", {})),
    })
    child_cursor = start
    for child in span.get("children", []):
        _span_chrome_events(child, child_cursor, out)
        child_cursor += float(child.get("duration_s", 0.0))


def chrome_trace_document(trace, events=None, profile=None) -> dict[str, Any]:
    """A run as a Chrome Trace Event Format JSON object.

    ``trace`` is a live tracer or a ``repro-trace/1`` document (merged
    batch traces included — per-span ``pid``/``tid`` keep worker
    attribution).  Spans render as duration events (``ph: "X"``); the
    optional ``events`` (an :class:`~repro.obs.events.EventStream` or a
    flat event-dict list, e.g. ``solver.convergence`` /
    ``explore.progress`` / ``batch.*``) render as thread-scoped
    instants (``ph: "i"``); the optional ``profile`` (a
    :class:`~repro.obs.profile.SamplingProfiler` or its
    ``repro-profile/1`` dict) renders its timeline as a sampled track
    (``ph: "P"``).  Every emitted event carries the format's required
    ``name``/``ph``/``ts``/``pid``/``tid`` keys.
    """
    roots = _roots_of_trace(trace)
    trace_events: list[dict[str, Any]] = []
    cursor = 0.0
    for root in roots:
        _span_chrome_events(root, cursor, trace_events)
        cursor += float(root.get("duration_s", 0.0))
    base_epoch = min(
        (float(r["start_unix"]) for r in roots if "start_unix" in r),
        default=0.0,
    )
    base_pid = int(roots[0].get("pid", 0)) if roots else 0

    if events is not None:
        flat = events if isinstance(events, list) else events.to_dicts()
        if flat:
            trace_events.append({
                "name": "thread_name", "ph": "M", "ts": 0,
                "pid": base_pid, "tid": 1_000_001,
                "args": {"name": "events"},
            })
        for event in flat:
            fields = {k: v for k, v in event.items()
                      if k not in ("event", "t_s")}
            trace_events.append({
                "name": str(event.get("event", "?")),
                "cat": "event",
                "ph": "i",
                "s": "t",
                "ts": round((base_epoch + float(event.get("t_s", 0.0))) * 1e6, 3),
                "pid": base_pid,
                "tid": 1_000_001,
                "args": fields,
            })

    if profile is not None:
        doc = profile if isinstance(profile, dict) else profile.to_dict()
        timeline = doc.get("timeline", [])
        if timeline:
            trace_events.append({
                "name": "thread_name", "ph": "M", "ts": 0,
                "pid": base_pid, "tid": 1_000_002,
                "args": {"name": "profiler samples"},
            })
        for t_s, stack in timeline:
            trace_events.append({
                "name": "sample",
                "cat": "profile",
                "ph": "P",
                "ts": round((base_epoch + float(t_s)) * 1e6, 3),
                "pid": base_pid,
                "tid": 1_000_002,
                "args": {"stack": stack},
            })

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs.export", "schema": "repro-trace/1"},
    }


def write_chrome_trace(path, trace, events=None, profile=None) -> int:
    """Serialise :func:`chrome_trace_document`; returns the event count."""
    document = chrome_trace_document(trace, events=events, profile=profile)
    with open(path, "w") as fh:
        json.dump(document, fh, indent=2, default=str)
        fh.write("\n")
    return len(document["traceEvents"])


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------
def _prom_name(name: str) -> str:
    sanitised = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    return f"repro_{sanitised}"


def _prom_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def prometheus_text(metrics) -> str:
    """The metrics registry in Prometheus text exposition format.

    Accepts a live :class:`~repro.obs.metrics.MetricsRegistry` or a
    ``repro-metrics/1`` snapshot (e.g. a merged batch one).  Counters
    gain the conventional ``_total`` suffix; histograms render as
    summaries (``_sum``/``_count`` plus ``quantile`` series when the
    registry is live and retains samples — merged snapshots carry no
    samples, so they expose sum/count/min/max only).  Instrument names
    are sanitised (``cache.hit_rate`` → ``repro_cache_hit_rate``).
    """
    live = metrics if isinstance(metrics, MetricsRegistry) else None
    snapshot = metrics if isinstance(metrics, dict) else metrics.as_dict()
    lines: list[str] = []
    for name in sorted(snapshot.get("metrics", {})):
        data = snapshot["metrics"][name]
        kind = data.get("type")
        prom = _prom_name(name)
        if kind == "counter":
            lines.append(f"# HELP {prom}_total repro counter {name}")
            lines.append(f"# TYPE {prom}_total counter")
            lines.append(f"{prom}_total {_prom_value(data.get('value', 0))}")
        elif kind == "gauge":
            if data.get("value") is None:
                continue
            lines.append(f"# HELP {prom} repro gauge {name}")
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_prom_value(data['value'])}")
        elif kind == "histogram":
            lines.append(f"# HELP {prom} repro histogram {name}")
            lines.append(f"# TYPE {prom} summary")
            if live is not None and name in live:
                histogram = live.histogram(name)
                for q in (0.5, 0.9, 0.95, 0.99):
                    value = histogram.percentile(q * 100)
                    if value is not None:
                        lines.append(
                            f'{prom}{{quantile="{q}"}} {_prom_value(value)}'
                        )
            lines.append(f"{prom}_sum {_prom_value(data.get('sum', 0.0))}")
            lines.append(f"{prom}_count {_prom_value(data.get('count', 0))}")
            for bound in ("min", "max"):
                if data.get(bound) is not None:
                    lines.append(f"# TYPE {prom}_{bound} gauge")
                    lines.append(f"{prom}_{bound} {_prom_value(data[bound])}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus_file(path, metrics) -> None:
    """Serialise :func:`prometheus_text` to ``path``."""
    with open(path, "w") as fh:
        fh.write(prometheus_text(metrics))
