"""Exporters: trace/metric state to JSON documents and terminal text.

Two audiences:

* machines — :func:`trace_to_json` / :func:`metrics_to_json` produce
  schema-versioned dicts (``repro-trace/1``, ``repro-metrics/1``) that
  the bench harness and the CLI ``--trace FILE`` flag serialise;
* humans — :func:`render_trace` draws the span forest as an indented
  tree with durations and attributes, :func:`render_metrics` an aligned
  table, both plain ASCII-art suitable for a terminal or a CI log.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.metrics import MetricsRegistry, NullMetrics
from repro.obs.tracing import NullTracer, Span, Tracer
from repro.utils.formatting import format_table

__all__ = [
    "trace_to_json",
    "metrics_to_json",
    "render_trace",
    "render_metrics",
    "write_trace_file",
]


def trace_to_json(tracer: Tracer | NullTracer) -> dict[str, Any]:
    """The tracer's span forest as a schema-versioned JSON-ready dict."""
    return tracer.to_dict()


def metrics_to_json(registry: MetricsRegistry | NullMetrics) -> dict[str, Any]:
    """The registry's snapshot as a schema-versioned JSON-ready dict."""
    return registry.as_dict()


def write_trace_file(path, tracer: Tracer | NullTracer,
                     metrics: MetricsRegistry | NullMetrics | None = None) -> None:
    """Serialise the trace (and optional metrics) to one JSON file."""
    document: dict[str, Any] = trace_to_json(tracer)
    if metrics is not None:
        document["metrics"] = metrics_to_json(metrics)["metrics"]
    with open(path, "w") as fh:
        json.dump(document, fh, indent=2, default=str)
        fh.write("\n")


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _render_span(span: Span, prefix: str, is_last: bool, lines: list[str]) -> None:
    connector = "`- " if is_last else "|- "
    attrs = ", ".join(
        f"{k}={_format_value(v)}" for k, v in sorted(span.attributes.items())
    )
    suffix = f"  [{attrs}]" if attrs else ""
    lines.append(f"{prefix}{connector}{span.name}  {span.duration * 1e3:.3f} ms{suffix}")
    child_prefix = prefix + ("   " if is_last else "|  ")
    for i, child in enumerate(span.children):
        _render_span(child, child_prefix, i == len(span.children) - 1, lines)


def render_trace(tracer: Tracer | NullTracer) -> str:
    """The span forest as a human-readable tree with millisecond timings."""
    roots = tracer.roots
    if not roots:
        return "(no spans recorded)"
    lines: list[str] = []
    for root in roots:
        attrs = ", ".join(
            f"{k}={_format_value(v)}" for k, v in sorted(root.attributes.items())
        )
        suffix = f"  [{attrs}]" if attrs else ""
        lines.append(f"{root.name}  {root.duration * 1e3:.3f} ms{suffix}")
        for i, child in enumerate(root.children):
            _render_span(child, "", i == len(root.children) - 1, lines)
    return "\n".join(lines)


def render_metrics(registry: MetricsRegistry | NullMetrics) -> str:
    """The registry as an aligned name/type/value table."""
    snapshot = registry.as_dict()["metrics"]
    if not snapshot:
        return "(no metrics recorded)"
    rows = []
    for name, data in snapshot.items():
        kind = data.get("type", "?")
        if kind == "histogram":
            value = (
                f"count={data['count']} sum={_format_value(data['sum'])} "
                f"min={_format_value(data['min'])} max={_format_value(data['max'])}"
            )
        else:
            value = _format_value(data.get("value"))
        rows.append([name, kind, value])
    return format_table(["metric", "type", "value"], rows)
