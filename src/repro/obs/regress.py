"""Cross-PR bench regression detection over ``repro-bench/1`` documents.

``benchmarks/run_bench.py`` leaves a schema-stable snapshot per PR; the
trajectory only means something once two snapshots can be *compared*.
This module matches the runs of two bench documents on their identity
``(workload, size, solver)``, compares every stage time plus the run
total, and classifies each comparison:

* **regression** — ``new > base * threshold`` *and* ``new - base >=
  min_seconds``.  Both gates are needed: a relative threshold alone
  flags a 0.3 ms stage that doubled into 0.6 ms (pure scheduler noise),
  an absolute floor alone misses a 10 s stage creeping up 20%;
* **improvement** — the mirror image (``new < base / threshold`` with
  the same absolute floor), reported but never fatal;
* unmatched runs on either side are listed so a silently shrunk sweep
  cannot masquerade as "no regressions".

:func:`markdown_report` renders the whole comparison as the artifact CI
uploads; ``benchmarks/compare_bench.py`` is the command-line gate that
exits non-zero when any regression survives the noise gates.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "BenchComparison",
    "StageDelta",
    "load_bench",
    "compare_benchmarks",
    "markdown_report",
    "DEFAULT_THRESHOLD",
    "DEFAULT_MIN_SECONDS",
]

BENCH_SCHEMA = "repro-bench/1"

#: A stage must slow down by this factor to count as a regression.
DEFAULT_THRESHOLD = 1.5
#: ... and by at least this many absolute seconds.  Sub-millisecond
#: stages double and halve with scheduler jitter; they are never
#: signal on their own.
DEFAULT_MIN_SECONDS = 0.05


def load_bench(path) -> dict[str, Any]:
    """Read and schema-check a ``repro-bench/1`` JSON document."""
    with open(path) as fh:
        document = json.load(fh)
    if not isinstance(document, dict) or document.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"{path}: not a {BENCH_SCHEMA} bench document")
    return document


def run_key(run: dict[str, Any]) -> tuple[str, str, str]:
    """The identity a run is matched on: (workload, size, solver)."""
    return (
        str(run.get("workload")),
        json.dumps(run.get("size", {}), sort_keys=True),
        str(run.get("solver")),
    )


@dataclass
class StageDelta:
    """One (run, stage) comparison between baseline and current."""

    workload: str
    size: str
    solver: str
    stage: str
    base_s: float
    new_s: float
    verdict: str  # "regression" | "improvement" | "ok"

    @property
    def ratio(self) -> float | None:
        return self.new_s / self.base_s if self.base_s > 0 else None

    @property
    def delta_s(self) -> float:
        return self.new_s - self.base_s

    def describe(self) -> str:
        """One-line human rendering: run identity, times, ratio."""
        ratio = f"{self.ratio:.2f}x" if self.ratio is not None else "new"
        return (
            f"{self.workload} {self.size} [{self.solver}] {self.stage}: "
            f"{self.base_s:.6f}s -> {self.new_s:.6f}s ({ratio})"
        )


@dataclass
class BenchComparison:
    """The full result of comparing two bench documents."""

    baseline_label: str
    current_label: str
    threshold: float
    min_seconds: float
    deltas: list[StageDelta] = field(default_factory=list)
    only_in_baseline: list[tuple[str, str, str]] = field(default_factory=list)
    only_in_current: list[tuple[str, str, str]] = field(default_factory=list)

    @property
    def regressions(self) -> list[StageDelta]:
        return [d for d in self.deltas if d.verdict == "regression"]

    @property
    def improvements(self) -> list[StageDelta]:
        return [d for d in self.deltas if d.verdict == "improvement"]

    @property
    def ok(self) -> bool:
        """True when no stage regressed (unmatched runs are reported,
        not fatal — sweeps legitimately grow between PRs)."""
        return not self.regressions


def _classify(base_s: float, new_s: float, threshold: float,
              min_seconds: float) -> str:
    if new_s > base_s * threshold and new_s - base_s >= min_seconds:
        return "regression"
    if new_s < base_s / threshold and base_s - new_s >= min_seconds:
        return "improvement"
    return "ok"


def compare_benchmarks(
    baseline: dict[str, Any],
    current: dict[str, Any],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> BenchComparison:
    """Match runs of two bench documents and classify every stage delta.

    ``threshold`` is the relative slow-down factor (1.5 = 50% slower),
    ``min_seconds`` the absolute floor a delta must also clear.  Per
    matched run every named stage plus the ``total`` time is compared;
    a stage present on only one side is compared against 0.0 (which the
    absolute floor then judges).
    """
    if threshold <= 1.0:
        raise ValueError(f"threshold must be > 1.0, got {threshold}")
    if min_seconds < 0:
        raise ValueError(f"min_seconds must be >= 0, got {min_seconds}")
    base_runs = {run_key(r): r for r in baseline.get("runs", [])}
    new_runs = {run_key(r): r for r in current.get("runs", [])}
    comparison = BenchComparison(
        baseline_label=str(baseline.get("label", "baseline")),
        current_label=str(current.get("label", "current")),
        threshold=threshold,
        min_seconds=min_seconds,
        only_in_baseline=sorted(set(base_runs) - set(new_runs)),
        only_in_current=sorted(set(new_runs) - set(base_runs)),
    )
    for key in sorted(set(base_runs) & set(new_runs)):
        base, new = base_runs[key], new_runs[key]
        workload, size, solver = key
        stages = sorted(set(base.get("stages", {})) | set(new.get("stages", {})))
        pairs = [(s, float(base.get("stages", {}).get(s, 0.0)),
                  float(new.get("stages", {}).get(s, 0.0))) for s in stages]
        pairs.append(("total", float(base.get("total_s", 0.0)),
                      float(new.get("total_s", 0.0))))
        for stage, base_s, new_s in pairs:
            comparison.deltas.append(StageDelta(
                workload=workload, size=size, solver=solver, stage=stage,
                base_s=base_s, new_s=new_s,
                verdict=_classify(base_s, new_s, threshold, min_seconds),
            ))
    return comparison


def markdown_report(comparison: BenchComparison) -> str:
    """The comparison as a markdown document (the CI artifact)."""
    c = comparison
    lines = [
        f"# Bench comparison: `{c.baseline_label}` → `{c.current_label}`",
        "",
        f"Gates: regression = slower than {c.threshold:.2f}x baseline "
        f"**and** ≥ {c.min_seconds:g}s absolute.",
        "",
    ]
    if c.ok:
        matched = len({(d.workload, d.size, d.solver) for d in c.deltas})
        lines.append(
            f"**No regressions** across {matched} matched run(s) / "
            f"{len(c.deltas)} stage comparison(s)."
        )
    else:
        lines.append(f"**{len(c.regressions)} REGRESSION(S) DETECTED:**")
        lines.append("")
        lines.append("| workload | size | solver | stage | base s | new s | ratio |")
        lines.append("|---|---|---|---|---|---|---|")
        for d in c.regressions:
            ratio = f"{d.ratio:.2f}x" if d.ratio is not None else "new"
            lines.append(
                f"| {d.workload} | `{d.size}` | {d.solver} | **{d.stage}** "
                f"| {d.base_s:.6f} | {d.new_s:.6f} | {ratio} |"
            )
    if c.improvements:
        lines.append("")
        lines.append(f"{len(c.improvements)} improvement(s):")
        lines.append("")
        for d in c.improvements:
            lines.append(f"- {d.describe()}")
    for title, keys in (("Only in baseline", c.only_in_baseline),
                        ("Only in current", c.only_in_current)):
        if keys:
            lines.append("")
            lines.append(f"{title} (unmatched, not compared):")
            lines.append("")
            for workload, size, solver in keys:
                lines.append(f"- {workload} `{size}` [{solver}]")
    lines.append("")
    return "\n".join(lines)
