"""Cross-PR bench regression detection over ``repro-bench/1`` documents.

``benchmarks/run_bench.py`` leaves a schema-stable snapshot per PR; the
trajectory only means something once two snapshots can be *compared*.
This module matches the runs of two bench documents on their identity
``(workload, size, solver)``, compares every stage time plus the run
total, and classifies each comparison:

* **regression** — ``new > base * threshold`` *and* ``new - base >=
  min_seconds``.  Both gates are needed: a relative threshold alone
  flags a 0.3 ms stage that doubled into 0.6 ms (pure scheduler noise),
  an absolute floor alone misses a 10 s stage creeping up 20%;
* **improvement** — the mirror image (``new < base / threshold`` with
  the same absolute floor), reported but never fatal;
* unmatched runs on either side are listed so a silently shrunk sweep
  cannot masquerade as "no regressions".

:func:`markdown_report` renders the whole comparison as the artifact CI
uploads; ``benchmarks/compare_bench.py`` is the command-line gate that
exits non-zero when any regression survives the noise gates.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "BenchComparison",
    "StageDelta",
    "TrendReport",
    "load_bench",
    "compare_benchmarks",
    "detect_trend",
    "markdown_report",
    "trend_markdown",
    "DEFAULT_THRESHOLD",
    "DEFAULT_MIN_SECONDS",
]

BENCH_SCHEMA = "repro-bench/1"

#: A stage must slow down by this factor to count as a regression.
DEFAULT_THRESHOLD = 1.5
#: ... and by at least this many absolute seconds.  Sub-millisecond
#: stages double and halve with scheduler jitter; they are never
#: signal on their own.
DEFAULT_MIN_SECONDS = 0.05


def load_bench(path) -> dict[str, Any]:
    """Read and schema-check a ``repro-bench/1`` JSON document."""
    with open(path) as fh:
        document = json.load(fh)
    if not isinstance(document, dict) or document.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"{path}: not a {BENCH_SCHEMA} bench document")
    return document


def run_key(run: dict[str, Any]) -> tuple[str, str, str]:
    """The identity a run is matched on: (workload, size, solver)."""
    return (
        str(run.get("workload")),
        json.dumps(run.get("size", {}), sort_keys=True),
        str(run.get("solver")),
    )


@dataclass
class StageDelta:
    """One (run, stage) comparison between baseline and current."""

    workload: str
    size: str
    solver: str
    stage: str
    base_s: float
    new_s: float
    verdict: str  # "regression" | "improvement" | "ok"

    @property
    def ratio(self) -> float | None:
        return self.new_s / self.base_s if self.base_s > 0 else None

    @property
    def delta_s(self) -> float:
        return self.new_s - self.base_s

    def describe(self) -> str:
        """One-line human rendering: run identity, times, ratio."""
        ratio = f"{self.ratio:.2f}x" if self.ratio is not None else "new"
        return (
            f"{self.workload} {self.size} [{self.solver}] {self.stage}: "
            f"{self.base_s:.6f}s -> {self.new_s:.6f}s ({ratio})"
        )


@dataclass
class BenchComparison:
    """The full result of comparing two bench documents."""

    baseline_label: str
    current_label: str
    threshold: float
    min_seconds: float
    deltas: list[StageDelta] = field(default_factory=list)
    only_in_baseline: list[tuple[str, str, str]] = field(default_factory=list)
    only_in_current: list[tuple[str, str, str]] = field(default_factory=list)

    @property
    def regressions(self) -> list[StageDelta]:
        return [d for d in self.deltas if d.verdict == "regression"]

    @property
    def improvements(self) -> list[StageDelta]:
        return [d for d in self.deltas if d.verdict == "improvement"]

    @property
    def ok(self) -> bool:
        """True when no stage regressed (unmatched runs are reported,
        not fatal — sweeps legitimately grow between PRs)."""
        return not self.regressions


def _classify(base_s: float, new_s: float, threshold: float,
              min_seconds: float) -> str:
    if new_s > base_s * threshold and new_s - base_s >= min_seconds:
        return "regression"
    if new_s < base_s / threshold and base_s - new_s >= min_seconds:
        return "improvement"
    return "ok"


def compare_benchmarks(
    baseline: dict[str, Any],
    current: dict[str, Any],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> BenchComparison:
    """Match runs of two bench documents and classify every stage delta.

    ``threshold`` is the relative slow-down factor (1.5 = 50% slower),
    ``min_seconds`` the absolute floor a delta must also clear.  Per
    matched run every named stage plus the ``total`` time is compared;
    a stage present on only one side is compared against 0.0 (which the
    absolute floor then judges).
    """
    if threshold <= 1.0:
        raise ValueError(f"threshold must be > 1.0, got {threshold}")
    if min_seconds < 0:
        raise ValueError(f"min_seconds must be >= 0, got {min_seconds}")
    base_runs = {run_key(r): r for r in baseline.get("runs", [])}
    new_runs = {run_key(r): r for r in current.get("runs", [])}
    comparison = BenchComparison(
        baseline_label=str(baseline.get("label", "baseline")),
        current_label=str(current.get("label", "current")),
        threshold=threshold,
        min_seconds=min_seconds,
        only_in_baseline=sorted(set(base_runs) - set(new_runs)),
        only_in_current=sorted(set(new_runs) - set(base_runs)),
    )
    for key in sorted(set(base_runs) & set(new_runs)):
        base, new = base_runs[key], new_runs[key]
        workload, size, solver = key
        stages = sorted(set(base.get("stages", {})) | set(new.get("stages", {})))
        pairs = [(s, float(base.get("stages", {}).get(s, 0.0)),
                  float(new.get("stages", {}).get(s, 0.0))) for s in stages]
        pairs.append(("total", float(base.get("total_s", 0.0)),
                      float(new.get("total_s", 0.0))))
        for stage, base_s, new_s in pairs:
            comparison.deltas.append(StageDelta(
                workload=workload, size=size, solver=solver, stage=stage,
                base_s=base_s, new_s=new_s,
                verdict=_classify(base_s, new_s, threshold, min_seconds),
            ))
    return comparison


@dataclass
class TrendReport:
    """Time-series regression verdict over a ledger's bench history.

    The pairwise :class:`BenchComparison` generalised to *n* runs: the
    newest run's stage times are judged against the **median** of every
    earlier observation of the same ``(workload, size, solver, stage)``
    series, with the same dual noise gates.  The median baseline makes
    one historically slow run (a loaded CI box) unable to mask — or
    fake — a regression the way a single-snapshot baseline can.
    """

    threshold: float
    min_seconds: float
    run_ids: list[str] = field(default_factory=list)
    deltas: list[StageDelta] = field(default_factory=list)
    new_series: list[tuple[str, str, str]] = field(default_factory=list)
    stale_series: list[tuple[str, str, str]] = field(default_factory=list)

    @property
    def regressions(self) -> list[StageDelta]:
        return [d for d in self.deltas if d.verdict == "regression"]

    @property
    def improvements(self) -> list[StageDelta]:
        return [d for d in self.deltas if d.verdict == "improvement"]

    @property
    def ok(self) -> bool:
        """True when no stage regressed against its historical median."""
        return not self.regressions


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    return ordered[mid] if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2


def _bench_of_run(document: dict[str, Any]) -> dict[str, Any] | None:
    bench = document.get("bench")
    if isinstance(bench, dict) and bench.get("schema") == BENCH_SCHEMA:
        return bench
    return None


def detect_trend(
    run_documents: list[dict[str, Any]],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
    window: int | None = None,
) -> TrendReport:
    """Judge the newest ledger run against its own bench history.

    ``run_documents`` are ``repro-run/1`` documents oldest-first (what
    :meth:`repro.obs.ledger.RunLedger.runs` returns); only those
    embedding a bench section participate.  ``window`` keeps just the
    most recent *n* bench runs (``None`` = all history).  Stage values
    in the newest run are classified against the median of all earlier
    values of the same series with :func:`compare_benchmarks`'s gates;
    a series first seen in the newest run is listed in ``new_series``,
    one that vanished from it in ``stale_series`` — reported, never
    fatal, mirroring the pairwise comparison's unmatched-run policy.
    With fewer than two bench runs there is no history to trend against
    and the report is trivially ok.
    """
    if threshold <= 1.0:
        raise ValueError(f"threshold must be > 1.0, got {threshold}")
    if min_seconds < 0:
        raise ValueError(f"min_seconds must be >= 0, got {min_seconds}")
    benched = [(str(doc.get("run_id", "?")), _bench_of_run(doc))
               for doc in run_documents if _bench_of_run(doc) is not None]
    if window is not None:
        benched = benched[-window:]
    report = TrendReport(
        threshold=threshold, min_seconds=min_seconds,
        run_ids=[run_id for run_id, _ in benched],
    )
    if len(benched) < 2:
        return report

    # (workload, size, solver, stage) -> per-run values, oldest first.
    series: dict[tuple[str, str, str, str], list[float]] = {}
    latest: dict[tuple[str, str, str, str], float] = {}
    for position, (_run_id, bench) in enumerate(benched):
        is_newest = position == len(benched) - 1
        for run in bench.get("runs", []):
            workload, size, solver = run_key(run)
            stages = dict(run.get("stages", {}))
            stages["total"] = run.get("total_s", 0.0)
            for stage, value in stages.items():
                key = (workload, size, solver, str(stage))
                if is_newest:
                    latest[key] = float(value)
                else:
                    series.setdefault(key, []).append(float(value))

    seen_runs: set[tuple[str, str, str]] = set()
    for key in sorted(latest):
        workload, size, solver, stage = key
        history = series.get(key)
        if history is None:
            identity = (workload, size, solver)
            if identity not in seen_runs:
                seen_runs.add(identity)
                report.new_series.append(identity)
            continue
        baseline = _median(history)
        report.deltas.append(StageDelta(
            workload=workload, size=size, solver=solver, stage=stage,
            base_s=baseline, new_s=latest[key],
            verdict=_classify(baseline, latest[key], threshold, min_seconds),
        ))
    stale = {(w, s, v) for (w, s, v, _stage) in series} - \
            {(w, s, v) for (w, s, v, _stage) in latest}
    report.stale_series = sorted(stale)
    return report


def markdown_report(comparison: BenchComparison) -> str:
    """The comparison as a markdown document (the CI artifact)."""
    c = comparison
    lines = [
        f"# Bench comparison: `{c.baseline_label}` → `{c.current_label}`",
        "",
        f"Gates: regression = slower than {c.threshold:.2f}x baseline "
        f"**and** ≥ {c.min_seconds:g}s absolute.",
        "",
    ]
    if c.ok:
        matched = len({(d.workload, d.size, d.solver) for d in c.deltas})
        lines.append(
            f"**No regressions** across {matched} matched run(s) / "
            f"{len(c.deltas)} stage comparison(s)."
        )
    else:
        lines.append(f"**{len(c.regressions)} REGRESSION(S) DETECTED:**")
        lines.append("")
        lines.append("| workload | size | solver | stage | base s | new s | ratio |")
        lines.append("|---|---|---|---|---|---|---|")
        for d in c.regressions:
            ratio = f"{d.ratio:.2f}x" if d.ratio is not None else "new"
            lines.append(
                f"| {d.workload} | `{d.size}` | {d.solver} | **{d.stage}** "
                f"| {d.base_s:.6f} | {d.new_s:.6f} | {ratio} |"
            )
    if c.improvements:
        lines.append("")
        lines.append(f"{len(c.improvements)} improvement(s):")
        lines.append("")
        for d in c.improvements:
            lines.append(f"- {d.describe()}")
    for title, keys in (("Only in baseline", c.only_in_baseline),
                        ("Only in current", c.only_in_current)):
        if keys:
            lines.append("")
            lines.append(f"{title} (unmatched, not compared):")
            lines.append("")
            for workload, size, solver in keys:
                lines.append(f"- {workload} `{size}` [{solver}]")
    lines.append("")
    return "\n".join(lines)


def trend_markdown(report: TrendReport) -> str:
    """The trend verdict as a markdown document (the CI artifact)."""
    r = report
    lines = [
        "# Ledger bench trend",
        "",
        f"History: {len(r.run_ids)} bench run(s) "
        f"(ids: {', '.join(r.run_ids) if r.run_ids else 'none'}); newest "
        f"judged against the median of the earlier ones.",
        "",
        f"Gates: regression = slower than {r.threshold:.2f}x the "
        f"historical median **and** ≥ {r.min_seconds:g}s absolute.",
        "",
    ]
    if len(r.run_ids) < 2:
        lines.append("**Not enough history to trend** (need at least two "
                     "bench runs in the ledger).")
    elif r.ok:
        lines.append(
            f"**No regressions** across {len(r.deltas)} trended stage "
            f"series."
        )
    else:
        lines.append(f"**{len(r.regressions)} REGRESSION(S) DETECTED:**")
        lines.append("")
        lines.append("| workload | size | solver | stage | median s | latest s | ratio |")
        lines.append("|---|---|---|---|---|---|---|")
        for d in r.regressions:
            ratio = f"{d.ratio:.2f}x" if d.ratio is not None else "new"
            lines.append(
                f"| {d.workload} | `{d.size}` | {d.solver} | **{d.stage}** "
                f"| {d.base_s:.6f} | {d.new_s:.6f} | {ratio} |"
            )
    if r.improvements:
        lines.append("")
        lines.append(f"{len(r.improvements)} improvement(s):")
        lines.append("")
        for d in r.improvements:
            lines.append(f"- {d.describe()}")
    for title, keys in (("New series (first seen in the newest run)",
                         r.new_series),
                        ("Stale series (absent from the newest run)",
                         r.stale_series)):
        if keys:
            lines.append("")
            lines.append(f"{title}:")
            lines.append("")
            for workload, size, solver in keys:
                lines.append(f"- {workload} `{size}` [{solver}]")
    lines.append("")
    return "\n".join(lines)
