"""Hierarchical span tracing for the tool-chain hot path.

A :class:`Span` is one timed region of work — ``pepa.statespace``,
``ctmc.solve`` — with wall-clock start/end, arbitrary key/value
attributes and child spans, so a whole pipeline run renders as a tree
of where the time went.  A :class:`Tracer` hands out spans as context
managers and keeps the nesting stack::

    tracer = Tracer()
    with use_tracer(tracer):
        with tracer.span("pepa.statespace") as sp:
            ...
            sp.set(states=space.size, arcs=len(space.arcs))
    print(render_trace(tracer))

Instrumented library code never imports a concrete tracer; it calls
:func:`get_tracer`, which returns the ambient tracer — by default the
:data:`NULL_TRACER`, whose ``span`` hands back one shared no-op object.
The disabled path is a method call returning a singleton, no
allocation, no clock read — the "zero-cost when off" contract the
benchmarks rely on.

Exceptions propagate through spans untouched; a span whose body raised
is closed with ``error`` set to the exception type name, so partial
traces of failed runs are still meaningful.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "set_resource_probe",
]


#: Ambient per-span resource probe (see :mod:`repro.obs.profile`).
#: ``None`` keeps span creation at two clock reads; a probe adds
#: deterministic CPU (and optionally tracemalloc) accounting per span.
_resource_probe = None


def set_resource_probe(probe) -> Any:
    """Install a per-span resource probe (``None`` = off); returns previous."""
    global _resource_probe
    previous = _resource_probe
    _resource_probe = probe
    return previous


class Span:
    """One timed, attributed region of work in a trace tree.

    Besides the monotonic ``start``/``end`` pair, every span stamps its
    wall-clock ``epoch`` and the ``pid``/``tid`` that opened it, so
    traces merged across worker processes stay attributable and export
    cleanly to Chrome Trace Event Format (:mod:`repro.obs.export`).
    """

    __slots__ = ("name", "start", "end", "attributes", "children",
                 "epoch", "pid", "tid", "_res")

    def __init__(self, name: str, attributes: dict[str, Any] | None = None):
        self.name = name
        self.start = time.perf_counter()
        self.epoch = time.time()
        self.pid = os.getpid()
        self.tid = threading.get_ident()
        self.end: float | None = None
        self.attributes: dict[str, Any] = dict(attributes) if attributes else {}
        self.children: list[Span] = []
        probe = _resource_probe
        self._res = (probe, probe.begin()) if probe is not None else None

    @property
    def duration(self) -> float:
        """Elapsed seconds (up to now for a still-open span)."""
        return (time.perf_counter() if self.end is None else self.end) - self.start

    @property
    def closed(self) -> bool:
        return self.end is not None

    def set(self, **attributes: Any) -> "Span":
        """Attach (or overwrite) key/value attributes; returns self."""
        self.attributes.update(attributes)
        return self

    def close(self) -> None:
        """Stamp the end time (idempotent)."""
        if self.end is None:
            self.end = time.perf_counter()
            if self._res is not None:
                probe, token = self._res
                self._res = None
                probe.finish(self, token)

    def find(self, name: str) -> "Span | None":
        """Depth-first search for the first descendant named ``name``."""
        for child in self.children:
            if child.name == name:
                return child
            found = child.find(name)
            if found is not None:
                return found
        return None

    def iter_spans(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready rendering: name, duration, attributes, children.

        ``start_unix``/``pid``/``tid`` were added for the Chrome-trace
        exporter; ``repro-trace/1`` consumers that predate them ignore
        unknown keys, so the schema version is unchanged.
        """
        return {
            "name": self.name,
            "duration_s": round(self.duration, 9),
            "start_unix": round(self.epoch, 6),
            "pid": self.pid,
            "tid": self.tid,
            "attributes": dict(self.attributes),
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:
        state = f"{self.duration:.6f}s" if self.closed else "open"
        return f"Span({self.name!r}, {state}, {len(self.children)} children)"


class _SpanHandle:
    """Context manager opening/closing one span on a tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None and "error" not in self._span.attributes:
            self._span.set(error=exc_type.__name__)
        self._span.close()
        self._tracer._pop(self._span)
        return False


class Tracer:
    """A live tracer collecting a forest of span trees.

    ``roots`` holds every top-level span opened while no other span was
    active (the Choreographer opens one root per diagram, so one
    ``process_xmi`` run yields one trace per diagram).
    """

    enabled = True

    def __init__(self):
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def span(self, name: str, **attributes: Any) -> _SpanHandle:
        """Open a child span of the current span (or a new root)."""
        span = Span(name, attributes)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return _SpanHandle(self, span)

    def _pop(self, span: Span) -> None:
        # Tolerate exits in any order: close everything above the span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            top.close()

    def current(self) -> Span | None:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def stack_names(self) -> list[str]:
        """Outermost-first names of the open spans (the profiler reads
        this from its sampling thread; the list copy keeps it safe)."""
        return [span.name for span in list(self._stack)]

    def annotate(self, **attributes: Any) -> None:
        """Attach attributes to the current span (no-op outside spans)."""
        if self._stack:
            self._stack[-1].set(**attributes)

    def clear(self) -> None:
        """Drop every collected span (the stack must be empty)."""
        self.roots.clear()
        self._stack.clear()

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready rendering of the whole trace forest."""
        return {"schema": "repro-trace/1", "traces": [r.to_dict() for r in self.roots]}


class _NullSpan:
    """The shared do-nothing span; also its own context manager."""

    __slots__ = ()

    name = "null"
    attributes: dict[str, Any] = {}
    children: list[Span] = []
    duration = 0.0
    closed = True

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    def close(self) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every call returns the shared no-op span."""

    enabled = False
    roots: list[Span] = []

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        """The shared no-op span, whatever the name and attributes."""
        return _NULL_SPAN

    def current(self) -> None:
        """Always ``None``: no span is ever open."""
        return None

    def stack_names(self) -> list[str]:
        """Always empty: no span is ever open."""
        return []

    def annotate(self, **attributes: Any) -> None:
        """No-op: there is no span to annotate."""
        pass

    def clear(self) -> None:
        """No-op: nothing is ever collected."""
        pass

    def to_dict(self) -> dict[str, Any]:
        """An empty but schema-valid trace document."""
        return {"schema": "repro-trace/1", "traces": []}


#: The process-wide default: tracing off.
NULL_TRACER = NullTracer()

_active_tracer: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The ambient tracer instrumented code should emit spans to."""
    return _active_tracer


def set_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Install ``tracer`` (``None`` = disable); returns the previous one."""
    global _active_tracer
    previous = _active_tracer
    _active_tracer = NULL_TRACER if tracer is None else tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer | NullTracer) -> Iterator[Tracer | NullTracer]:
    """Scoped installation: the previous tracer is restored on exit."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
