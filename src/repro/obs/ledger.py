"""The persistent run ledger: every invocation leaves a durable record.

A production system is operated through its telemetry *history*, not
single-invocation dumps.  The :class:`RunLedger` is an append-only
on-disk store (format ``repro-runs/1``) of **run documents** — one
``repro-run/1`` JSON file per choreographer / batch / fuzz / bench
invocation, carrying the run's identity (command, label, wall-clock
timestamp passed in from the entrypoint, config fingerprint via
:func:`repro.core.keys.stable_digest`, host info), its per-span
aggregates, metrics snapshot, event/cache/incident statistics, bench
measures and profiler samples — so ``choreographer runs
list|show|compare|trend|export`` can answer "how has this pipeline
been behaving?" across days of history instead of one process
lifetime.

Storage discipline follows :mod:`repro.batch.cache`: documents are
serialised fully before touching the store, published with a temp file
+ ``os.replace`` (a crashed writer can never leave a torn document),
and claimed under a monotonically increasing zero-padded run id with
an exclusive-create loop, so concurrent writers each get their own id.
Nothing is ever rewritten — the ledger only grows, and pruning is an
explicit :meth:`RunLedger.prune`.

The ambient pattern mirrors :mod:`repro.obs.tracing` exactly:
instrumented entrypoints call :func:`get_ledger`, which returns the
shared no-op :data:`NULL_LEDGER` unless a caller installed a live
ledger via :func:`set_ledger`/:func:`use_ledger` — recording is one
``enabled`` check when off.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from repro.utils.sysinfo import host_info, peak_rss_kib

__all__ = [
    "LEDGER_FORMAT",
    "RUN_SCHEMA",
    "RunLedger",
    "NullLedger",
    "NULL_LEDGER",
    "get_ledger",
    "set_ledger",
    "use_ledger",
    "build_run_document",
]

#: On-disk store format, recorded in a ``FORMAT`` marker file so a
#: future layout change can detect (and refuse or migrate) old stores.
LEDGER_FORMAT = "repro-runs/1"

#: Schema of one run document.
RUN_SCHEMA = "repro-run/1"

_ID_WIDTH = 6


class RunLedger:
    """Append-only store of run documents under one directory."""

    enabled = True

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        marker = self.root / "FORMAT"
        if marker.exists():
            found = marker.read_text().strip()
            if found != LEDGER_FORMAT:
                raise ValueError(
                    f"{self.root} is a {found!r} store, not {LEDGER_FORMAT!r}"
                )
        else:
            self._atomic_write(marker, LEDGER_FORMAT + "\n")

    # ------------------------------------------------------------------
    def _atomic_write(self, path: Path, text: str) -> None:
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(text)
        os.replace(tmp, path)

    def _run_path(self, run_id: str) -> Path:
        return self.root / f"run-{run_id}.json"

    # ------------------------------------------------------------------
    def record(self, document: dict[str, Any]) -> str:
        """Append one run document; returns its assigned run id.

        The document is serialised *first* (a document that cannot be
        JSON-encoded leaves nothing on disk), then published under the
        next free id.  ``os.link`` from the temp file claims the id
        atomically; a concurrent writer that wins the race just pushes
        this one to the next id.
        """
        if document.get("schema") != RUN_SCHEMA:
            raise ValueError(
                f"not a {RUN_SCHEMA} document: schema={document.get('schema')!r}"
            )
        document = dict(document)
        ids = self.run_ids()
        next_id = (int(ids[-1]) + 1) if ids else 1
        tmp = self.root / f".record.{os.getpid()}.tmp"
        while True:
            run_id = f"{next_id:0{_ID_WIDTH}d}"
            document["run_id"] = run_id
            tmp.write_text(json.dumps(document, sort_keys=True, indent=2,
                                      default=str) + "\n")
            target = self._run_path(run_id)
            try:
                os.link(tmp, target)
            except FileExistsError:
                next_id += 1
                continue
            except OSError:
                # Filesystem without hard links: fall back to an
                # exclusive create of the final name, then replace.
                try:
                    with open(target, "x"):
                        pass
                except FileExistsError:
                    next_id += 1
                    continue
                os.replace(tmp, target)
                return run_id
            finally:
                tmp.unlink(missing_ok=True)
            return run_id

    # ------------------------------------------------------------------
    def run_ids(self) -> list[str]:
        """Every recorded run id, oldest first."""
        ids = []
        for path in self.root.glob("run-*.json"):
            stem = path.stem[len("run-"):]
            if stem.isdigit():
                ids.append(stem)
        return sorted(ids)

    def load(self, run_id: str) -> dict[str, Any]:
        """One run document by id (zero-padding optional)."""
        if run_id.isdigit():
            run_id = f"{int(run_id):0{_ID_WIDTH}d}"
        path = self._run_path(run_id)
        if not path.exists():
            raise FileNotFoundError(f"no run {run_id!r} in ledger {self.root}")
        document = json.loads(path.read_text())
        if document.get("schema") != RUN_SCHEMA:
            raise ValueError(f"{path}: not a {RUN_SCHEMA} document")
        return document

    def runs(self, *, command: str | None = None,
             last: int | None = None) -> list[dict[str, Any]]:
        """Run documents oldest-first, optionally filtered and tail-limited.

        An unparsable document (torn by an ancient crash, foreign
        bytes) is skipped, never fatal: history survives one bad file.
        """
        out = []
        for run_id in self.run_ids():
            try:
                document = self.load(run_id)
            except (ValueError, OSError, json.JSONDecodeError):
                continue
            if command is not None and document.get("command") != command:
                continue
            out.append(document)
        if last is not None:
            out = out[-last:]
        return out

    def latest(self) -> dict[str, Any] | None:
        """The most recent run document, or ``None`` in an empty ledger."""
        ids = self.run_ids()
        return self.load(ids[-1]) if ids else None

    def prune(self, keep: int) -> int:
        """Delete all but the newest ``keep`` runs; returns the count removed."""
        if keep < 0:
            raise ValueError(f"keep must be >= 0, got {keep}")
        victims = self.run_ids()[:-keep] if keep else self.run_ids()
        for run_id in victims:
            self._run_path(run_id).unlink(missing_ok=True)
        return len(victims)

    def __len__(self) -> int:
        return len(self.run_ids())


class NullLedger:
    """The disabled ledger: records vanish, queries see an empty store."""

    enabled = False
    root = None

    def record(self, document: dict[str, Any]) -> str:
        """No-op: nothing is ever stored; returns an empty id."""
        return ""

    def run_ids(self) -> list[str]:
        """Always empty: nothing is ever stored."""
        return []

    def load(self, run_id: str) -> dict[str, Any]:
        """Always raises: nothing is ever stored."""
        raise FileNotFoundError(f"no run {run_id!r}: the null ledger stores nothing")

    def runs(self, *, command: str | None = None,
             last: int | None = None) -> list[dict[str, Any]]:
        """Always empty: nothing is ever stored."""
        return []

    def latest(self) -> None:
        """Always ``None``: nothing is ever stored."""
        return None

    def prune(self, keep: int) -> int:
        """No-op: there is nothing to prune."""
        return 0

    def __len__(self) -> int:
        return 0


#: The process-wide default: no ledger.
NULL_LEDGER = NullLedger()

_active_ledger: RunLedger | NullLedger = NULL_LEDGER


def get_ledger() -> RunLedger | NullLedger:
    """The ambient ledger entrypoints should record runs into."""
    return _active_ledger


def set_ledger(ledger: RunLedger | NullLedger | None) -> RunLedger | NullLedger:
    """Install ``ledger`` (``None`` = disable); returns the previous one."""
    global _active_ledger
    previous = _active_ledger
    _active_ledger = NULL_LEDGER if ledger is None else ledger
    return previous


@contextmanager
def use_ledger(ledger: RunLedger | NullLedger) -> Iterator[RunLedger | NullLedger]:
    """Scoped installation: the previous ledger is restored on exit."""
    previous = set_ledger(ledger)
    try:
        yield ledger
    finally:
        set_ledger(previous)


# ---------------------------------------------------------------------------
# Run-document assembly
# ---------------------------------------------------------------------------
def build_run_document(
    *,
    command: str,
    created_unix: float | None = None,
    label: str | None = None,
    config: dict[str, Any] | None = None,
    tasks_fingerprint: str | None = None,
    tracer=None,
    metrics=None,
    events=None,
    profile: dict[str, Any] | None = None,
    bench: dict[str, Any] | None = None,
    cache: dict[str, int] | None = None,
    incidents: list[dict[str, Any]] | None = None,
    trace: dict[str, Any] | None = None,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble one ``repro-run/1`` document from a run's artefacts.

    ``created_unix`` is the wall-clock timestamp the *entrypoint*
    observed (defaults to now); ``config`` is fingerprinted via
    :func:`~repro.core.keys.stable_digest` so ``runs trend`` can group
    comparable runs.  ``tracer``/``metrics``/``events`` contribute
    their aggregate views (per-span aggregates, metrics snapshot, event
    counts); pass ``trace`` to additionally embed the full span forest
    (what ``runs export --chrome`` replays).  ``bench`` embeds a
    ``repro-bench/1`` document, ``profile`` a ``repro-profile/1`` one.
    """
    # Imported here, not at module top: repro.core pulls in the numeric
    # layers, which themselves import repro.obs for instrumentation.
    from repro.core.keys import stable_digest
    from repro.obs.analysis import aggregate_spans

    document: dict[str, Any] = {
        "schema": RUN_SCHEMA,
        "command": command,
        "created_unix": round(time.time() if created_unix is None
                              else created_unix, 6),
        "label": label,
        "host": host_info(),
        "peak_rss_kib": peak_rss_kib(),
        "config": dict(config) if config else {},
        "config_fingerprint": stable_digest(dict(config) if config else {}),
    }
    if tasks_fingerprint is not None:
        document["tasks_fingerprint"] = tasks_fingerprint
    if tracer is not None:
        document["spans"] = aggregate_spans(tracer)
    if metrics is not None:
        snapshot = metrics if isinstance(metrics, dict) else metrics.as_dict()
        document["metrics"] = snapshot.get("metrics", {})
    if events is not None:
        if isinstance(events, list):
            names: dict[str, int] = {}
            for event in events:
                name = str(event.get("event"))
                names[name] = names.get(name, 0) + 1
            document["events"] = {"count": len(events), "dropped": 0,
                                  "by_name": names}
        else:
            names = {}
            for event in events:
                names[event.name] = names.get(event.name, 0) + 1
            document["events"] = {"count": len(events),
                                  "dropped": events.dropped, "by_name": names}
    if profile is not None and profile.get("sample_count"):
        document["profile"] = profile
    if bench is not None:
        document["bench"] = bench
    if cache:
        document["cache"] = dict(cache)
    if incidents:
        document["incidents"] = list(incidents)
    if trace is not None:
        document["trace"] = trace
    if extra:
        document.update(extra)
    return document
