"""Deterministic fault injection for the steady-state solver registry.

Robustness code that is never exercised is decoration.  This module
wraps entries of :data:`repro.ctmc.steady.SOLVERS` so tests (and chaos
drills) can make a chosen method fail in a controlled, reproducible way
— a convergence failure on exactly the Nth call, a NaN vector, a zero
vector, an artificial slowdown, or an arbitrary transient exception —
and then prove that the fallback chain, the retry logic and the
pipeline degradation actually engage.

Faults are keyed on the wrapper's own 1-based call counter, so the
injection is deterministic regardless of timing::

    with inject_fault("direct", FaultSpec(kind="converge")):
        pi, diag = solve_with_fallback(chain)   # direct fails, gmres wins
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.ctmc.steady import SOLVERS, _call_solver
from repro.exceptions import SolverError

__all__ = ["FaultSpec", "FaultInjector", "inject_fault", "FAULT_KINDS"]

#: The supported fault kinds (see :class:`FaultSpec`).
FAULT_KINDS = ("converge", "nan", "zero", "slow", "exception")


@dataclass(frozen=True)
class FaultSpec:
    """What to inject and when.

    ``kind`` — ``"converge"`` raises a :class:`SolverError` as a
    non-converging method would; ``"nan"`` returns an all-NaN vector;
    ``"zero"`` returns an all-zero vector (both are rejected downstream
    by normalisation); ``"slow"`` sleeps ``delay`` seconds and then
    delegates to the real solver; ``"exception"`` raises
    ``exception(message)`` (default :class:`RuntimeError`) — a
    transient infrastructure fault.

    ``calls`` lists the 1-based call indices that fault; every other
    call passes straight through to the wrapped solver.
    """

    kind: str
    calls: tuple[int, ...] = (1,)
    delay: float = 0.0
    exception: type[Exception] | None = None
    message: str = "injected fault"

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )

    @classmethod
    def first_n(cls, kind: str, n: int, **kw) -> "FaultSpec":
        """A spec faulting the first ``n`` calls (transient-fault shape)."""
        return cls(kind=kind, calls=tuple(range(1, n + 1)), **kw)

    def applies_to(self, call_index: int) -> bool:
        """True if the given 1-based call should fault."""
        return call_index in self.calls


class FaultInjector:
    """Context manager that swaps one solver registry entry for a
    faulting wrapper, restoring the original on exit.

    Attributes after (or during) use: ``calls`` — how many times the
    wrapped solver was invoked; ``log`` — a list of
    ``(call_index, "fault" | "pass")`` pairs.
    """

    def __init__(self, method: str, spec: FaultSpec, solvers: dict | None = None):
        self.method = method
        self.spec = spec
        self.solvers = SOLVERS if solvers is None else solvers
        if method not in self.solvers:
            raise SolverError(
                f"cannot inject a fault into unknown method {method!r}"
            )
        self.calls = 0
        self.log: list[tuple[int, str]] = []
        self._original = None

    def _wrapped(self, chain, tol, max_iterations, options=None):
        self.calls += 1
        idx = self.calls
        spec = self.spec
        if spec.applies_to(idx):
            self.log.append((idx, "fault"))
            if spec.kind == "converge":
                raise SolverError(
                    f"{spec.message}: injected convergence failure on "
                    f"call {idx} of {self.method} (info=999)"
                )
            if spec.kind == "nan":
                return np.full(chain.n_states, np.nan)
            if spec.kind == "zero":
                return np.zeros(chain.n_states)
            if spec.kind == "exception":
                raise (spec.exception or RuntimeError)(spec.message)
            # "slow": delay, then behave normally
            time.sleep(spec.delay)
        else:
            self.log.append((idx, "pass"))
        return _call_solver(self._original, chain, tol, max_iterations, options)

    def __enter__(self) -> "FaultInjector":
        """Install the faulting wrapper in the registry."""
        self._original = self.solvers[self.method]
        self.solvers[self.method] = self._wrapped
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Restore the original solver, even if the block raised."""
        self.solvers[self.method] = self._original
        self._original = None


def inject_fault(method: str, spec: FaultSpec,
                 solvers: dict | None = None) -> FaultInjector:
    """Convenience constructor: ``with inject_fault("gmres", spec): ...``.

    Wraps ``solvers[method]`` (default: the live
    :data:`repro.ctmc.steady.SOLVERS` registry) for the duration of the
    ``with`` block.
    """
    return FaultInjector(method, spec, solvers=solvers)
