"""Deterministic fault injection for solvers and the batch layer.

Robustness code that is never exercised is decoration.  This module
wraps entries of :data:`repro.ctmc.steady.SOLVERS` so tests (and chaos
drills) can make a chosen method fail in a controlled, reproducible way
— a convergence failure on exactly the Nth call, a NaN vector, a zero
vector, an artificial slowdown, or an arbitrary transient exception —
and then prove that the fallback chain, the retry logic and the
pipeline degradation actually engage.

Faults are keyed on the wrapper's own 1-based call counter, so the
injection is deterministic regardless of timing::

    with inject_fault("direct", FaultSpec(kind="converge")):
        pi, diag = solve_with_fallback(chain)   # direct fails, gmres wins

Beyond the solver registry, :class:`BatchFaultPlan` injects *batch
layer* faults — an abrupt worker death on task k, a hung task, a full
disk under the derivation cache, a bit flip in a published cache entry
— keyed on ``(task id, 1-based attempt)``, so every recovery path of
the supervised :mod:`repro.batch.engine` (retry, pool rebuild,
quarantine, checkpoint/resume, corruption sweep) can be proven under
deterministic chaos rather than assumed.  Plans are picklable and
installed ambiently (:func:`set_batch_faults`), which is how the batch
engine ships them into its worker processes.
"""

from __future__ import annotations

import errno
import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.ctmc.steady import SOLVERS, _call_solver
from repro.exceptions import SolverError

__all__ = [
    "FaultSpec",
    "FaultInjector",
    "inject_fault",
    "FAULT_KINDS",
    "BATCH_FAULT_KINDS",
    "BatchFault",
    "BatchFaultPlan",
    "InjectedWorkerCrash",
    "get_batch_faults",
    "set_batch_faults",
    "use_batch_faults",
    "current_task",
    "get_current_task",
]

#: The supported fault kinds (see :class:`FaultSpec`).
FAULT_KINDS = ("converge", "nan", "zero", "slow", "exception")


@dataclass(frozen=True)
class FaultSpec:
    """What to inject and when.

    ``kind`` — ``"converge"`` raises a :class:`SolverError` as a
    non-converging method would; ``"nan"`` returns an all-NaN vector;
    ``"zero"`` returns an all-zero vector (both are rejected downstream
    by normalisation); ``"slow"`` sleeps ``delay`` seconds and then
    delegates to the real solver; ``"exception"`` raises
    ``exception(message)`` (default :class:`RuntimeError`) — a
    transient infrastructure fault.

    ``calls`` lists the 1-based call indices that fault; every other
    call passes straight through to the wrapped solver.
    """

    kind: str
    calls: tuple[int, ...] = (1,)
    delay: float = 0.0
    exception: type[Exception] | None = None
    message: str = "injected fault"

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )

    @classmethod
    def first_n(cls, kind: str, n: int, **kw) -> "FaultSpec":
        """A spec faulting the first ``n`` calls (transient-fault shape)."""
        return cls(kind=kind, calls=tuple(range(1, n + 1)), **kw)

    def applies_to(self, call_index: int) -> bool:
        """True if the given 1-based call should fault."""
        return call_index in self.calls


class FaultInjector:
    """Context manager that swaps one solver registry entry for a
    faulting wrapper, restoring the original on exit.

    Attributes after (or during) use: ``calls`` — how many times the
    wrapped solver was invoked; ``log`` — a list of
    ``(call_index, "fault" | "pass")`` pairs.
    """

    def __init__(self, method: str, spec: FaultSpec, solvers: dict | None = None):
        self.method = method
        self.spec = spec
        self.solvers = SOLVERS if solvers is None else solvers
        if method not in self.solvers:
            raise SolverError(
                f"cannot inject a fault into unknown method {method!r}"
            )
        self.calls = 0
        self.log: list[tuple[int, str]] = []
        self._original = None

    def _wrapped(self, chain, tol, max_iterations, options=None):
        self.calls += 1
        idx = self.calls
        spec = self.spec
        if spec.applies_to(idx):
            self.log.append((idx, "fault"))
            if spec.kind == "converge":
                raise SolverError(
                    f"{spec.message}: injected convergence failure on "
                    f"call {idx} of {self.method} (info=999)"
                )
            if spec.kind == "nan":
                return np.full(chain.n_states, np.nan)
            if spec.kind == "zero":
                return np.zeros(chain.n_states)
            if spec.kind == "exception":
                raise (spec.exception or RuntimeError)(spec.message)
            # "slow": delay, then behave normally
            time.sleep(spec.delay)
        else:
            self.log.append((idx, "pass"))
        return _call_solver(self._original, chain, tol, max_iterations, options)

    def __enter__(self) -> "FaultInjector":
        """Install the faulting wrapper in the registry."""
        self._original = self.solvers[self.method]
        self.solvers[self.method] = self._wrapped
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Restore the original solver, even if the block raised."""
        self.solvers[self.method] = self._original
        self._original = None


def inject_fault(method: str, spec: FaultSpec,
                 solvers: dict | None = None) -> FaultInjector:
    """Convenience constructor: ``with inject_fault("gmres", spec): ...``.

    Wraps ``solvers[method]`` (default: the live
    :data:`repro.ctmc.steady.SOLVERS` registry) for the duration of the
    ``with`` block.
    """
    return FaultInjector(method, spec, solvers=solvers)


# ---------------------------------------------------------------------------
# Batch-layer faults
# ---------------------------------------------------------------------------

#: The supported batch-layer fault kinds (see :class:`BatchFault`).
BATCH_FAULT_KINDS = ("kill", "hang", "task-error", "cache-enospc", "cache-bitflip")


class InjectedWorkerCrash(BaseException):
    """Inline-mode stand-in for an abrupt worker death.

    With ``jobs >= 2`` a ``kill`` fault really SIGKILLs the worker
    process so the supervisor sees a genuine ``BrokenProcessPool``;
    with ``jobs == 1`` the task runs in the engine's own process, where
    a real kill would take the whole run down, so the fault raises this
    instead and the inline supervisor treats it exactly like a dead
    worker.  Deliberately a :class:`BaseException`: the task-level
    ``except Exception`` capture must never swallow a simulated crash.
    """


@dataclass(frozen=True)
class BatchFault:
    """One deterministic batch-layer fault.

    ``kind`` — ``"kill"`` terminates the worker process abruptly
    (SIGKILL; an :class:`InjectedWorkerCrash` when running inline);
    ``"hang"`` sleeps ``delay`` seconds at task start, long enough to
    trip the supervisor's per-task timeout; ``"task-error"`` raises a
    transient :class:`RuntimeError` inside the task; ``"cache-enospc"``
    makes the derivation cache's next store fail with ``ENOSPC`` (full
    disk); ``"cache-bitflip"`` flips one byte of the entry the cache
    just published, so a later fetch must detect the corruption.

    ``task`` is the :class:`~repro.batch.engine.BatchTask` id to fault
    (``None`` or ``"*"`` at parse time matches every task); ``attempts``
    lists the 1-based execution attempts that fault, so a
    ``kill @ (1,)`` proves the retry path while a ``kill @ (1, 2, 3)``
    proves quarantine.
    """

    kind: str
    task: str | None = None
    attempts: tuple[int, ...] = (1,)
    delay: float = 30.0
    message: str = "injected batch fault"

    def __post_init__(self):
        if self.kind not in BATCH_FAULT_KINDS:
            raise ValueError(
                f"unknown batch fault kind {self.kind!r}; "
                f"choose from {BATCH_FAULT_KINDS}"
            )

    def matches(self, task_id: str, attempt: int) -> bool:
        """True if this fault fires for ``task_id`` on ``attempt``."""
        return (self.task is None or self.task == task_id) and attempt in self.attempts


@dataclass(frozen=True)
class BatchFaultPlan:
    """A picklable set of batch faults, shipped to every worker.

    Built programmatically or parsed from CLI drill specs of the form
    ``kind:task[@attempts][:delay]``::

        BatchFaultPlan.parse(["kill:model@1"])          # crash once, recover
        BatchFaultPlan.parse(["hang:model@1,2:30"])     # hang twice for 30 s
        BatchFaultPlan.parse(["cache-bitflip:*"])       # corrupt every store
    """

    faults: tuple[BatchFault, ...] = ()

    @classmethod
    def parse(cls, specs) -> "BatchFaultPlan":
        """Build a plan from ``kind:task[@attempts][:delay]`` spec strings."""
        faults = []
        for spec in specs:
            kind, sep, rest = spec.partition(":")
            if not sep or not rest:
                raise ValueError(
                    f"batch fault spec {spec!r} must look like "
                    "'kind:task[@attempts][:delay]'"
                )
            rest, _, delay_text = rest.partition(":")
            task, _, attempts_text = rest.partition("@")
            faults.append(BatchFault(
                kind=kind,
                task=None if task in ("", "*") else task,
                attempts=(
                    tuple(int(a) for a in attempts_text.split(","))
                    if attempts_text else (1,)
                ),
                delay=float(delay_text) if delay_text else 30.0,
            ))
        return cls(faults=tuple(faults))

    def faults_for(self, task_id: str, attempt: int,
                   kinds: tuple[str, ...]) -> list[BatchFault]:
        """The matching faults of the given kinds, in plan order."""
        return [f for f in self.faults
                if f.kind in kinds and f.matches(task_id, attempt)]

    def apply_task_start(self, task_id: str, attempt: int,
                         *, inline: bool) -> None:
        """Fire any task-level fault due at the start of this attempt.

        ``kill`` never returns (SIGKILL, or raises
        :class:`InjectedWorkerCrash` when ``inline``); ``hang`` sleeps;
        ``task-error`` raises a transient :class:`RuntimeError`.
        """
        for fault in self.faults_for(task_id, attempt,
                                     ("kill", "hang", "task-error")):
            if fault.kind == "kill":
                if inline:
                    raise InjectedWorkerCrash(
                        f"{fault.message}: simulated worker death on "
                        f"task {task_id!r} attempt {attempt}"
                    )
                os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover
            elif fault.kind == "hang":
                time.sleep(fault.delay)
            else:  # task-error
                raise RuntimeError(
                    f"{fault.message}: injected transient error on "
                    f"task {task_id!r} attempt {attempt}"
                )


_active_batch_faults: BatchFaultPlan | None = None
#: The task the current process is executing, as ``(task_id, attempt)``;
#: set by the batch engine so cache-level faults can key on it.
_current_task: tuple[str, int] | None = None


def get_batch_faults() -> BatchFaultPlan | None:
    """The ambient batch fault plan (``None`` = no chaos, zero cost)."""
    return _active_batch_faults


def set_batch_faults(plan: BatchFaultPlan | None) -> BatchFaultPlan | None:
    """Install ``plan`` (``None`` = disable); returns the previous one."""
    global _active_batch_faults
    previous = _active_batch_faults
    _active_batch_faults = plan
    return previous


@contextmanager
def use_batch_faults(plan: BatchFaultPlan | None) -> Iterator[BatchFaultPlan | None]:
    """Scoped installation: the previous plan is restored on exit."""
    previous = set_batch_faults(plan)
    try:
        yield plan
    finally:
        set_batch_faults(previous)


def get_current_task() -> tuple[str, int] | None:
    """The ``(task_id, attempt)`` this process is executing, if any."""
    return _current_task


@contextmanager
def current_task(task_id: str, attempt: int) -> Iterator[None]:
    """Mark the task this process is executing for the ``with`` block."""
    global _current_task
    previous = _current_task
    _current_task = (task_id, attempt)
    try:
        yield
    finally:
        _current_task = previous


def maybe_fault_cache_store(key) -> None:
    """Raise ``OSError(ENOSPC)`` if a ``cache-enospc`` fault is due.

    Called by :meth:`repro.batch.cache.DerivationCache.store` before it
    touches the filesystem; a no-op unless a plan is installed *and*
    the current task/attempt matches.
    """
    plan, task = _active_batch_faults, _current_task
    if plan is None or task is None:
        return
    if plan.faults_for(task[0], task[1], ("cache-enospc",)):
        raise OSError(errno.ENOSPC, f"injected ENOSPC storing {key.describe()}")


def maybe_fault_cache_bitflip(path) -> bool:
    """Flip one byte of a just-published cache entry if a fault is due.

    Returns True when a flip happened.  The flipped byte sits past the
    entry's checksum header, so the next fetch (or a ``verify()``
    sweep) must detect the mismatch and treat the entry as corrupt.
    """
    plan, task = _active_batch_faults, _current_task
    if plan is None or task is None:
        return False
    if not plan.faults_for(task[0], task[1], ("cache-bitflip",)):
        return False
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF
    path.write_bytes(bytes(blob))
    return True
