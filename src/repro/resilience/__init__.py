"""Resilience subsystem: fallback solver chains, execution budgets and
deterministic fault injection.

The Choreographer tool chain (UML → extract → PEPA net → CTMC solve →
reflect) composes several fallible stages; this package supplies the
machinery that keeps one failure from taking the whole run down:

* :mod:`repro.resilience.fallback` — an ordered policy of steady-state
  methods tried in turn, with bounded retry-with-backoff for iterative
  methods and a structured :class:`~repro.resilience.fallback.SolveDiagnostics`
  record of every attempt;
* :mod:`repro.resilience.budget` — cooperative wall-clock/state-count
  budgets threaded through state-space derivation, raising a resumable
  :class:`~repro.exceptions.BudgetExceededError` instead of dying deep
  in a loop;
* :mod:`repro.resilience.faultinject` — deterministic fault injection
  at two levels: wrappers around :data:`repro.ctmc.steady.SOLVERS`
  entries that inject convergence failures, NaN vectors, slow
  convergence or transient exceptions on selected calls, and
  batch-layer chaos drills (:class:`~repro.resilience.faultinject.BatchFaultPlan`)
  that kill workers, hang tasks, fill the cache's disk or flip bits in
  published cache entries — used by the tests to prove the fallback,
  retry and recovery logic actually engage.
"""

from repro.exceptions import BudgetExceededError
from repro.resilience.budget import BudgetSpec, Deadline, ExecutionBudget
from repro.resilience.fallback import (
    AttemptRecord,
    FallbackPolicy,
    SolveDiagnostics,
    solve_with_fallback,
)
from repro.resilience.faultinject import (
    BatchFault,
    BatchFaultPlan,
    FaultInjector,
    FaultSpec,
    InjectedWorkerCrash,
    get_batch_faults,
    inject_fault,
    set_batch_faults,
    use_batch_faults,
)

__all__ = [
    "AttemptRecord",
    "BatchFault",
    "BatchFaultPlan",
    "BudgetExceededError",
    "BudgetSpec",
    "Deadline",
    "ExecutionBudget",
    "FallbackPolicy",
    "FaultInjector",
    "FaultSpec",
    "InjectedWorkerCrash",
    "SolveDiagnostics",
    "get_batch_faults",
    "inject_fault",
    "set_batch_faults",
    "solve_with_fallback",
    "use_batch_faults",
]
