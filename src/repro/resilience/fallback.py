"""Fallback-chain steady-state solving with bounded retries.

A production service cannot abort a whole request because ``gmres``
returned ``info != 0`` — numerical back ends are fallible,
interchangeable components behind a uniform interface (Ding & Hillston,
arXiv:1012.3040).  :func:`solve_with_fallback` therefore tries an
ordered :class:`FallbackPolicy` of methods from
:data:`repro.ctmc.steady.SOLVERS`; each attempt is bounded by the
policy's iteration budget and a cooperative wall-clock deadline, and
iterative methods get bounded retry-with-backoff (perturbed starting
vector, relaxed ILU preconditioner) before the chain moves on.  Every
attempt — successful or not — is recorded in a structured
:class:`SolveDiagnostics`, and a converged result is only accepted if
its balance-equation residual ``‖πQ‖∞`` passes a scale-aware sanity
check, so an iterative method that silently stagnated cannot hand back
a wrong answer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.ctmc.chain import CTMC
from repro.ctmc.steady import (
    SOLVERS,
    _call_solver,
    _irreducibility_failure,
    _normalise,
)
from repro.exceptions import SolverError
from repro.obs import get_metrics, get_tracer
from repro.resilience.budget import Deadline
from repro.utils.formatting import format_table

__all__ = [
    "AttemptRecord",
    "FallbackPolicy",
    "SolveDiagnostics",
    "ITERATIVE_METHODS",
    "solve_with_fallback",
]

#: Methods that can profit from a retry with a different starting point
#: or preconditioner; ``direct`` is deterministic, so retrying it with
#: the same inputs would only burn the deadline.
ITERATIVE_METHODS = frozenset(
    {"gmres", "bicgstab", "lgmres", "power", "gauss_seidel", "jacobi"}
)


@dataclass(frozen=True)
class FallbackPolicy:
    """An ordered solving policy: which methods, how hard, how long.

    ``methods`` are tried left to right; each iterative method gets up
    to ``1 + retries`` attempts with exponential ``backoff`` sleeps and
    per-retry perturbation of the starting vector (relative magnitude
    ``perturbation``) plus a 100×-per-retry relaxed ILU ``drop_tol``.
    ``deadline`` bounds the whole chain in wall-clock seconds
    (cooperatively — a running scipy kernel is never pre-empted).
    A candidate answer is rejected unless its residual ``‖πQ‖∞`` is
    below ``residual_tol`` scaled by the chain's largest exit rate.
    """

    methods: tuple[str, ...] = ("direct", "gmres", "bicgstab", "power")
    retries: int = 2
    backoff: float = 0.05
    deadline: float | None = None
    tol: float = 1e-12
    max_iterations: int = 200_000
    residual_tol: float = 1e-6
    perturbation: float = 1e-3

    @classmethod
    def parse(cls, spec: str, **overrides) -> "FallbackPolicy":
        """Build a policy from a comma-separated method list.

        ``FallbackPolicy.parse("direct,gmres,power", deadline=30.0)``
        is the CLI's ``--solver-policy`` syntax; remaining fields come
        from ``overrides`` or the defaults.
        """
        methods = tuple(m.strip() for m in spec.split(",") if m.strip())
        if not methods:
            raise SolverError(f"empty solver policy spec {spec!r}")
        return cls(methods=methods, **overrides)

    def validate(self, registry: dict | None = None) -> None:
        """Reject unknown method names eagerly (O(1), before any solve).

        ``registry`` defaults to :data:`repro.ctmc.steady.SOLVERS`.
        """
        known = SOLVERS if registry is None else registry
        unknown = [m for m in self.methods if m not in known]
        if unknown:
            raise SolverError(
                f"unknown steady-state method(s) {unknown} in fallback policy; "
                f"choose from {sorted(known)}"
            )
        if not self.methods:
            raise SolverError("fallback policy has no methods")

    def attempts_for(self, method: str) -> int:
        """Total attempts granted to ``method`` (1 + retries if iterative)."""
        return 1 + (self.retries if method in ITERATIVE_METHODS else 0)


@dataclass
class AttemptRecord:
    """One solver attempt: what ran, how long, and how it ended.

    ``outcome`` is one of ``"converged"``, ``"failed"`` (a
    :class:`SolverError`), ``"error"`` (an unexpected exception),
    ``"bad-residual"`` (converged but failed the ``‖πQ‖∞`` sanity
    check) or ``"deadline"`` (skipped, budget exhausted).
    """

    method: str
    attempt: int
    outcome: str
    elapsed: float
    residual: float | None = None
    detail: str = ""
    #: Which preconditioner path a Krylov attempt took: ``"ilu"``,
    #: ``"none-fallback"`` (ILU factorisation failed) or
    #: ``"none-operator"`` (matrix-free backend, ILU skipped).  Empty
    #: for non-Krylov methods.
    preconditioner: str = ""

    @property
    def ok(self) -> bool:
        """True for the attempt that produced the accepted answer."""
        return self.outcome == "converged"


@dataclass
class SolveDiagnostics:
    """The structured story of one fallback-chain solve.

    ``attempts`` lists every try in order; ``method`` names the solver
    that produced the accepted answer (``None`` if the whole chain
    failed); ``elapsed`` is total wall-clock time.
    """

    n_states: int = 0
    attempts: list[AttemptRecord] = field(default_factory=list)
    method: str | None = None
    elapsed: float = 0.0

    @property
    def succeeded(self) -> bool:
        """True once some attempt converged and passed the residual check."""
        return self.method is not None

    def record(self, method: str, attempt: int, outcome: str, elapsed: float,
               *, residual: float | None = None, detail: str = "",
               preconditioner: str = "") -> AttemptRecord:
        """Append (and return) one :class:`AttemptRecord`."""
        rec = AttemptRecord(method, attempt, outcome, elapsed,
                            residual=residual, detail=detail,
                            preconditioner=preconditioner)
        self.attempts.append(rec)
        return rec

    def attempts_for(self, method: str) -> list[AttemptRecord]:
        """All recorded attempts of one method, in order."""
        return [a for a in self.attempts if a.method == method]

    def as_table(self) -> str:
        """Render the attempt log as an aligned plain-text table."""
        rows = [
            [a.method, a.attempt, a.outcome, f"{a.elapsed:.4f}s",
             "-" if a.residual is None else f"{a.residual:.3e}", a.detail]
            for a in self.attempts
        ]
        return format_table(
            ["method", "attempt", "outcome", "elapsed", "residual", "detail"], rows
        )

    def summary(self) -> str:
        """One line: winner (or failure), attempt count, total time."""
        outcome = f"solved by {self.method}" if self.succeeded else "all methods failed"
        return (
            f"{outcome} after {len(self.attempts)} attempt(s) "
            f"in {self.elapsed:.4f}s over {self.n_states} states"
        )


def _retry_options(n: int, attempt: int, policy: FallbackPolicy) -> dict | None:
    """Per-attempt solver hints: none on the first try, a perturbed
    start vector and a relaxed preconditioner on retries."""
    if attempt == 1:
        return None
    rng = np.random.default_rng(7919 * attempt + n)
    x0 = np.full(n, 1.0 / n) * (
        1.0 + policy.perturbation * attempt * rng.standard_normal(n)
    )
    x0 = np.abs(x0)
    x0 /= x0.sum()
    return {
        "x0": x0,
        "ilu_drop_tol": 1e-5 * 100.0 ** (attempt - 1),
        "ilu_fill_factor": 20,
    }


def solve_with_fallback(
    chain: CTMC,
    policy: FallbackPolicy | str | None = None,
    *,
    check_irreducible: bool = True,
    reducible: str = "error",
    solvers: dict | None = None,
) -> tuple[np.ndarray, SolveDiagnostics]:
    """Solve ``πQ = 0, Σπ = 1`` through an ordered fallback chain.

    Returns ``(pi, diagnostics)``.  ``policy`` may be a
    :class:`FallbackPolicy`, a comma-separated method list, or ``None``
    for the default ``direct → gmres → bicgstab → power`` chain.
    ``reducible`` has the same semantics as in
    :func:`repro.ctmc.steady.steady_state`.  ``solvers`` overrides the
    registry (tests use this); entries are looked up per attempt so
    fault-injection wrappers installed mid-run are honoured.

    Raises :class:`SolverError` — with the full :class:`SolveDiagnostics`
    attached as ``exc.diagnostics`` and summarised in ``exc.context`` —
    only when *every* method of the policy has been exhausted or the
    deadline ran out.
    """
    if isinstance(policy, str):
        policy = FallbackPolicy.parse(policy)
    if policy is None:
        policy = FallbackPolicy()
    registry = SOLVERS if solvers is None else solvers
    policy.validate(registry)
    if reducible not in ("error", "bscc"):
        raise SolverError(f"unknown reducible policy {reducible!r}")

    diag = SolveDiagnostics(n_states=chain.n_states)
    if chain.n_states == 0:
        raise SolverError("cannot solve an empty chain").with_context(stage="solve")
    if chain.n_states == 1:
        diag.method = "trivial"
        return np.ones(1), diag

    if check_irreducible and not chain.is_irreducible():
        if reducible != "bscc":
            raise _irreducibility_failure(chain)
        bsccs = chain.bottom_sccs()
        if len(bsccs) != 1:
            raise SolverError(
                f"the chain has {len(bsccs)} bottom strongly connected "
                "components; the steady state depends on the initial state"
            ).with_context(stage="solve")
        members = bsccs[0]
        pi_sub, diag = solve_with_fallback(
            chain.restricted_to(members), policy,
            check_irreducible=False, solvers=solvers,
        )
        pi = np.zeros(chain.n_states)
        pi[members] = pi_sub
        diag.n_states = chain.n_states
        return pi, diag

    deadline = Deadline.after(policy.deadline)
    start = time.monotonic()
    # max |diag(Q)| is the maximum exit rate — available on either
    # backend without materialising the generator.
    rate_scale = max(1.0, chain.max_exit_rate())
    residual_bound = policy.residual_tol * rate_scale

    tracer = get_tracer()
    with tracer.span("ctmc.solve.fallback", states=chain.n_states,
                     methods=",".join(policy.methods)) as fsp:
        for method in policy.methods:
            for attempt in range(1, policy.attempts_for(method) + 1):
                if deadline.expired:
                    diag.record(
                        method, attempt, "deadline", 0.0,
                        detail=f"skipped: {policy.deadline:g}s budget exhausted",
                    )
                    diag.elapsed = time.monotonic() - start
                    _annotate_span(fsp, diag)
                    exc = SolverError(
                        f"steady-state deadline of {policy.deadline:g}s exhausted "
                        f"after {len(diag.attempts)} attempt(s); {diag.summary()}"
                    ).with_context(stage="solve", attempt=len(diag.attempts))
                    exc.diagnostics = diag
                    raise exc
                if attempt > 1 and policy.backoff > 0:
                    time.sleep(
                        min(policy.backoff * 2.0 ** (attempt - 2),
                            max(deadline.remaining(), 0.0))
                    )
                options = dict(_retry_options(chain.n_states, attempt, policy) or {})
                # Solvers report back through this dict — currently the
                # Krylov methods record which preconditioner path ran.
                info: dict = {}
                options["info"] = info
                t0 = time.monotonic()
                with tracer.span("solve.attempt", method=method,
                                 attempt=attempt) as asp:
                    try:
                        solver = registry[method]
                        raw = _call_solver(
                            solver, chain, policy.tol, policy.max_iterations, options
                        )
                        pi = _normalise(raw, method, policy.tol)
                        elapsed = time.monotonic() - t0
                        residual = float(np.abs(chain.generator.rmatvec(pi)).max())
                        preconditioner = info.get("preconditioner", "")
                        if not np.isfinite(residual) or residual > residual_bound:
                            diag.record(
                                method, attempt, "bad-residual", elapsed,
                                residual=residual,
                                detail=f"‖πQ‖∞ = {residual:.3e} above bound {residual_bound:.3e}",
                                preconditioner=preconditioner,
                            )
                            asp.set(outcome="bad-residual", residual=residual)
                            continue
                        diag.record(method, attempt, "converged", elapsed,
                                    residual=residual,
                                    preconditioner=preconditioner)
                        diag.method = method
                        diag.elapsed = time.monotonic() - start
                        asp.set(outcome="converged", residual=residual)
                        _annotate_span(fsp, diag)
                        get_metrics().gauge("residual").set(residual)
                        return pi, diag
                    except SolverError as exc:
                        diag.record(method, attempt, "failed",
                                    time.monotonic() - t0, detail=str(exc),
                                    preconditioner=info.get("preconditioner", ""))
                        asp.set(outcome="failed", error=type(exc).__name__)
                    except Exception as exc:  # noqa: BLE001 — any back-end blow-up
                        diag.record(method, attempt, "error", time.monotonic() - t0,
                                    detail=f"{type(exc).__name__}: {exc}",
                                    preconditioner=info.get("preconditioner", ""))
                        asp.set(outcome="error", error=type(exc).__name__)

        diag.elapsed = time.monotonic() - start
        _annotate_span(fsp, diag)
        failures = "; ".join(
            f"{a.method}#{a.attempt}: {a.outcome}" + (f" ({a.detail})" if a.detail else "")
            for a in diag.attempts
        )
        exc = SolverError(
            f"all {len(policy.methods)} fallback method(s) failed "
            f"({len(diag.attempts)} attempts): {failures}"
        ).with_context(stage="solve", attempt=len(diag.attempts))
        exc.diagnostics = diag
        raise exc


def _annotate_span(span, diag: SolveDiagnostics) -> None:
    """Summarise a :class:`SolveDiagnostics` onto a fallback span."""
    span.set(
        attempts=len(diag.attempts),
        solved_by=diag.method or "none",
        diagnostics=diag.summary(),
    )
