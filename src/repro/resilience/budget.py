"""Cooperative execution budgets for long-running derivations.

State-space exploration is the part of the tool chain that can run away
— the paper is explicit that susceptibility to state-space explosion is
the price of exact numerical solution.  The existing ``max_states``
bound catches size blow-ups; a :class:`Deadline` adds the wall-clock
dimension, and an :class:`ExecutionBudget` bundles both behind a single
cooperative ``checkpoint()`` call that exploration loops invoke
periodically.  When a budget runs out the loop raises
:class:`~repro.exceptions.BudgetExceededError` carrying a resumable
summary (stage, states explored, frontier size, elapsed time) instead
of dying silently deep in the search.

Budgets are *cooperative*: they are only enforced at checkpoint calls,
never by pre-empting running code, so a single long numerical kernel
can still overrun its deadline by the length of that one call.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.exceptions import BudgetExceededError

__all__ = ["BudgetSpec", "Deadline", "ExecutionBudget"]


class Deadline:
    """A wall-clock deadline measured against :func:`time.monotonic`.

    Construct with :meth:`after` (relative seconds) or ``Deadline(None)``
    for an unbounded deadline that never expires.
    """

    def __init__(self, seconds: float | None):
        self.seconds = seconds
        self._start = time.monotonic()

    @classmethod
    def after(cls, seconds: float | None) -> "Deadline":
        """A deadline expiring ``seconds`` from now (``None`` = never)."""
        return cls(seconds)

    def elapsed(self) -> float:
        """Seconds since the deadline was created."""
        return time.monotonic() - self._start

    def remaining(self) -> float:
        """Seconds left before expiry (``inf`` for unbounded deadlines)."""
        if self.seconds is None:
            return float("inf")
        return self.seconds - self.elapsed()

    @property
    def expired(self) -> bool:
        """True once the deadline has passed."""
        return self.remaining() <= 0.0

    def __repr__(self) -> str:
        if self.seconds is None:
            return "Deadline(unbounded)"
        return f"Deadline({self.seconds:g}s, {max(self.remaining(), 0.0):.3f}s left)"


@dataclass(frozen=True)
class BudgetSpec:
    """A *description* of an execution budget, safe to pickle and ship.

    A live :class:`ExecutionBudget` embeds a :class:`Deadline` whose
    clock started in the process that built it — shipping one to a
    batch worker would charge the worker for queueing time it never
    controlled.  A spec carries only the numbers; each worker calls
    :meth:`materialise` as it *starts* the task, so the deadline clock
    begins at task start in the worker, which is the per-task budget
    semantics :mod:`repro.batch.engine` promises.
    """

    deadline_seconds: float | None = None
    max_states: int | None = None
    check_every: int = 64

    @property
    def unlimited(self) -> bool:
        """True when the spec imposes no limit at all."""
        return self.deadline_seconds is None and self.max_states is None

    def materialise(self) -> "ExecutionBudget | None":
        """A fresh budget whose clock starts now (``None`` if unlimited)."""
        if self.unlimited:
            return None
        return ExecutionBudget.of(
            deadline_seconds=self.deadline_seconds,
            max_states=self.max_states,
            check_every=self.check_every,
        )


@dataclass
class ExecutionBudget:
    """Time and state-count limits checked cooperatively during search.

    ``deadline`` bounds wall-clock time; ``max_states`` bounds the
    number of explored states (on top of — and independent from — an
    exploration's own ``max_states`` argument).  ``check_every``
    rate-limits the clock reads: only every Nth :meth:`checkpoint` call
    actually consults the deadline, so the guard adds negligible cost to
    tight loops while still bounding overrun to ``check_every``
    iterations.
    """

    deadline: Deadline | None = None
    max_states: int | None = None
    check_every: int = 64
    _ticks: int = field(default=0, repr=False)

    @classmethod
    def of(cls, *, deadline_seconds: float | None = None,
           max_states: int | None = None, check_every: int = 64) -> "ExecutionBudget":
        """Build a budget from plain numbers (``None`` = unlimited)."""
        deadline = Deadline.after(deadline_seconds) if deadline_seconds is not None else None
        return cls(deadline=deadline, max_states=max_states, check_every=check_every)

    def checkpoint(self, *, stage: str, explored: int, frontier: int = 0) -> None:
        """Raise :class:`BudgetExceededError` if any limit is exhausted.

        ``explored``/``frontier`` describe current progress and are
        embedded in the error so the caller can report (or resume) the
        partial work.  The state-count limit is checked on every call;
        the clock only every ``check_every`` calls.
        """
        if self.max_states is not None and explored > self.max_states:
            raise BudgetExceededError(
                f"{stage}: explored {explored} states, over the budget of "
                f"{self.max_states}",
                stage=stage, explored=explored, frontier=frontier,
                elapsed=self.deadline.elapsed() if self.deadline else None,
                limit=f"max_states={self.max_states}",
            )
        if self.deadline is None:
            return
        self._ticks += 1
        # Always consult the clock on the very first checkpoint (small
        # explorations would otherwise never see the deadline), then
        # only every ``check_every`` calls.
        if (self._ticks - 1) % self.check_every:
            return
        if self.deadline.expired:
            raise BudgetExceededError(
                f"{stage}: wall-clock budget of {self.deadline.seconds:g}s "
                f"exhausted after {explored} states "
                f"({frontier} still on the frontier)",
                stage=stage, explored=explored, frontier=frontier,
                elapsed=self.deadline.elapsed(),
                limit=f"deadline={self.deadline.seconds:g}s",
            )
