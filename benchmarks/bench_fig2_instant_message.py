"""E2 — Figure 2: the instant-message diagram with the <<move>> transmit.

Reproduces: the two-place PEPA net of Section 2.2 (places p1, p2; net
transition ``transmit``), cross-checked against the paper's hand-written
net, and per-activity throughput.  Benchmarks extraction and the
hand-written net's solution separately.
"""

import math

from conftest import record

from repro.pepanets import analyse_net, explore_net, parse_net
from repro.workloads import IM_PEPANET_SOURCE, IM_RATES, build_instant_message_diagram


def test_fig2_extraction(benchmark, platform):
    outcome = benchmark(
        lambda: platform.analyse_activity_diagram(build_instant_message_diagram(), IM_RATES)
    )
    net = outcome.extraction.net
    assert set(net.places) == {"p1", "p2"}
    transmit = [t for t in net.transitions.values() if t.action == "transmit"]
    assert len(transmit) == 1
    assert transmit[0].inputs == ("p1",) and transmit[0].outputs == ("p2",)

    # every activity completes once per message cycle; close runs twice
    t_transmit = outcome.throughput_of("transmit")
    for name in ("openwrite", "write", "openread", "read"):
        assert math.isclose(outcome.throughput_of(name), t_transmit, rel_tol=1e-9)
    t_close = outcome.results.value("activity", "close", "throughput")
    assert math.isclose(t_close, 2 * t_transmit, rel_tol=1e-9)
    record(benchmark, markings=outcome.analysis.n_states, transmit=t_transmit)


def test_fig2_published_net(benchmark):
    """The paper's own PEPA net (the one-shot version): 4 markings, the
    transmit firing leaves the recurrent class at P2."""

    def build_and_explore():
        net = parse_net(IM_PEPANET_SOURCE)
        return net, explore_net(net)

    net, space = benchmark(build_and_explore)
    assert space.size == 4
    assert space.firing_actions == {"transmit"}
    result = analyse_net(net)  # reducible="bscc" by default
    # in the long run the message lives at P2 and the file cycles there
    assert math.isclose(result.occupancy("P2"), 1.0, rel_tol=1e-9)
    assert result.throughput("transmit") == 0.0
    assert result.throughput("read") > 0.0
