"""A2 — aggregation ablation: exact lumping against direct solution.

On the fully symmetric branch family the coarsest ordinary lumping
collapses n+1 states to 2; this bench verifies the reduction, the
exactness of the aggregated stationary distribution, and times
lump+solve against plain solve.
"""

import math

import numpy as np
import pytest

from conftest import record

from repro.ctmc.lumping import lump
from repro.ctmc.steady import steady_state
from repro.pepa.ctmcgen import ctmc_of_model
from repro.workloads import symmetric_branches_model


def chain_for(n_branches: int):
    _, chain = ctmc_of_model(symmetric_branches_model(n_branches))
    return chain


@pytest.mark.parametrize("n_branches", [8, 32, 128])
def test_lump_then_solve(benchmark, n_branches):
    chain = chain_for(n_branches)

    def lump_and_solve():
        lumped = lump(chain)
        return lumped, steady_state(lumped.chain)

    lumped, pi_lumped = benchmark(lump_and_solve)
    assert lumped.n_blocks == 2
    # aggregate exactness
    pi_full = steady_state(chain)
    for b, members in enumerate(lumped.blocks):
        assert math.isclose(pi_lumped[b], pi_full[members].sum(), rel_tol=1e-9)
    record(benchmark, states=chain.n_states, blocks=lumped.n_blocks)


@pytest.mark.parametrize("n_branches", [128])
def test_direct_solve_baseline(benchmark, n_branches):
    chain = chain_for(n_branches)
    pi = benchmark(lambda: steady_state(chain))
    assert math.isclose(pi.sum(), 1.0, rel_tol=1e-9)
    record(benchmark, states=chain.n_states)


def test_population_semantics_vs_unfolding(benchmark):
    """The counting-semantics construction solves client populations the
    unfolded interleaving could never reach (state count polynomial
    instead of exponential) — and matches it exactly where both exist."""
    from repro.ctmc import throughput
    from repro.pepa import parse_expression, parse_model, population_ctmc

    defs = parse_model(
        """
        Think = (think, 1.0).Ready;
        Ready = (request, 2.0).Wait;
        Wait  = (response, T).Think;
        Idle  = (request, T).Serve;
        Serve = (response, 5.0).Idle;
        Idle
        """
    ).environment

    def run():
        states, chain = population_ctmc(
            defs, "Think", 60, parse_expression("Idle"), {"request", "response"}
        )
        return states, chain, throughput(chain, "request")

    states, chain, tp = benchmark(run)
    assert len(states) < 5_000  # vs ~2^59·62 unfolded
    assert tp > 0
    record(benchmark, population_states=len(states), request_throughput=tp)


def test_throughput_survives_lumping(benchmark):
    from repro.ctmc.rewards import throughput

    chain = chain_for(16)

    def lumped_throughputs():
        lumped = lump(chain)
        return {a: throughput(lumped.chain, a) for a in chain.action_rates}

    lumped_ths = benchmark(lumped_throughputs)
    for action, value in lumped_ths.items():
        assert math.isclose(value, throughput(chain, action), rel_tol=1e-9)
