"""E3 — Figure 3: the PEPA-net grammar.

The grammar is implemented verbatim as our parsers; this bench parses
and round-trips a corpus covering every production of the figure
(prefix, choice, identifier, cooperation, hiding, cell, place
definitions, markings, net transitions) and benchmarks parser speed on
the paper's instant-message net.
"""

from conftest import record

from repro.pepa.parser import parse_expression, parse_model
from repro.pepanets import parse_net
from repro.workloads import IM_PEPANET_SOURCE

#: One snippet per production of Figure 3.
EXPRESSION_CORPUS = [
    "(alpha, 1.5).S",                      # prefix
    "(a, 1).S + (b, 2).S",                 # choice
    "I",                                   # identifier
    "P <a, b> Q",                          # cooperation
    "P || Q",                              # empty cooperation
    "P/{a}",                               # hiding
    "File[_]",                             # empty cell
    "File[S]",                             # full cell
    "(File[_] <a> Reader)/{a}",            # composite
]

MODEL_CORPUS = [
    "P = (a, 1).P; P",
    "r = 2; P = (a, r).Q; Q = (b, r/2).P; P/{b}",
    "P = (a, 1).P; Q = (a, T).Q; P <*> Q",
]


def test_fig3_expression_corpus(benchmark):
    def parse_all():
        return [parse_expression(src) for src in EXPRESSION_CORPUS]

    expressions = benchmark(parse_all)
    assert len(expressions) == len(EXPRESSION_CORPUS)
    # round trip: printing reparses to the same tree
    for expr in expressions:
        assert parse_expression(str(expr)) == expr


def test_fig3_model_corpus(benchmark):
    models = benchmark(lambda: [parse_model(src) for src in MODEL_CORPUS])
    assert all(m.system is not None for m in models)


def test_fig3_net_parse_round_trip(benchmark):
    net = benchmark(lambda: parse_net(IM_PEPANET_SOURCE))
    reparsed = parse_net(str(net))
    assert reparsed.initial_marking() == net.initial_marking()
    assert set(reparsed.transitions) == set(net.transitions)
    record(benchmark, places=len(net.places), transitions=len(net.transitions))
