"""A3 — simulation vs numerical solution (the paper's §1.1 comparison
with UML-Ψ: approximate + CI-bearing vs exact + explosion-prone).

The SSA runs the same operational semantics as the numerical route, so
its confidence intervals must cover the exact values — asserted here on
the PDA net — and the bench records the cost of each route.
"""

import math

from conftest import record

from repro.extract import extract_activity_diagram
from repro.pepanets import analyse_net
from repro.sim import estimate_throughput, net_transition_fn, replicate, simulate_net
from repro.workloads import PDA_RATES, build_pda_activity_diagram


def pda_net():
    return extract_activity_diagram(build_pda_activity_diagram(), PDA_RATES).net


def test_numerical_route(benchmark):
    net = pda_net()
    analysis = benchmark(lambda: analyse_net(net, reducible="error"))
    record(benchmark, handover=analysis.throughput("handover"))


def test_simulation_route_single_run(benchmark):
    net = pda_net()
    exact = analyse_net(net, reducible="error").throughput("handover")
    result = benchmark(lambda: simulate_net(net, 2000.0, seed=1, warmup=50.0))
    assert math.isclose(result.throughput("handover"), exact, rel_tol=0.1)
    record(benchmark, events=result.n_events)


def test_simulation_confidence_interval_covers_exact(benchmark):
    net = pda_net()
    analysis = analyse_net(net, reducible="error")

    def replicated():
        results = replicate(
            net_transition_fn(net), net.initial_marking(), t_end=600.0,
            n_replications=6, warmup=30.0, base_seed=99,
        )
        return estimate_throughput(results, "handover", confidence=0.99)

    estimate = benchmark(replicated)
    assert estimate.covers(analysis.throughput("handover"))
    record(benchmark, mean=estimate.mean, half_width=estimate.half_width)
