#!/usr/bin/env python
"""The perf-trajectory bench harness.

Runs the paper's parameterised workload families
(:mod:`repro.workloads.scaling` plus the Figure 1 file protocol) at
several scaling sizes and writes a schema-stable ``BENCH_*.json`` so
every subsequent PR can be compared against this one's baseline.

Per run it records, via the :mod:`repro.obs` tracer:

* per-stage wall-clock seconds — ``derive`` (state/marking space),
  ``assemble`` (generator build), ``solve`` (steady state);
* state and transition counts (from the metrics registry);
* peak RSS (``resource.getrusage``, kilobytes on Linux).

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py                 # full sweep
    PYTHONPATH=src python benchmarks/run_bench.py --quick         # CI smoke
    PYTHONPATH=src python benchmarks/run_bench.py --label PR3     # BENCH_PR3.json
    PYTHONPATH=src python benchmarks/run_bench.py --quick \
        --baseline BENCH_PR2.json                 # self-compare, exit 1 on regression

The schema (``repro-bench/1``) is part of the repo's public surface:
``benchmarks/run_bench.py --quick`` runs in CI and the golden keys are
asserted by ``tests/obs/test_bench_harness.py``.  With ``--baseline``
the run is compared against an earlier snapshot through
:mod:`repro.obs.regress` and the exit status reflects the verdict.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

# Allow running straight from a checkout without installing.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.exists() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy
import scipy

from repro.obs import observe
from repro.utils.sysinfo import peak_rss_kib
from repro.pepa.ctmcgen import ctmc_from_statespace
from repro.pepa.parser import parse_model
from repro.pepa.statespace import derive
from repro.pepanets.measures import ctmc_of_net
from repro.ctmc.steady import steady_state
from repro.workloads import (
    client_server_model,
    courier_ring_net,
    roaming_fleet_net,
    tandem_queue_model,
)

SCHEMA = "repro-bench/1"

FILE_PROTOCOL_TEMPLATE = """
r_o = 2.0; r_r = 10.0; r_w = 4.0; r_c = 1.0;
File = (openread, r_o).InStream + (openwrite, r_o).OutStream;
InStream = (read, r_r).InStream + (close, r_c).File;
OutStream = (write, r_w).OutStream + (close, r_c).File;
FileReader = (openread, T).Reading + (openwrite, T).Writing;
Reading = (read, T).Reading + (close, T).FileReader;
Writing = (write, T).Writing + (close, T).FileReader;
{system}
"""


def file_protocol_model(n_readers: int):
    """The quickstart file protocol scaled to ``n_readers`` independent
    reader components competing for one file."""
    readers = " || ".join(["FileReader"] * n_readers)
    system = f"File <openread, openwrite, read, write, close> ({readers})"
    return parse_model(FILE_PROTOCOL_TEMPLATE.format(system=system))


#: workload name -> (kind, builder, {label: size_kwargs}).  ``quick``
#: sizes are the first entry of each dict; the full sweep runs all.
WORKLOADS = {
    "file_protocol": (
        "pepa",
        file_protocol_model,
        [{"n_readers": 1}, {"n_readers": 2}, {"n_readers": 3}],
    ),
    "client_server": (
        "pepa",
        client_server_model,
        [{"n_clients": 3}, {"n_clients": 5}, {"n_clients": 7}],
    ),
    "tandem_queue": (
        "pepa",
        tandem_queue_model,
        [{"stages": 2, "capacity": 3}, {"stages": 3, "capacity": 3},
         {"stages": 3, "capacity": 5}],
    ),
    "courier_ring": (
        "net",
        courier_ring_net,
        [{"n_places": 3, "n_couriers": 2}, {"n_places": 4, "n_couriers": 2},
         {"n_places": 5, "n_couriers": 3}],
    ),
    "roaming_fleet": (
        "net",
        roaming_fleet_net,
        [{"n_sessions": 2, "n_transmitters": 3},
         {"n_sessions": 3, "n_transmitters": 3},
         {"n_sessions": 3, "n_transmitters": 4}],
    ),
    # Exploration throughput (states/sec) of the repro.core.explore
    # kernel on the exploding scaling model — derive only, no solve, so
    # the ``derive`` stage time gates kernel regressions directly.
    "explore_throughput": (
        "explore",
        client_server_model,
        [{"n_clients": 7}, {"n_clients": 8}, {"n_clients": 9}],
    ),
}

#: span name -> bench stage name
STAGE_SPANS = {
    "pepa.statespace": "derive",
    "pepanet.markingspace": "derive",
    "ctmc.assemble": "assemble",
    "ctmc.solve": "solve",
    "ctmc.solve.fallback": "solve",
}


def run_one(workload: str, kind: str, builder, size: dict, solver: str) -> dict:
    """One benchmark run: build, derive, assemble, solve, all traced.

    ``kind == "explore"`` measures pure state-space exploration
    throughput: derive only, and the solver identity is pinned to
    ``"none"`` so the run matches across sweeps regardless of
    ``--solver``.
    """
    model = builder(**size)
    t0 = time.perf_counter()
    with observe() as (tracer, metrics):
        if kind == "explore":
            derive(model)
        elif kind == "pepa":
            space = derive(model)
            chain = ctmc_from_statespace(space)
        else:
            space, chain = ctmc_of_net(model)
        if kind != "explore":
            steady_state(chain, method=solver, reducible="bscc")
    total = time.perf_counter() - t0
    if kind == "explore":
        solver = "none"

    stages: dict[str, float] = {}
    for root in tracer.roots:
        for span in root.iter_spans():
            stage = STAGE_SPANS.get(span.name)
            if stage is not None:
                stages[stage] = stages.get(stage, 0.0) + span.duration
    return {
        "workload": workload,
        "kind": kind,
        "size": size,
        "solver": solver,
        "n_states": int(metrics.counter("states_explored").value),
        "n_transitions": int(metrics.counter("transitions").value),
        "stages": {name: round(seconds, 6) for name, seconds in sorted(stages.items())},
        "total_s": round(total, 6),
        "peak_rss_kb": peak_rss_kib(),
    }


def run_suite(*, quick: bool, solver: str, label: str = "local",
              sizes_per_workload: int | None = None, progress=print) -> dict:
    """Run the whole sweep and return the JSON-ready document."""
    n_sizes = 2 if quick else (sizes_per_workload or None)
    runs = []
    for workload, (kind, builder, sizes) in WORKLOADS.items():
        chosen = sizes[:n_sizes] if n_sizes else sizes
        for size in chosen:
            size_label = ", ".join(f"{k}={v}" for k, v in size.items())
            progress(f"  {workload} ({size_label}) ...")
            record = run_one(workload, kind, builder, size, solver)
            line = (f"    {record['n_states']} states in {record['total_s']:.3f}s "
                    f"{record['stages']}")
            if kind == "explore" and record["stages"].get("derive"):
                line += (f" ({record['n_states'] / record['stages']['derive']:,.0f}"
                         " states/s)")
            progress(line)
            runs.append(record)
    return {
        "schema": SCHEMA,
        "label": label,
        "created_unix": int(time.time()),
        "quick": quick,
        "solver": solver,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "scipy": scipy.__version__,
        },
        "runs": runs,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="2 sizes per workload (the CI smoke sweep)")
    parser.add_argument("--solver", default="direct",
                        help="steady-state method for every solve (default: direct)")
    parser.add_argument("--label", default="local",
                        help="snapshot label recorded in the document and used "
                             "for the default output name BENCH_<label>.json")
    parser.add_argument("-o", "--output", type=Path,
                        help="where to write the JSON document "
                             "(default: BENCH_<label>.json in the repo root)")
    parser.add_argument("--baseline", type=Path, metavar="FILE",
                        help="compare this run against an earlier repro-bench/1 "
                             "snapshot and exit 1 if any stage regressed")
    parser.add_argument("--threshold", type=float, default=None,
                        help="relative slow-down factor for --baseline "
                             "(default: repro.obs.regress.DEFAULT_THRESHOLD)")
    parser.add_argument("--min-seconds", type=float, default=None,
                        help="absolute-seconds floor for --baseline "
                             "(default: repro.obs.regress.DEFAULT_MIN_SECONDS)")
    args = parser.parse_args(argv)

    output = args.output
    if output is None:
        output = (Path(__file__).resolve().parent.parent
                  / f"BENCH_{args.label}.json")

    print(f"bench sweep ({'quick' if args.quick else 'full'}, "
          f"solver={args.solver}, label={args.label})")
    document = run_suite(quick=args.quick, solver=args.solver, label=args.label)
    output.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {len(document['runs'])} runs to {output}")

    if args.baseline:
        from repro.obs.regress import (
            DEFAULT_MIN_SECONDS, DEFAULT_THRESHOLD, compare_benchmarks,
            load_bench, markdown_report,
        )

        comparison = compare_benchmarks(
            load_bench(args.baseline), document,
            threshold=args.threshold or DEFAULT_THRESHOLD,
            min_seconds=(DEFAULT_MIN_SECONDS if args.min_seconds is None
                         else args.min_seconds),
        )
        print()
        print(markdown_report(comparison))
        return 0 if comparison.ok else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
